"""Profiling a parallel program inside the simulated cluster.

Runs a small 1-D halo-exchange stencil "solver" on the discrete-event MPI
simulator with full instrumentation: each rank carries its own runtime on
the simulator's virtual clock, the MPI wrapper annotates every operation
(``mpi.function``), and user annotations mark the computational phases.
After the run, the per-rank profiles are aggregated across processes —
the complete on-line + cross-process workflow of the paper, executed on a
laptop against a simulated 16-node machine.

Run: ``python examples/instrumented_mpi_app.py``
"""

import numpy as np

from repro.api import instrument
from repro.mpi import LatencyBandwidthNetwork, SimWorld
from repro.mpi.instrument import RankProfiler
from repro.query import run_query
from repro.report import format_distribution, format_table

RANKS = 16
STEPS = 40
CELLS_PER_RANK = 4096


def main() -> None:
    rng = np.random.default_rng(7)
    # deliberately imbalanced per-rank compute cost (hot spot at rank 5)
    cost = 1e-4 * (1.0 + 0.04 * rng.standard_normal(RANKS))
    cost[5] *= 1.35

    collected: dict[int, list] = {}

    def program(comm):
        prof = RankProfiler(
            comm,
            aggregate_config=(
                "AGGREGATE count, sum(time.duration) "
                "GROUP BY function, mpi.function, mpi.rank"
            ),
        )
        icomm = prof.comm
        cali = prof.cali
        left = comm.rank - 1
        right = comm.rank + 1

        for _step in range(STEPS):
            # halo exchange with neighbours (ordered to avoid deadlock);
            # each rank has its own runtime, so pass it explicitly instead
            # of relying on the process-wide default
            with instrument.region("halo-exchange", attribute="function",
                                   runtime=cali):
                if left >= 0:
                    yield from icomm.send(left, "halo", tag=1, nbytes=8 * 2)
                if right < comm.size:
                    yield from icomm.recv(src=right, tag=1)
                    yield from icomm.send(right, "halo", tag=2, nbytes=8 * 2)
                if left >= 0:
                    yield from icomm.recv(src=left, tag=2)

            with instrument.region("stencil-update", attribute="function",
                                   runtime=cali):
                yield from icomm.compute(float(cost[comm.rank]))

            with instrument.region("reduce-residual", attribute="function",
                                   runtime=cali):
                yield from icomm.allreduce(1.0, lambda a, b: a + b, nbytes=8)

        collected[comm.rank] = prof.finish()
        return comm.now()

    network = LatencyBandwidthNetwork(latency=2e-6, bandwidth=10e9)
    result = SimWorld(RANKS, network=network).run(program)
    print(
        f"simulated {RANKS}-rank stencil run: {result.elapsed * 1e3:.2f} ms "
        f"virtual, {result.stats.messages} messages\n"
    )

    records = [r for recs in collected.values() for r in recs]

    # --- phase profile across all ranks ------------------------------------
    print("phase profile (all ranks):\n")
    print(
        run_query(
            "AGGREGATE sum(sum#time.duration), sum(aggregate.count) "
            "WHERE function GROUP BY function "
            "ORDER BY sum#sum#time.duration DESC",
            records,
        ).to_table()
    )

    # --- MPI time by function -----------------------------------------------
    print("\nMPI time by function (all ranks):\n")
    print(
        run_query(
            "AGGREGATE sum(sum#time.duration) WHERE mpi.function "
            "GROUP BY mpi.function ORDER BY sum#sum#time.duration DESC",
            records,
        ).to_table()
    )

    # --- where does the imbalance show? ---------------------------------------
    def per_rank(where):
        res = run_query(
            f"AGGREGATE sum(sum#time.duration) {where} "
            "GROUP BY mpi.rank ORDER BY mpi.rank",
            records,
        )
        return [r["sum#sum#time.duration"].to_double() for r in res]

    print()
    print(
        format_distribution(
            [
                ("stencil-update", per_rank('WHERE function="stencil-update"')),
                ("allreduce wait", per_rank('WHERE mpi.function="MPI_Allreduce"')),
            ],
            title="Imbalance: rank 5's extra compute becomes allreduce wait elsewhere",
        )
    )
    stencil = per_rank('WHERE function="stencil-update"')
    print(f"\nslowest compute rank: {int(np.argmax(stencil))} (expected 5)")


if __name__ == "__main__":
    main()
