"""The CleverLeaf case study (paper Section VI), end to end.

Runs the simulated CleverLeaf AMR hydro mini-app with on-line aggregation,
then answers every analysis question of the case study interactively with
off-line CalQL queries:

* kernel profile from 100 Hz sampling (Fig. 5),
* MPI communication overhead (Fig. 6),
* load balance across ranks (Fig. 7),
* time per AMR refinement level per timestep (Fig. 8) and per rank (Fig. 9).

All experiments use the same instrumented application; only the aggregation
schemes change — the paper's central point.

Run: ``python examples/cleverleaf_case_study.py``
"""

from repro.apps.cleverleaf import (
    SCHEME_C,
    CleverLeafConfig,
    channel_config_aggregate,
    channel_config_sampling,
    run_simulation,
)
from repro.report import (
    format_barchart,
    format_distribution,
    format_series,
    pivot_series,
)


def main() -> None:
    config = CleverLeafConfig(timesteps=30, ranks=18, target_runtime=8.0)
    print(
        f"simulating CleverLeaf: {config.timesteps} timesteps, "
        f"{config.ranks} ranks, triple-point problem\n"
    )

    # ----- Fig. 5: low-overhead kernel overview via sampling -----------------
    sampled = run_simulation(config, channel_config_sampling(period=0.01))
    result = sampled.dataset().query(
        "AGGREGATE sum(aggregate.count) GROUP BY kernel "
        "ORDER BY sum#aggregate.count DESC"
    )
    rows = [
        (r.get("kernel").value or "(no kernel)", r["sum#aggregate.count"].to_double() * 0.01)
        for r in result
    ]
    print(format_barchart(rows, unit=" s", title="Kernel profile (100 Hz samples):"))

    # ----- the detailed profile: scheme C (all attributes) ---------------------
    detailed = run_simulation(config, channel_config_aggregate(SCHEME_C, "event"))
    ds = detailed.dataset()
    print(
        f"\ndetailed profile: {len(ds)} records "
        f"({detailed.records_per_rank} per process, "
        f"{detailed.num_snapshots_per_rank} snapshots per process)"
    )

    # ----- Fig. 6: communication overhead ------------------------------------
    result = ds.query(
        "AGGREGATE sum(sum#time.duration) WHERE mpi.function "
        "GROUP BY mpi.function ORDER BY sum#sum#time.duration DESC LIMIT 10"
    )
    rows = [
        (r["mpi.function"].value, r["sum#sum#time.duration"].to_double())
        for r in result
    ]
    print()
    print(format_barchart(rows, unit=" s", title="MPI function profile (top 10):"))

    # ----- Fig. 7: load balance ------------------------------------------------
    def per_rank(where: str) -> list[float]:
        res = ds.query(
            f"AGGREGATE sum(sum#time.duration) {where} "
            "GROUP BY mpi.rank ORDER BY mpi.rank"
        )
        return [r["sum#sum#time.duration"].to_double() for r in res]

    print()
    print(
        format_distribution(
            [
                ("computation", per_rank("WHERE not(mpi.function)")),
                ("MPI", per_rank("WHERE mpi.function")),
                ("calc-dt", per_rank('WHERE kernel="calc-dt"')),
                ("advec-mom", per_rank('WHERE kernel="advec-mom"')),
            ],
            title="Load balance across ranks (min/median/max):",
        )
    )

    # ----- Fig. 8: AMR level time over timesteps ---------------------------------
    result = ds.query(
        "AGGREGATE sum(sum#time.duration) WHERE not(mpi.function) "
        "GROUP BY amr.level, iteration#mainloop"
    )
    xs, _, series = pivot_series(
        list(result), "iteration#mainloop", "amr.level", "sum#sum#time.duration"
    )
    series = {f"level {k}": v for k, v in series.items() if k}
    print("\nTime per AMR refinement level per timestep (every 5th step):")
    print(
        format_series(xs[::5], {k: v[::5] for k, v in series.items()}, x_label="step")
    )

    # ----- Fig. 9: AMR level time per rank ------------------------------------------
    result = ds.query(
        "AGGREGATE sum(sum#time.duration) WHERE not(mpi.function) "
        "GROUP BY amr.level, mpi.rank"
    )
    xs, _, series = pivot_series(
        list(result), "mpi.rank", "amr.level", "sum#sum#time.duration"
    )
    series = {f"level {k}": v for k, v in series.items() if k}
    print("\nTime per AMR refinement level per MPI rank:")
    print(format_series(xs, series, x_label="rank"))
    print(
        "\nNote rank 8 (more level-1 than level-0 time) and rank 7 "
        "(less level-0 time than most) — the anomalies the paper calls out."
    )


if __name__ == "__main__":
    main()
