"""Quickstart: annotate, aggregate on-line, query off-line.

Reproduces the paper's running example (Listing 1 + the Section III-B
aggregation schemes) end to end:

1. annotate a toy program with ``function`` and ``loop.iteration``;
2. aggregate snapshots on-line with a CalQL scheme;
3. print the resulting time-series function profile;
4. write it to a ``.cali`` file and re-aggregate it off-line with a
   different (coarser) scheme.

Run: ``python examples/quickstart.py``
"""

import os
import tempfile

from repro import Caliper, Dataset, VirtualClock, run_query
from repro.report import format_table


def main() -> None:
    # --- 1. set up the runtime with an on-line aggregation channel ---------
    clock = VirtualClock()  # deterministic demo; omit for real wall time
    cali = Caliper(clock=clock)
    channel = cali.create_channel(
        "profile",
        {
            "services": ["event", "timer", "aggregate"],
            "aggregate.config": (
                "AGGREGATE count, sum(time.duration) "
                "GROUP BY function, loop.iteration"
            ),
            "aggregate.rename_count": False,
        },
    )

    # --- 2. the annotated program (the paper's Listing 1) ----------------------
    def foo(i: int) -> None:
        with cali.region("function", "foo"):
            clock.advance(10.0)  # pretend work

    def bar(i: int) -> None:
        with cali.region("function", "bar"):
            clock.advance(10.0)

    for i in range(4):
        cali.begin("loop.iteration", i)
        foo(1)
        foo(2)
        bar(1)
        cali.end("loop.iteration")

    # --- 3. flush and print the profile --------------------------------------
    records = channel.finish()
    print("time-series function profile (one row per unique key):\n")
    print(
        format_table(
            records,
            preferred=["function", "loop.iteration", "count", "sum#time.duration"],
        )
    )

    # --- 4. store, reload, re-aggregate with a coarser scheme -----------------
    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "profile.cali")
        Dataset(records).to_file(path)
        reloaded = Dataset.from_file(path)

        print("\ncoarser view (iteration dimension aggregated away):\n")
        result = run_query(
            "AGGREGATE sum(count), sum(sum#time.duration) "
            "GROUP BY function ORDER BY function",
            reloaded.records,
        )
        print(result.to_table())


if __name__ == "__main__":
    main()
