"""Quickstart: annotate, aggregate on-line, query off-line.

Reproduces the paper's running example (Listing 1 + the Section III-B
aggregation schemes) end to end:

1. annotate a toy program with ``function`` and ``loop.iteration``
   through the public ``repro.api.instrument`` facade;
2. aggregate snapshots on-line with a CalQL scheme;
3. print the resulting time-series function profile;
4. write it to a ``.cali`` file and re-aggregate it off-line with a
   different (coarser) scheme.

Run: ``python examples/quickstart.py``
"""

import os
import tempfile

from repro import Caliper, Dataset, VirtualClock, run_query
from repro.api import instrument
from repro.report import format_table
from repro.runtime import set_default_runtime


def main() -> None:
    # --- 1. set up the runtime with an on-line aggregation channel ---------
    clock = VirtualClock()  # deterministic demo; omit for real wall time
    cali = Caliper(clock=clock)
    set_default_runtime(cali)  # instrument.* helpers route here
    channel = cali.create_channel(
        "profile",
        {
            "services": ["event", "timer", "aggregate"],
            "aggregate.config": (
                "AGGREGATE count, sum(time.duration) "
                "GROUP BY function, loop.iteration"
            ),
            "aggregate.rename_count": False,
        },
    )

    # --- 2. the annotated program (the paper's Listing 1) ----------------------
    @instrument.function("foo")
    def foo(i: int) -> None:
        clock.advance(10.0)  # pretend work

    @instrument.function("bar")
    def bar(i: int) -> None:
        clock.advance(10.0)

    for i in range(4):
        with instrument.region(i, attribute="loop.iteration"):
            foo(1)
            foo(2)
            bar(1)

    # --- 3. flush and print the profile --------------------------------------
    records = channel.finish()
    print("time-series function profile (one row per unique key):\n")
    print(
        format_table(
            records,
            preferred=["function", "loop.iteration", "count", "sum#time.duration"],
        )
    )

    # --- 4. store, reload, re-aggregate with a coarser scheme -----------------
    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "profile.cali")
        Dataset(records).to_file(path)
        reloaded = Dataset.from_file(path)

        print("\ncoarser view (iteration dimension aggregated away):\n")
        result = run_query(
            "AGGREGATE sum(count), sum(sum#time.duration) "
            "GROUP BY function ORDER BY function",
            reloaded.records,
        )
        print(result.to_table())


if __name__ == "__main__":
    main()
