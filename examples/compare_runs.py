"""Comparing profiles (A/B analysis) with a key-join.

Two comparisons over the simulated CleverLeaf workload:

1. **run vs run** — a baseline against a variant whose AMR refinement blows
   up faster (more level-2 work): the per-*level* comparison pinpoints
   where the extra time went;
2. **rank vs rank within one run** — rank 8 (the paper's Fig. 9 anomaly)
   against rank 0: the per-level join makes the anomaly jump out.

Both are the same primitive: aggregate with a common key, join, diff.

Run: ``python examples/compare_runs.py``
"""

from dataclasses import replace

from repro.apps.cleverleaf import (
    CleverLeafConfig,
    channel_config_aggregate,
    run_simulation,
)
from repro.query import compare_profiles

SCHEME = "AGGREGATE sum(time.duration) GROUP BY kernel, amr.level, mpi.rank"


def main() -> None:
    base_config = CleverLeafConfig(timesteps=20, ranks=10, target_runtime=5.0)
    # the "regression": level-2 work grows much faster over the run
    slow_config = replace(base_config, level2_growth=6.0, target_runtime=6.0)

    print("running baseline and regressed configurations ...")
    base = run_simulation(base_config, channel_config_aggregate(SCHEME, "event"))
    slow = run_simulation(slow_config, channel_config_aggregate(SCHEME, "event"))

    # --- 1. run vs run, per AMR level -----------------------------------------
    result = compare_profiles(
        base.dataset().records,
        slow.dataset().records,
        key=["amr.level"],
        metrics=["time"],
        query=(
            "AGGREGATE sum(sum#time.duration) AS time "
            "WHERE kernel GROUP BY amr.level"
        ),
    )
    print("\nkernel time per AMR level, baseline vs regressed:\n")
    print(result.to_table(float_precision=4))
    worst = result[0]
    print(
        f"\n-> the regression concentrates on level "
        f"{worst['amr.level'].to_string()} "
        f"({worst['time.ratio'].to_double():.2f}x)"
    )

    # --- 2. rank 8 vs rank 0 within the baseline run -----------------------------
    records = base.dataset().records

    def rank_profile(rank: int):
        return [r for r in records if r.get("mpi.rank").value == rank]

    result = compare_profiles(
        rank_profile(0),
        rank_profile(8),
        key=["amr.level"],
        metrics=["time"],
        query=(
            "AGGREGATE sum(sum#time.duration) AS time "
            "WHERE kernel GROUP BY amr.level"
        ),
        suffixes=(".rank0", ".rank8"),
    )
    print("\nkernel time per AMR level, rank 0 vs rank 8 (same run):\n")
    print(result.to_table(float_precision=4))
    print(
        "\n-> rank 8 holds far more level-1 work than rank 0 — "
        "the Fig. 9 anomaly, found by a two-line diff."
    )


if __name__ == "__main__":
    main()
