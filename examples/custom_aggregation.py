"""Custom aggregation: user-defined dimensions, operators, and derived data.

Demonstrates the flexibility that distinguishes the paper's approach from
fixed-schema profilers:

1. an *application-specific data dimension* (a solver's convergence state)
   used directly as an aggregation key;
2. a *user-defined operator* (geometric mean) registered next to the
   built-ins and usable from CalQL text;
3. *derived attributes* via LET arithmetic;
4. *histogram* reduction for compact value distributions.

Run: ``python examples/custom_aggregation.py``
"""

import math

from repro import Caliper, VirtualClock
from repro.aggregate.ops import AggregateOp, default_registry
from repro.common.variant import ValueType, Variant
from repro.query import QueryEngine


# --- a user-defined operator -------------------------------------------------


class GeoMeanOp(AggregateOp):
    """``geomean(x)`` — geometric mean of positive values."""

    name = "geomean"

    def init(self):
        return [0, 0.0]  # count, sum of logs

    def update(self, state, record_get):
        v = record_get(self.args[0])
        if not v.is_empty and v.is_numeric and v.to_double() > 0:
            state[0] += 1
            state[1] += math.log(v.to_double())

    def combine(self, state, other):
        state[0] += other[0]
        state[1] += other[1]

    def results(self, state):
        if state[0] == 0:
            return []
        return [
            (self.output_labels()[0], Variant(ValueType.DOUBLE, math.exp(state[1] / state[0])))
        ]


def main() -> None:
    registry = default_registry()
    registry.register("geomean", lambda args: GeoMeanOp(args))

    # --- an annotated "solver" with an application-specific dimension ----------
    clock = VirtualClock()
    cali = Caliper(clock=clock)
    channel = cali.create_channel(
        "profile",
        {"services": ["event", "timer", "trace"]},  # trace: keep records raw
    )

    import numpy as np

    rng = np.random.default_rng(42)
    for step in range(60):
        # the solver converges over time; 'regime' is pure application state
        residual = float(np.exp(-step / 12.0) * rng.uniform(0.8, 1.25))
        regime = (
            "diverged" if residual > 0.6 else "converging" if residual > 0.05 else "converged"
        )
        cali.set("solver.regime", regime)
        cali.set("solver.residual", residual)
        cali.set("grid.cells", int(rng.integers(5_000, 20_000)))
        with cali.region("function", "solve_step"):
            clock.advance(0.01 + residual * 0.05)

    records = channel.finish()

    # --- 1. group by the application-specific dimension ------------------------
    print("time per solver regime (an application-defined dimension):\n")
    result = QueryEngine(
        "AGGREGATE count, sum(time.duration), avg(solver.residual) "
        "WHERE function GROUP BY solver.regime ORDER BY sum#time.duration DESC",
        registry=registry,
    ).run(records)
    print(result.to_table())

    # --- 2. the custom operator, straight from CalQL text -------------------------
    print("\ngeometric-mean residual per regime (user-defined operator):\n")
    result = QueryEngine(
        "AGGREGATE geomean(solver.residual) WHERE function "
        "GROUP BY solver.regime ORDER BY solver.regime",
        registry=registry,
    ).run(records)
    print(result.to_table())

    # --- 3. derived attributes with LET ----------------------------------------
    print("\ncell throughput via LET (derived per-record attribute):\n")
    result = QueryEngine(
        "LET throughput = grid.cells / time.duration "
        "AGGREGATE avg(throughput), max(throughput) WHERE function "
        "GROUP BY solver.regime ORDER BY solver.regime",
        registry=registry,
    ).run(records)
    print(result.to_table())

    # --- 4. histogram reduction ---------------------------------------------------
    print("\nresidual distribution as a histogram (8 bins over [0, 1.5)):\n")
    result = QueryEngine(
        "AGGREGATE histogram(solver.residual,8,0,1.5) WHERE function",
        registry=registry,
    ).run(records)
    from repro.aggregate.ops import HistogramOp

    encoded = result[0]["histogram#solver.residual"].to_string()
    lo, hi, under, bins, over = HistogramOp.decode(encoded)
    width = (hi - lo) / len(bins)
    for i, count in enumerate(bins):
        lo_edge = lo + i * width
        print(f"  [{lo_edge:5.3f}, {lo_edge + width:5.3f})  {'#' * count} {count}")


if __name__ == "__main__":
    main()
