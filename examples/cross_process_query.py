"""Cross-process aggregation with the (simulated-)MPI query application.

Generates a ParaDiS-like distributed dataset — one ``.cali`` file per rank,
each a per-process time-series profile — and runs the paper's Section V-C
query over it, first serially, then through the parallel query application
at several scales, printing the Fig.-4-style phase timings.

Run: ``python examples/cross_process_query.py``
"""

import tempfile

from repro import Dataset
from repro.apps.paradis import TOTAL_TIME_QUERY, ParaDiSConfig, write_dataset
from repro.query import MPIQueryRunner, QueryEngine


def main() -> None:
    n_files = 32
    config = ParaDiSConfig(ranks=n_files, records_per_rank=500, iterations=25)

    with tempfile.TemporaryDirectory() as tmp:
        print(f"generating {n_files} per-rank profile files ...")
        paths = write_dataset(config, tmp)

        # --- serial query --------------------------------------------------
        print("\nserial query:")
        print(f"  {TOTAL_TIME_QUERY}")
        dataset = Dataset.from_files(paths)
        result = QueryEngine(TOTAL_TIME_QUERY + " ORDER BY sum#sum#time.duration DESC LIMIT 8").run(
            dataset.records
        )
        print()
        print(result.to_table())

        # --- parallel query at increasing scale --------------------------------
        print("\nparallel query application (binomial reduction tree):")
        print(f"{'procs':>6}  {'total [s]':>10}  {'local [s]':>10}  {'reduce [s]':>10}  {'msgs':>5}")
        for size in (1, 4, 16, 32):
            runner = MPIQueryRunner(TOTAL_TIME_QUERY, size=size)
            outcome = runner.run_files(paths)
            t = outcome.times
            print(
                f"{size:>6}  {t.total:>10.5f}  {t.local:>10.5f}  "
                f"{t.reduce:>10.5f}  {outcome.messages:>5}"
            )
        print(
            "\nweak-scaling shape: local read+process time shrinks as files "
            "spread over more ranks;\nthe tree reduction grows only "
            "logarithmically with the process count."
        )


if __name__ == "__main__":
    main()
