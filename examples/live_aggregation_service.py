"""Live aggregation service: stream profiles over TCP, query them mid-run.

The paper's on-line aggregation service (Section IV-B) as a networked
deployment:

1. start an :class:`~repro.net.AggregationServer` — a sharded TCP daemon
   holding one AggregationDB per shard;
2. run two instrumented "application processes", each streaming its
   snapshot records to the server through the ``netflush`` runtime
   service while the workload executes;
3. in the middle of the run, execute a live CalQL query against a
   consistent merged snapshot of the in-flight shards — ingestion never
   pauses;
4. drain the final merged profile and show the server's own
   ``observe.*`` telemetry, itself CalQL-queryable;
5. rerun the topology with a ``WINDOW`` scheme — event-time windows,
   online confidence-interval estimates for the open windows, and
   watermark-driven retirement of the closed ones (``docs/streaming.md``).

The same topology works across machines: ``repro-query serve`` runs the
daemon, ``repro-query live "<CalQL>"`` queries it from anywhere.

Run: ``python examples/live_aggregation_service.py``
"""

from repro import Caliper, VirtualClock, run_query
from repro.common import Record, Variant
from repro.net import AggregationServer, FlushClient, live_query
from repro.report import format_table

SCHEME = "AGGREGATE count, sum(time.duration) GROUP BY function, process"
KERNELS = [("solve", 3.0), ("exchange", 1.0), ("io", 0.5)]


def run_process(name: str, port: int, iterations: int) -> None:
    """One simulated application process streaming to the server."""
    clock = VirtualClock()
    cali = Caliper(clock=clock)
    channel = cali.create_channel(
        f"stream-{name}",
        {
            "services": ["event", "timer", "netflush"],
            "netflush.port": port,
            "netflush.stream": True,
            "netflush.batch_size": 8,
        },
    )
    channel.set_global("process", name)
    cali.set("process", name)  # part of every snapshot -> usable as a key
    for _ in range(iterations):
        for kernel, cost in KERNELS:
            with cali.region("function", kernel):
                clock.advance(cost)
    channel.finish()


def main() -> None:
    with AggregationServer(SCHEME, shards=4) as server:
        host, port = server.address
        print(f"server listening on {host}:{port} ({server.epoch=})\n")

        # -- first producer runs to completion, second follows ---------------
        run_process("rank-0", port, iterations=3)

        # -- live query: consistent snapshot while state is in flight ---------
        mid = live_query(
            host,
            port,
            "AGGREGATE sum(count) WHERE function "
            "GROUP BY function ORDER BY function",
        )
        print("live view after the first process:")
        print(mid)
        print()

        run_process("rank-1", port, iterations=5)

        # -- final merged profile ---------------------------------------------
        final = server.run_query(
            "AGGREGATE sum(count), sum(sum#time.duration) "
            "WHERE function GROUP BY function ORDER BY function"
        )
        print("final merged profile (both processes):")
        print(final)
        print()

        # -- the server profiles itself ----------------------------------------
        stats = server.run_query(
            "SELECT observe.metric, observe.value "
            "WHERE observe.kind=counter ORDER BY observe.metric",
            target="telemetry",
        )
        print("server telemetry (CalQL over observe.* records):")
        print(stats)
        print()

    windowed()


def windowed() -> None:
    """The same service in windowed-streaming mode.

    Records carry an event time (``time.start``); the scheme's WINDOW
    clause makes the server stamp each record into a 10-second tumbling
    window. The watermark (max event time per source, minus the allowed
    lateness) retires windows as they close; open windows answer with
    extrapolated estimates and confidence intervals.
    """
    scheme = (
        "AGGREGATE count, sum(time.duration) GROUP BY function "
        "WINDOW tumbling(10s)"
    )
    base = "AGGREGATE count, sum(time.duration) GROUP BY function"

    def rec(function: str, start: float, duration: float) -> Record:
        return Record.from_variants(
            {
                "function": Variant.of(function),
                "time.start": Variant.of(start),
                "time.duration": Variant.of(duration),
            }
        )

    with AggregationServer(scheme, shards=2, lateness=1.0) as server:
        host, port = server.address
        print(f"windowed server on {host}:{port} "
              f"({server.window_assigner.describe()}, lateness 1s)\n")

        # one producer streams 35 seconds of in-order events
        with FlushClient(host, port, scheme=base, client_id="producer") as c:
            t = 0.0
            while t < 35.0:
                for kernel, cost in KERNELS:
                    c.push(rec(kernel, t, cost))
                    t += cost
            c.flush()

            # open windows: extrapolated totals with confidence bounds
            est = live_query(
                host,
                port,
                "SELECT function, window.start, est#count, est.lo#count, "
                "est.hi#count, est.fraction ORDER BY window.start, function",
                target="estimate",
            )
            print(f"open-window estimates (watermark {server.watermark()}):")
            print(est)
            print()

        # the watermark has passed windows [0,10) .. [20,30): retire them
        server.retire_now()
        ret = live_query(
            host,
            port,
            "AGGREGATE sum(count) GROUP BY window.start, window.end "
            "ORDER BY window.start",
            target="retired",
        )
        print("retired (final, immutable) windows:")
        print(ret)


if __name__ == "__main__":
    main()
