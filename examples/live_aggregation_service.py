"""Live aggregation service: stream profiles over TCP, query them mid-run.

The paper's on-line aggregation service (Section IV-B) as a networked
deployment:

1. start an :class:`~repro.net.AggregationServer` — a sharded TCP daemon
   holding one AggregationDB per shard;
2. run two instrumented "application processes", each streaming its
   snapshot records to the server through the ``netflush`` runtime
   service while the workload executes;
3. in the middle of the run, execute a live CalQL query against a
   consistent merged snapshot of the in-flight shards — ingestion never
   pauses;
4. drain the final merged profile and show the server's own
   ``observe.*`` telemetry, itself CalQL-queryable.

The same topology works across machines: ``repro-query serve`` runs the
daemon, ``repro-query live "<CalQL>"`` queries it from anywhere.

Run: ``python examples/live_aggregation_service.py``
"""

from repro import Caliper, VirtualClock, run_query
from repro.net import AggregationServer, live_query
from repro.report import format_table

SCHEME = "AGGREGATE count, sum(time.duration) GROUP BY function, process"
KERNELS = [("solve", 3.0), ("exchange", 1.0), ("io", 0.5)]


def run_process(name: str, port: int, iterations: int) -> None:
    """One simulated application process streaming to the server."""
    clock = VirtualClock()
    cali = Caliper(clock=clock)
    channel = cali.create_channel(
        f"stream-{name}",
        {
            "services": ["event", "timer", "netflush"],
            "netflush.port": port,
            "netflush.stream": True,
            "netflush.batch_size": 8,
        },
    )
    channel.set_global("process", name)
    cali.set("process", name)  # part of every snapshot -> usable as a key
    for _ in range(iterations):
        for kernel, cost in KERNELS:
            with cali.region("function", kernel):
                clock.advance(cost)
    channel.finish()


def main() -> None:
    with AggregationServer(SCHEME, shards=4) as server:
        host, port = server.address
        print(f"server listening on {host}:{port} ({server.epoch=})\n")

        # -- first producer runs to completion, second follows ---------------
        run_process("rank-0", port, iterations=3)

        # -- live query: consistent snapshot while state is in flight ---------
        mid = live_query(
            host,
            port,
            "AGGREGATE sum(count) WHERE function "
            "GROUP BY function ORDER BY function",
        )
        print("live view after the first process:")
        print(mid)
        print()

        run_process("rank-1", port, iterations=5)

        # -- final merged profile ---------------------------------------------
        final = server.run_query(
            "AGGREGATE sum(count), sum(sum#time.duration) "
            "WHERE function GROUP BY function ORDER BY function"
        )
        print("final merged profile (both processes):")
        print(final)
        print()

        # -- the server profiles itself ----------------------------------------
        stats = server.run_query(
            "SELECT observe.metric, observe.value "
            "WHERE observe.kind=counter ORDER BY observe.metric",
            target="telemetry",
        )
        print("server telemetry (CalQL over observe.* records):")
        print(stats)


if __name__ == "__main__":
    main()
