"""Setup shim.

Metadata lives in pyproject.toml; this file exists so legacy editable
installs (``pip install -e .`` without the ``wheel`` package available)
keep working in offline environments.
"""

from setuptools import setup

setup()
