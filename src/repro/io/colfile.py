"""``.rcf`` — the repro columnar file: zero-copy binary columnar encoding.

Everything the system moves today is text: ``.cali`` files are parsed
line-by-line into rows before a :class:`~repro.io.dataset.ColumnStore` is
built, and wire/spool payloads carry JSON.  This module provides the shared
binary columnar representation that removes that tax in all three places:

* **column batches** — the unit codec (:func:`encode_batch` /
  :func:`decode_batch`): a magic + JSON schema header followed by typed
  little-endian column buffers with packed null bitmaps, strings and mixed
  columns dictionary-encoded.  Buffers are 8-byte aligned so decoding is
  ``np.frombuffer`` views into the source bytes — no parsing, no copies.
* **files** — :class:`ColfileWriter` / :class:`ColfileReader`: a sequence of
  column-batch chunks plus a JSON footer directory at the end (so chunks
  stream out without buffering the whole dataset), ``mmap``-ed on read.  A
  single-chunk file loads straight into a :class:`ColfileStore` whose
  numeric columns are views into the mapping.
* **operator states** — :func:`states_to_binary` / :func:`states_from_binary`
  encode the ``(key entries, operator states)`` pairs that FORWARD frames
  and flush batches ship: group keys as a column batch, state cells
  column-by-column (varint ints, raw float64, generic fallback).

Decoding is defensive everywhere: all offsets/lengths are validated against
the payload before any allocation, dictionary and row counts are capped by
:class:`DecodeLimits`, and malformed input raises :class:`ColfileError`
rather than crashing or allocating attacker-controlled amounts of memory.
The file layout and compatibility rules are documented in ``docs/format.md``.
"""

from __future__ import annotations

import json
import mmap
import os
import struct
from typing import Iterable, Iterator, Optional, Sequence, Union

import numpy as np

from ..common.errors import DatasetError
from ..common.record import Record
from ..common.variant import ValueType, Variant
from .dataset import ColumnStore

__all__ = [
    "ColfileError",
    "DecodeLimits",
    "ColfileStore",
    "ColfileWriter",
    "ColfileReader",
    "write_colfile",
    "read_colfile",
    "encode_batch",
    "decode_batch",
    "decode_batch_store",
    "records_from_store",
    "states_to_binary",
    "states_from_binary",
    "pack_value",
    "unpack_value",
]


class ColfileError(DatasetError):
    """Malformed or unsupported ``.rcf`` / column-batch data."""


#: file header magic + footer magic; bump FILE_VERSION for incompatible changes
FILE_MAGIC = b"RCF1"
FOOT_MAGIC = b"RCFZ"
FILE_VERSION = 1

#: column-batch magic (shared by file chunks, wire sections, worker shipping)
BATCH_MAGIC = b"RCB1"
#: binary operator-states magic
STATES_MAGIC = b"RSB1"

_FILE_HEADER = struct.Struct("<4sHH")  # magic, version, flags
_FILE_FOOTER = struct.Struct("<I4s")  # footer length, footer magic
_U32 = struct.Struct("<I")
_F64 = struct.Struct("<d")
_I64 = struct.Struct("<q")
_U64 = struct.Struct("<Q")

#: default chunk size for file writes — large enough to amortize headers,
#: small enough that one chunk is a reasonable out-of-core working set
DEFAULT_CHUNK_ROWS = 65_536

#: fixed on-disk/on-wire tag per value type (never renumber)
_TYPE_TAG = {
    ValueType.INV: 0,
    ValueType.INT: 1,
    ValueType.UINT: 2,
    ValueType.DOUBLE: 3,
    ValueType.STRING: 4,
    ValueType.BOOL: 5,
    ValueType.USR: 6,
}
_TAG_TYPE = {tag: vtype for vtype, tag in _TYPE_TAG.items()}
#: dictionary-entry tag flag: payload is decimal text (int outside 64 bits)
_TEXT_FLAG = 0x80

#: numpy dtype string per typed (non-dictionary) column encoding
_NUM_DTYPE = {
    ValueType.DOUBLE: "<f8",
    ValueType.INT: "<i8",
    ValueType.UINT: "<u8",
    ValueType.BOOL: "|u1",
}
_CODE_DTYPES = ("<i1", "|i1", "<i2", "<i4", "<i8")

_INT_MIN, _INT_MAX = -(2**63), 2**63 - 1
_UINT_MAX = 2**64 - 1


class DecodeLimits:
    """Caps applied while decoding untrusted column batches.

    Structural validation (every buffer must lie inside the payload, sizes
    must match the declared row count) already bounds allocations by the
    payload size; these caps add explicit ceilings on the *decoded* expansion
    so a hostile header cannot request huge materializations even within a
    large frame.
    """

    __slots__ = ("max_rows", "max_dict", "max_bytes")

    def __init__(
        self,
        max_rows: int = 100_000_000,
        max_dict: int = 16_000_000,
        max_bytes: int = 1 << 31,
    ) -> None:
        self.max_rows = max_rows
        self.max_dict = max_dict
        self.max_bytes = max_bytes

    @classmethod
    def for_decoded_size(cls, max_bytes: int) -> "DecodeLimits":
        """Limits scaled so decoded arrays stay within ``max_bytes``.

        Decoding widens at most 8x (``int8`` codes → ``int64``), so rows are
        capped at ``max_bytes / 8`` and everything else follows.
        """
        max_bytes = int(max_bytes)
        return cls(
            max_rows=max(1, max_bytes // 8),
            max_dict=max(1, max_bytes // 16),
            max_bytes=max_bytes,
        )


_DEFAULT_LIMITS = DecodeLimits()


# ---------------------------------------------------------------------------
# column batch encoding


class _BufferBuilder:
    """Accumulates 8-byte-aligned buffers, handing out (offset, length)."""

    def __init__(self) -> None:
        self.parts: list[bytes] = []
        self.pos = 0

    def add(self, data: bytes) -> list[int]:
        pad = (-self.pos) % 8
        if pad:
            self.parts.append(b"\x00" * pad)
            self.pos += pad
        off = self.pos
        self.parts.append(data)
        self.pos += len(data)
        return [off, len(data)]


def _min_code_dtype(n_values: int) -> str:
    """Smallest signed dtype that holds codes ``-1 .. n_values-1``."""
    if n_values < 2**7:
        return "<i1"
    if n_values < 2**15:
        return "<i2"
    if n_values < 2**31:
        return "<i4"
    return "<i8"


def _encode_dictionary(values: Sequence[Variant]) -> tuple[bytes, bytes, bytes]:
    """``(tags, offsets, blob)`` buffers for a dictionary value table."""
    tags = bytearray(len(values))
    offsets = np.empty(len(values) + 1, dtype="<u4")
    blob = bytearray()
    offsets[0] = 0
    for i, v in enumerate(values):
        tag = _TYPE_TAG[v.type]
        t = v.type
        if t is ValueType.DOUBLE:
            blob += _F64.pack(v.value)
        elif t is ValueType.INT:
            if _INT_MIN <= v.value <= _INT_MAX:
                blob += _I64.pack(v.value)
            else:
                tag |= _TEXT_FLAG
                blob += str(v.value).encode("ascii")
        elif t is ValueType.UINT:
            if v.value <= _UINT_MAX:
                blob += _U64.pack(v.value)
            else:
                tag |= _TEXT_FLAG
                blob += str(v.value).encode("ascii")
        elif t is ValueType.BOOL:
            blob += b"\x01" if v.value else b"\x00"
        else:  # STRING / USR
            blob += v.to_string().encode("utf-8")
        tags[i] = tag
        if len(blob) >= 2**32:
            raise ColfileError("dictionary blob exceeds 4 GiB; write smaller chunks")
        offsets[i + 1] = len(blob)
    return bytes(tags), offsets.tobytes(), bytes(blob)


def _decode_dictionary(
    tags: np.ndarray, offsets: np.ndarray, blob: memoryview
) -> list[Variant]:
    values: list[Variant] = []
    blob_bytes = bytes(blob)
    for i in range(len(tags)):
        tag = int(tags[i])
        start, end = int(offsets[i]), int(offsets[i + 1])
        payload = blob_bytes[start:end]
        vtype = _TAG_TYPE.get(tag & ~_TEXT_FLAG)
        if vtype is None:
            raise ColfileError(f"unknown dictionary value tag {tag}")
        try:
            if tag & _TEXT_FLAG:
                if vtype not in (ValueType.INT, ValueType.UINT):
                    raise ColfileError("text-encoded payload on non-integer tag")
                values.append(Variant(vtype, int(payload.decode("ascii"))))
            elif vtype is ValueType.DOUBLE:
                values.append(Variant(vtype, _F64.unpack(payload)[0]))
            elif vtype is ValueType.INT:
                values.append(Variant(vtype, _I64.unpack(payload)[0]))
            elif vtype is ValueType.UINT:
                values.append(Variant(vtype, _U64.unpack(payload)[0]))
            elif vtype is ValueType.BOOL:
                values.append(Variant(vtype, payload != b"\x00"))
            elif vtype in (ValueType.STRING, ValueType.USR):
                values.append(Variant(vtype, payload.decode("utf-8")))
            else:
                raise ColfileError("INV value in dictionary")
        except (struct.error, ValueError, UnicodeDecodeError) as exc:
            raise ColfileError(f"bad dictionary entry {i}: {exc}") from None
    return values


def _column_arrays(
    records: Sequence[Record],
) -> dict[str, tuple[list[int], list[Variant]]]:
    """``label -> (present row indices, values)`` over a record batch.

    ``INV``-typed entries are normalized to absent — the same reading every
    query path already applies (``Record.get`` defaults empty, the
    ColumnStore interns them as missing).
    """
    cols: dict[str, tuple[list[int], list[Variant]]] = {}
    for i, record in enumerate(records):
        for label, v in record._entries.items():
            if v.type is ValueType.INV:
                continue
            col = cols.get(label)
            if col is None:
                col = cols[label] = ([], [])
            col[0].append(i)
            col[1].append(v)
    return cols


def _pack_mask(idx: list[int], nrows: int) -> Optional[bytes]:
    """Packed presence bitmap, or None when every row is present."""
    if len(idx) == nrows:
        return None
    mask = np.zeros(nrows, dtype=bool)
    mask[idx] = True
    return np.packbits(mask).tobytes()


def encode_batch(records: Sequence[Record]) -> bytes:
    """Encode a record batch into the ``RCB1`` binary columnar form.

    Columns whose present values share one numeric/bool type become typed
    little-endian buffers (plus a packed null bitmap unless fully dense);
    everything else — strings, USR blobs, mixed-type columns, integers that
    overflow 64 bits — is dictionary-encoded with exact type fidelity.
    Decoding reproduces the records exactly (INV entries excepted: they are
    normalized to absent, matching query semantics).
    """
    if not isinstance(records, (list, tuple)):
        records = list(records)
    nrows = len(records)
    buffers = _BufferBuilder()
    col_meta: list[dict] = []
    for label, (idx, vals) in _column_arrays(records).items():
        vtypes = {v.type for v in vals}
        dtype = _NUM_DTYPE.get(next(iter(vtypes))) if len(vtypes) == 1 else None
        arr = None
        if dtype is not None:
            try:
                arr = np.zeros(nrows, dtype=dtype)
                arr[idx] = [v.value for v in vals]
            except (OverflowError, ValueError):
                arr = None  # int outside 64 bits: fall back to dictionary
        if arr is not None:
            meta = {
                "name": label,
                "enc": "num",
                "t": _TYPE_TAG[next(iter(vtypes))],
                "data": buffers.add(arr.tobytes()),
            }
            nulls = _pack_mask(idx, nrows)
            if nulls is not None:
                meta["nulls"] = buffers.add(nulls)
            col_meta.append(meta)
            continue
        # dictionary encoding: exact (type, value) interning keeps e.g.
        # int 1 and double 1.0 distinct so round-trips preserve types
        table: dict[object, int] = {}
        values: list[Variant] = []
        codes_present = []
        for v in vals:
            key = (v.type, v.value)
            j = table.get(key)
            if j is None:
                j = table[key] = len(values)
                values.append(v)
            codes_present.append(j)
        cdt = _min_code_dtype(len(values))
        codes = np.full(nrows, -1, dtype=cdt)
        codes[idx] = codes_present
        tags, offsets, blob = _encode_dictionary(values)
        col_meta.append(
            {
                "name": label,
                "enc": "dict",
                "cdt": cdt,
                "codes": buffers.add(codes.tobytes()),
                "tags": buffers.add(tags),
                "offsets": buffers.add(offsets),
                "blob": buffers.add(blob),
            }
        )
    header = json.dumps(
        {"rows": nrows, "cols": col_meta}, separators=(",", ":")
    ).encode("utf-8")
    pad = (-(len(BATCH_MAGIC) + 4 + len(header))) % 8
    out = bytearray()
    out += BATCH_MAGIC
    out += _U32.pack(len(header) + pad)
    out += header
    out += b"\x00" * pad
    for part in buffers.parts:
        out += part
    return bytes(out)


class _NumColumn:
    """A typed numeric/bool column: values array + presence mask (None=dense)."""

    __slots__ = ("vtype", "values", "mask")

    def __init__(self, vtype: ValueType, values: np.ndarray, mask: Optional[np.ndarray]):
        self.vtype = vtype
        self.values = values
        self.mask = mask


class _DictColumn:
    """A dictionary-encoded column: int64 codes (-1 missing) + value table."""

    __slots__ = ("codes", "values")

    def __init__(self, codes: np.ndarray, values: list[Variant]):
        self.codes = codes
        self.values = values


_Column = Union[_NumColumn, _DictColumn]


def _slice(payload: memoryview, span: object, what: str) -> memoryview:
    """Bounds-checked buffer slice from a header ``[offset, length]`` entry."""
    if (
        not isinstance(span, (list, tuple))
        or len(span) != 2
        or not all(isinstance(x, int) and x >= 0 for x in span)
    ):
        raise ColfileError(f"bad buffer reference for {what}")
    off, length = span
    if off + length > len(payload):
        raise ColfileError(
            f"{what} buffer [{off}, {off + length}) exceeds payload of {len(payload)} bytes"
        )
    return payload[off : off + length]


def _decode_mask(payload: memoryview, span: object, nrows: int) -> np.ndarray:
    raw = _slice(payload, span, "nulls")
    if len(raw) != (nrows + 7) // 8:
        raise ColfileError("null bitmap size does not match row count")
    return np.unpackbits(np.frombuffer(raw, dtype=np.uint8), count=nrows).astype(bool)


def decode_batch(
    buf: Union[bytes, memoryview], limits: Optional[DecodeLimits] = None
) -> tuple[int, dict[str, _Column]]:
    """Decode an ``RCB1`` batch into ``(nrows, columns)``.

    Numeric buffers come back as numpy views into ``buf`` (zero-copy);
    dictionary codes are widened to ``int64``.  All declared offsets, sizes,
    counts, and code ranges are validated against ``limits`` and the actual
    payload before anything is allocated.
    """
    limits = limits or _DEFAULT_LIMITS
    mv = memoryview(buf)
    if len(mv) < len(BATCH_MAGIC) + 4:
        raise ColfileError("truncated column batch")
    if bytes(mv[:4]) != BATCH_MAGIC:
        raise ColfileError("bad column batch magic")
    header_len = _U32.unpack(bytes(mv[4:8]))[0]
    if 8 + header_len > len(mv):
        raise ColfileError("column batch header exceeds payload")
    try:
        # the stored length includes alignment padding NULs after the JSON
        header = json.loads(bytes(mv[8 : 8 + header_len]).rstrip(b"\x00").decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ColfileError(f"bad column batch header: {exc}") from None
    if not isinstance(header, dict):
        raise ColfileError("column batch header is not an object")
    nrows = header.get("rows")
    cols_meta = header.get("cols")
    if not isinstance(nrows, int) or nrows < 0 or not isinstance(cols_meta, list):
        raise ColfileError("column batch header missing rows/cols")
    if nrows > limits.max_rows:
        raise ColfileError(f"row count {nrows} exceeds limit {limits.max_rows}")
    if len(cols_meta) * max(nrows, 1) * 8 > limits.max_bytes:
        raise ColfileError("decoded batch would exceed the size limit")
    payload = mv[8 + header_len :]
    columns: dict[str, _Column] = {}
    for meta in cols_meta:
        if not isinstance(meta, dict) or not isinstance(meta.get("name"), str):
            raise ColfileError("bad column metadata")
        label = meta["name"]
        if label in columns:
            raise ColfileError(f"duplicate column {label!r}")
        enc = meta.get("enc")
        if enc == "num":
            tag = meta.get("t")
            vtype = _TAG_TYPE.get(tag) if isinstance(tag, int) else None
            dtype = _NUM_DTYPE.get(vtype) if vtype is not None else None
            if dtype is None:
                raise ColfileError(f"bad numeric column type for {label!r}")
            raw = _slice(payload, meta.get("data"), label)
            if len(raw) != nrows * np.dtype(dtype).itemsize:
                raise ColfileError(f"column {label!r} data does not match row count")
            arr = np.frombuffer(raw, dtype=dtype)
            mask = (
                _decode_mask(payload, meta["nulls"], nrows)
                if "nulls" in meta
                else None
            )
            columns[label] = _NumColumn(vtype, arr, mask)
        elif enc == "dict":
            cdt = meta.get("cdt")
            if cdt not in _CODE_DTYPES:
                raise ColfileError(f"bad code dtype for {label!r}")
            raw = _slice(payload, meta.get("codes"), label)
            if len(raw) != nrows * np.dtype(cdt).itemsize:
                raise ColfileError(f"column {label!r} codes do not match row count")
            codes = np.frombuffer(raw, dtype=cdt)
            tags_raw = _slice(payload, meta.get("tags"), f"{label} tags")
            ndict = len(tags_raw)
            if ndict > limits.max_dict:
                raise ColfileError(
                    f"dictionary of {ndict} entries exceeds limit {limits.max_dict}"
                )
            offs_raw = _slice(payload, meta.get("offsets"), f"{label} offsets")
            if len(offs_raw) != 4 * (ndict + 1):
                raise ColfileError(f"column {label!r} offsets do not match dictionary")
            offsets = np.frombuffer(offs_raw, dtype="<u4")
            blob = _slice(payload, meta.get("blob"), f"{label} blob")
            if ndict and (
                np.any(np.diff(offsets.astype(np.int64)) < 0)
                or int(offsets[-1]) > len(blob)
                or int(offsets[0]) != 0
            ):
                raise ColfileError(f"column {label!r} dictionary offsets are invalid")
            codes = codes.astype(np.int64)
            if nrows and (int(codes.max()) >= ndict or int(codes.min()) < -1):
                raise ColfileError(f"column {label!r} codes out of dictionary range")
            tags = np.frombuffer(tags_raw, dtype=np.uint8)
            columns[label] = _DictColumn(codes, _decode_dictionary(tags, offsets, blob))
        else:
            raise ColfileError(f"unknown column encoding {enc!r}")
    return nrows, columns


# ---------------------------------------------------------------------------
# ColumnStore over decoded columns


class ColfileStore(ColumnStore):
    """A :class:`ColumnStore` served directly from decoded column buffers.

    Dictionary columns drop straight into the interned-column cache
    (zero-copy codes); typed numeric columns satisfy :meth:`numeric` as
    views and intern lazily (via ``np.unique``) only if a query groups or
    filters on them.  Records are materialized on demand — the vectorized
    aggregation path never touches them.
    """

    def __init__(self, nrows: int, columns: dict[str, _Column]) -> None:
        self._records: Optional[list[Record]] = None  # type: ignore[assignment]
        self._n = nrows
        self._columns = columns
        self._interned: dict[str, tuple[np.ndarray, list[Variant]]] = {}
        self._numeric: dict[tuple[str, bool], tuple[np.ndarray, np.ndarray]] = {}
        for label, col in columns.items():
            if isinstance(col, _DictColumn):
                self._interned[label] = (col.codes, col.values)

    @property
    def records(self) -> list[Record]:
        if self._records is None:
            self._records = records_from_store(self)
        return self._records

    @property
    def columns(self) -> dict[str, _Column]:
        return self._columns

    def labels(self) -> list[str]:
        return sorted(self._columns)

    def interned(self, label: str) -> tuple[np.ndarray, list[Variant]]:
        cached = self._interned.get(label)
        if cached is not None:
            return cached
        col = self._columns.get(label)
        if col is None:
            out: tuple[np.ndarray, list[Variant]] = (
                np.full(self._n, -1, dtype=np.int64),
                [],
            )
        else:
            out = _intern_num_column(col, self._n)
        self._interned[label] = out
        return out

    def numeric(
        self, label: str, include_bool: bool = True
    ) -> tuple[np.ndarray, np.ndarray]:
        key = (label, include_bool)
        cached = self._numeric.get(key)
        if cached is not None:
            return cached
        col = self._columns.get(label)
        if not isinstance(col, _NumColumn):
            return super().numeric(label, include_bool)  # dict / missing column
        if col.vtype is ValueType.BOOL and not include_bool:
            out = (
                np.zeros(self._n, dtype=np.float64),
                np.zeros(self._n, dtype=bool),
            )
        else:
            values = (
                col.values
                if col.values.dtype == np.float64
                else col.values.astype(np.float64)
            )
            # the contract says values are 0.0 where the mask is False; the
            # writer zero-fills missing slots, so the view stays zero-copy
            mask = np.ones(self._n, dtype=bool) if col.mask is None else col.mask
            out = (values, mask)
        self._numeric[key] = out
        return out


def _intern_num_column(
    col: _NumColumn, nrows: int
) -> tuple[np.ndarray, list[Variant]]:
    """First-class interned view of a typed column (vectorized).

    Distinct values come out in sorted rather than first-seen order — every
    consumer of ``interned()`` (grouping, predicates, ``first``) is
    insensitive to dictionary order, so this is observationally equivalent
    and avoids a per-row Python loop.
    """
    if col.mask is None:
        uniq, inv = np.unique(col.values, return_inverse=True)
        codes = inv.astype(np.int64)
    else:
        present = col.values[col.mask]
        uniq, inv = np.unique(present, return_inverse=True)
        codes = np.full(nrows, -1, dtype=np.int64)
        codes[col.mask] = inv
    vtype = col.vtype
    if vtype is ValueType.BOOL:
        values = [Variant(vtype, bool(x)) for x in uniq.tolist()]
    elif vtype is ValueType.DOUBLE:
        values = [Variant(vtype, float(x)) for x in uniq.tolist()]
    else:
        values = [Variant(vtype, int(x)) for x in uniq.tolist()]
    return codes, values


def records_from_store(store: ColfileStore) -> list[Record]:
    """Materialize plain :class:`Record` rows from a columnar store."""
    nrows = len(store)
    rows: list[dict[str, Variant]] = [{} for _ in range(nrows)]
    for label, col in store.columns.items():
        if isinstance(col, _DictColumn):
            values = col.values
            present = np.nonzero(col.codes >= 0)[0]
            codes = col.codes
            for i in present.tolist():
                rows[i][label] = values[codes[i]]
        else:
            vtype = col.vtype
            vals = col.values.tolist()
            if col.mask is None:
                idx: Iterable[int] = range(nrows)
            else:
                idx = np.nonzero(col.mask)[0].tolist()
            if vtype is ValueType.BOOL:
                for i in idx:
                    rows[i][label] = Variant(vtype, bool(vals[i]))
            else:
                for i in idx:
                    rows[i][label] = Variant(vtype, vals[i])
    return [Record.from_variants(r) for r in rows]


def decode_batch_store(
    buf: Union[bytes, memoryview], limits: Optional[DecodeLimits] = None
) -> ColfileStore:
    """Decode a batch straight into a query-ready :class:`ColfileStore`."""
    nrows, columns = decode_batch(buf, limits)
    return ColfileStore(nrows, columns)


def _to_dict_form(
    col: Optional[_Column], nrows: int
) -> tuple[np.ndarray, list[Variant]]:
    """Any column (or a missing one) as exact ``(codes, values)``."""
    if col is None:
        return np.full(nrows, -1, dtype=np.int64), []
    if isinstance(col, _DictColumn):
        return col.codes, col.values
    return _intern_num_column(col, nrows)


def merge_stores(stores: Sequence[ColfileStore]) -> ColfileStore:
    """One store over the concatenation of several chunk stores.

    Columns that keep one typed encoding across chunks concatenate
    directly; mixed or dictionary columns merge through a shared value
    table with per-chunk code remapping.  A single chunk passes through
    untouched (fully zero-copy).
    """
    if len(stores) == 1:
        return stores[0]
    total = sum(len(s) for s in stores)
    labels: list[str] = []
    for s in stores:
        for label in s.columns:
            if label not in labels:
                labels.append(label)
    merged: dict[str, _Column] = {}
    for label in labels:
        cols = [s.columns.get(label) for s in stores]
        vtypes = {c.vtype for c in cols if isinstance(c, _NumColumn)}
        if (
            len(vtypes) == 1
            and all(c is None or isinstance(c, _NumColumn) for c in cols)
        ):
            vtype = next(iter(vtypes))
            dtype = _NUM_DTYPE[vtype]
            parts, masks = [], []
            dense = all(c is not None and c.mask is None for c in cols)
            for c, s in zip(cols, stores):
                n = len(s)
                if c is None:
                    parts.append(np.zeros(n, dtype=dtype))
                    masks.append(np.zeros(n, dtype=bool))
                else:
                    parts.append(c.values)
                    masks.append(
                        np.ones(n, dtype=bool) if c.mask is None else c.mask
                    )
            merged[label] = _NumColumn(
                vtype,
                np.concatenate(parts),
                None if dense else np.concatenate(masks),
            )
            continue
        table: dict[object, int] = {}
        values: list[Variant] = []
        parts = []
        for c, s in zip(cols, stores):
            codes, vals = _to_dict_form(c, len(s))
            lookup = np.empty(len(vals) + 1, dtype=np.int64)
            lookup[0] = -1
            for j, v in enumerate(vals):
                key = (v.type, v.value)
                idx = table.get(key)
                if idx is None:
                    idx = table[key] = len(values)
                    values.append(v)
                lookup[j + 1] = idx
            parts.append(lookup[codes + 1])
        merged[label] = _DictColumn(np.concatenate(parts), values)
    return ColfileStore(total, merged)


# ---------------------------------------------------------------------------
# file layout


def _globals_to_jsonable(globals_: Optional[dict[str, Variant]]) -> dict:
    out = {}
    for label, v in (globals_ or {}).items():
        if not isinstance(v, Variant):
            v = Variant.of(v)
        out[label] = [v.type.value, v.value]
    return out


def _globals_from_jsonable(obj: object) -> dict[str, Variant]:
    if not isinstance(obj, dict):
        raise ColfileError("bad globals block in footer")
    out: dict[str, Variant] = {}
    for label, pair in obj.items():
        if not (isinstance(pair, list) and len(pair) == 2):
            raise ColfileError(f"bad global entry {label!r}")
        try:
            out[label] = Variant(ValueType(pair[0]), pair[1])
        except (ValueError, TypeError) as exc:
            raise ColfileError(f"bad global entry {label!r}: {exc}") from None
    return out


class ColfileWriter:
    """Streaming ``.rcf`` writer: header, then chunks, then footer directory.

    The footer lives at the *end* of the file so chunks can stream out as
    they are produced (the flush spool and ``convert`` never buffer the
    whole dataset).  Usable as a context manager.
    """

    def __init__(
        self,
        path: Union[str, os.PathLike],
        globals_: Optional[dict[str, Variant]] = None,
    ) -> None:
        self.path = os.fspath(path)
        self._stream = open(self.path, "wb")
        self._stream.write(_FILE_HEADER.pack(FILE_MAGIC, FILE_VERSION, 0))
        self._pos = _FILE_HEADER.size
        self._chunks: list[dict] = []
        self._globals = dict(globals_ or {})
        self._closed = False

    def write_chunk(self, records: Sequence[Record]) -> int:
        """Append one column-batch chunk; returns its encoded size."""
        if not isinstance(records, (list, tuple)):
            records = list(records)
        batch = encode_batch(records)
        self._chunks.append(
            {"offset": self._pos, "length": len(batch), "rows": len(records)}
        )
        self._stream.write(batch)
        self._pos += len(batch)
        return len(batch)

    def write_records(self, records: Iterable[Record], chunk_rows: int = 0) -> int:
        """Write records in fixed-size chunks; returns the record count."""
        chunk_rows = chunk_rows or DEFAULT_CHUNK_ROWS
        buf: list[Record] = []
        total = 0
        for record in records:
            buf.append(record)
            if len(buf) >= chunk_rows:
                total += len(buf)
                self.write_chunk(buf)
                buf = []
        if buf:
            total += len(buf)
            self.write_chunk(buf)
        return total

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        footer = json.dumps(
            {
                "version": FILE_VERSION,
                "rows": sum(c["rows"] for c in self._chunks),
                "globals": _globals_to_jsonable(self._globals),
                "chunks": self._chunks,
            },
            separators=(",", ":"),
        ).encode("utf-8")
        self._stream.write(footer)
        self._stream.write(_FILE_FOOTER.pack(len(footer), FOOT_MAGIC))
        self._stream.close()

    def __enter__(self) -> "ColfileWriter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class ColfileReader:
    """``mmap``-backed ``.rcf`` reader.

    The file is mapped read-only; chunk decoding produces numpy views into
    the mapping, so opening a dataset is O(footer) regardless of size, and
    the OS pages column data in on demand.
    """

    def __init__(
        self,
        path: Union[str, os.PathLike],
        limits: Optional[DecodeLimits] = None,
    ) -> None:
        self.path = os.fspath(path)
        self._limits = limits or _DEFAULT_LIMITS
        with open(self.path, "rb") as stream:
            size = os.fstat(stream.fileno()).st_size
            if size < _FILE_HEADER.size + _FILE_FOOTER.size:
                raise ColfileError(f"{self.path}: too short to be a .rcf file")
            self._map: Union[mmap.mmap, bytes]
            try:
                self._map = mmap.mmap(stream.fileno(), 0, access=mmap.ACCESS_READ)
            except (ValueError, OSError):
                self._map = stream.read()  # e.g. empty or unmappable file
        data = memoryview(self._map)
        magic, version, _flags = _FILE_HEADER.unpack(bytes(data[: _FILE_HEADER.size]))
        if magic != FILE_MAGIC:
            raise ColfileError(f"{self.path}: not a .rcf file (bad magic)")
        if version > FILE_VERSION:
            raise ColfileError(
                f"{self.path}: format version {version} is newer than supported "
                f"({FILE_VERSION})"
            )
        foot_len, foot_magic = _FILE_FOOTER.unpack(
            bytes(data[size - _FILE_FOOTER.size :])
        )
        if foot_magic != FOOT_MAGIC:
            raise ColfileError(f"{self.path}: missing footer (truncated file?)")
        foot_start = size - _FILE_FOOTER.size - foot_len
        if foot_start < _FILE_HEADER.size:
            raise ColfileError(f"{self.path}: footer length is invalid")
        try:
            footer = json.loads(bytes(data[foot_start : foot_start + foot_len]))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ColfileError(f"{self.path}: bad footer: {exc}") from None
        chunks = footer.get("chunks")
        if not isinstance(chunks, list):
            raise ColfileError(f"{self.path}: footer missing chunk directory")
        for c in chunks:
            if (
                not isinstance(c, dict)
                or not all(
                    isinstance(c.get(k), int) and c.get(k) >= 0
                    for k in ("offset", "length", "rows")
                )
                or c["offset"] + c["length"] > foot_start
            ):
                raise ColfileError(f"{self.path}: bad chunk directory entry")
        self._data = data
        self.chunks: list[dict] = chunks
        self.num_records: int = int(footer.get("rows", 0))
        self.globals: dict[str, Variant] = _globals_from_jsonable(
            footer.get("globals", {})
        )
        self._store: Optional[ColfileStore] = None

    @property
    def num_chunks(self) -> int:
        return len(self.chunks)

    def chunk_store(self, index: int) -> ColfileStore:
        """Decode one chunk into a query-ready store (numpy views)."""
        c = self.chunks[index]
        view = self._data[c["offset"] : c["offset"] + c["length"]]
        store = decode_batch_store(view, self._limits)
        if len(store) != c["rows"]:
            raise ColfileError(
                f"{self.path}: chunk {index} row count does not match directory"
            )
        return store

    def iter_stores(self) -> Iterator[ColfileStore]:
        for i in range(len(self.chunks)):
            yield self.chunk_store(i)

    def store(self) -> ColfileStore:
        """One store over the whole file (chunks merged; cached)."""
        if self._store is None:
            if not self.chunks:
                self._store = ColfileStore(0, {})
            else:
                self._store = merge_stores([self.chunk_store(i) for i in range(len(self.chunks))])
        return self._store

    def records(self) -> list[Record]:
        return self.store().records

    def close(self) -> None:
        # Views handed out keep the mapping alive through the buffer
        # protocol; closing here is best-effort for prompt cleanup.
        try:
            self._data.release()
            if isinstance(self._map, mmap.mmap):
                self._map.close()
        except (BufferError, ValueError):
            pass


def write_colfile(
    path: Union[str, os.PathLike],
    records: Iterable[Record],
    globals_: Optional[dict[str, Variant]] = None,
    chunk_rows: int = 0,
) -> int:
    """Write records (and globals) to a ``.rcf`` file; returns the count."""
    with ColfileWriter(path, globals_=globals_) as writer:
        return writer.write_records(records, chunk_rows=chunk_rows)


def read_colfile(
    path: Union[str, os.PathLike]
) -> tuple[list[Record], dict[str, Variant]]:
    """Read a ``.rcf`` file fully into records + globals."""
    reader = ColfileReader(path)
    try:
        return reader.records(), dict(reader.globals)
    finally:
        reader.close()


# ---------------------------------------------------------------------------
# generic value packing (operator state cells)

_VT_NONE, _VT_FALSE, _VT_TRUE, _VT_INT, _VT_FLOAT, _VT_STR, _VT_LIST, _VT_VARIANT = (
    range(8)
)
_MAX_DEPTH = 32


def _write_varint(out: bytearray, n: int) -> None:
    while True:
        b = n & 0x7F
        n >>= 7
        if n:
            out.append(b | 0x80)
        else:
            out.append(b)
            return


def _read_varint(mv: memoryview, pos: int) -> tuple[int, int]:
    result = 0
    shift = 0
    end = len(mv)
    while True:
        if pos >= end:
            raise ColfileError("truncated varint")
        b = mv[pos]
        pos += 1
        result |= (b & 0x7F) << shift
        if not b & 0x80:
            return result, pos
        shift += 7
        if shift > 10_000:  # arbitrary-precision ints are fine, gigabit ints not
            raise ColfileError("varint too long")


def _zigzag(n: int) -> int:
    return (n << 1) ^ (n >> 63) if -(2**62) <= n < 2**62 else (
        n << 1 if n >= 0 else ((-n) << 1) - 1
    )


def _unzigzag(n: int) -> int:
    return (n >> 1) if not n & 1 else -((n + 1) >> 1)


def pack_value(obj: object, out: Optional[bytearray] = None) -> bytearray:
    """Append one state cell (None/bool/int/float/str/list/Variant) to ``out``."""
    if out is None:
        out = bytearray()
    if obj is None:
        out.append(_VT_NONE)
    elif obj is False:
        out.append(_VT_FALSE)
    elif obj is True:
        out.append(_VT_TRUE)
    elif isinstance(obj, int):
        out.append(_VT_INT)
        _write_varint(out, _zigzag(obj))
    elif isinstance(obj, float):
        out.append(_VT_FLOAT)
        out += _F64.pack(obj)
    elif isinstance(obj, str):
        raw = obj.encode("utf-8")
        out.append(_VT_STR)
        _write_varint(out, len(raw))
        out += raw
    elif isinstance(obj, (list, tuple)):
        out.append(_VT_LIST)
        _write_varint(out, len(obj))
        for item in obj:
            pack_value(item, out)
    elif isinstance(obj, Variant):
        out.append(_VT_VARIANT)
        out.append(_TYPE_TAG[obj.type])
        t = obj.type
        if t in (ValueType.INT, ValueType.UINT):
            _write_varint(out, _zigzag(obj.value))
        elif t is ValueType.DOUBLE:
            out += _F64.pack(obj.value)
        elif t is ValueType.BOOL:
            out.append(1 if obj.value else 0)
        elif t in (ValueType.STRING, ValueType.USR):
            raw = obj.to_string().encode("utf-8")
            _write_varint(out, len(raw))
            out += raw
        # INV: tag alone
    else:
        raise ColfileError(f"cannot pack value of type {type(obj).__name__}")
    return out


def unpack_value(
    mv: memoryview, pos: int = 0, depth: int = 0
) -> tuple[object, int]:
    """Decode one packed cell at ``pos``; returns ``(value, new position)``."""
    if depth > _MAX_DEPTH:
        raise ColfileError("packed value nests too deeply")
    if pos >= len(mv):
        raise ColfileError("truncated packed value")
    tag = mv[pos]
    pos += 1
    if tag == _VT_NONE:
        return None, pos
    if tag == _VT_FALSE:
        return False, pos
    if tag == _VT_TRUE:
        return True, pos
    if tag == _VT_INT:
        n, pos = _read_varint(mv, pos)
        return _unzigzag(n), pos
    if tag == _VT_FLOAT:
        if pos + 8 > len(mv):
            raise ColfileError("truncated packed float")
        return _F64.unpack(bytes(mv[pos : pos + 8]))[0], pos + 8
    if tag == _VT_STR:
        n, pos = _read_varint(mv, pos)
        if pos + n > len(mv):
            raise ColfileError("truncated packed string")
        try:
            return bytes(mv[pos : pos + n]).decode("utf-8"), pos + n
        except UnicodeDecodeError as exc:
            raise ColfileError(f"bad packed string: {exc}") from None
    if tag == _VT_LIST:
        n, pos = _read_varint(mv, pos)
        if n > len(mv) - pos:  # every element takes >= 1 byte
            raise ColfileError("packed list length exceeds payload")
        items = []
        for _ in range(n):
            item, pos = unpack_value(mv, pos, depth + 1)
            items.append(item)
        return items, pos
    if tag == _VT_VARIANT:
        if pos >= len(mv):
            raise ColfileError("truncated packed variant")
        vtag = mv[pos]
        pos += 1
        vtype = _TAG_TYPE.get(vtag)
        if vtype is None:
            raise ColfileError(f"unknown packed variant tag {vtag}")
        if vtype is ValueType.INV:
            from ..common.variant import EMPTY_VARIANT

            return EMPTY_VARIANT, pos
        if vtype in (ValueType.INT, ValueType.UINT):
            n, pos = _read_varint(mv, pos)
            return Variant(vtype, _unzigzag(n)), pos
        if vtype is ValueType.DOUBLE:
            if pos + 8 > len(mv):
                raise ColfileError("truncated packed variant")
            return Variant(vtype, _F64.unpack(bytes(mv[pos : pos + 8]))[0]), pos + 8
        if vtype is ValueType.BOOL:
            if pos >= len(mv):
                raise ColfileError("truncated packed variant")
            return Variant(vtype, mv[pos] != 0), pos + 1
        n, pos = _read_varint(mv, pos)
        if pos + n > len(mv):
            raise ColfileError("truncated packed variant string")
        text = bytes(mv[pos : pos + n]).decode("utf-8", errors="strict")
        return Variant(vtype, text), pos + n
    raise ColfileError(f"unknown packed value tag {tag}")


# ---------------------------------------------------------------------------
# operator-state batches (FORWARD deltas, flushed snapshots)

_SLOT_INT, _SLOT_FLOAT, _SLOT_GENERIC = 0, 1, 2
_MODE_COLUMNAR, _MODE_GENERIC = 0, 1


def _classify_slot(cells: list[object]) -> int:
    has_int = has_float = False
    for x in cells:
        if x is None:
            continue
        if type(x) is int:
            has_int = True
        elif type(x) is float:
            has_float = True
        else:
            return _SLOT_GENERIC
    if has_int and has_float:
        return _SLOT_GENERIC
    return _SLOT_FLOAT if has_float else _SLOT_INT


def _encode_slot(cells: list[object], kind: int) -> bytes:
    n = len(cells)
    if kind == _SLOT_GENERIC:
        return bytes(pack_value(list(cells)))
    mask = np.array([c is not None for c in cells], dtype=bool)
    out = bytearray(np.packbits(mask).tobytes() if n else b"")
    present = [c for c in cells if c is not None]
    if kind == _SLOT_FLOAT:
        out += np.array(present, dtype="<f8").tobytes()
    else:
        for x in present:
            _write_varint(out, _zigzag(x))
    return bytes(out)


def _decode_slot(seg: memoryview, kind: int, n: int) -> list[object]:
    if kind == _SLOT_GENERIC:
        value, pos = unpack_value(seg, 0)
        if pos != len(seg) or not isinstance(value, list) or len(value) != n:
            raise ColfileError("bad generic state slot")
        return value
    nbytes = (n + 7) // 8
    if len(seg) < nbytes:
        raise ColfileError("truncated state slot bitmap")
    mask = np.unpackbits(
        np.frombuffer(seg[:nbytes], dtype=np.uint8), count=n
    ).astype(bool)
    npresent = int(mask.sum())
    cells: list[object] = [None] * n
    idx = np.nonzero(mask)[0].tolist()
    if kind == _SLOT_FLOAT:
        if len(seg) != nbytes + 8 * npresent:
            raise ColfileError("bad float state slot size")
        vals = np.frombuffer(seg[nbytes:], dtype="<f8").tolist()
        for i, x in zip(idx, vals):
            cells[i] = x
    else:
        pos = nbytes
        for i in idx:
            raw, pos = _read_varint(seg, pos)
            cells[i] = _unzigzag(raw)
        if pos != len(seg):
            raise ColfileError("bad int state slot size")
    return cells


def states_to_binary(
    groups: Sequence[tuple[dict[str, Variant], list[list]]]
) -> bytes:
    """Encode exported operator states (``AggregationDB.export_states``).

    Group-key entries ride as a column batch; state cells are laid out
    column-by-column per ``(operator, slot)`` — presence bitmap + zigzag
    varints for integer slots, bitmap + raw float64 for float slots, the
    generic packed codec for everything else.  Falls back to a fully
    generic layout when operator widths differ between groups (a malformed
    but representable input).
    """
    groups = list(groups)
    key_records = [Record.from_variants(dict(entries)) for entries, _ in groups]
    entries_batch = encode_batch(key_records)
    n = len(groups)
    out = bytearray()
    out += STATES_MAGIC
    widths: Optional[list[int]] = None
    if n:
        first = [len(s) for s in groups[0][1]]
        if all(
            len(states) == len(first)
            and all(len(s) == w for s, w in zip(states, first))
            for _, states in groups
        ):
            widths = first
    if widths is None and n:
        out.append(_MODE_GENERIC)
        out += _U32.pack(len(entries_batch))
        out += entries_batch
        out += bytes(pack_value([states for _, states in groups]))
        return bytes(out)
    out.append(_MODE_COLUMNAR)
    out += _U32.pack(len(entries_batch))
    out += entries_batch
    out += _U32.pack(len(widths or []))
    for op_i, width in enumerate(widths or []):
        out += _U32.pack(width)
        for slot_j in range(width):
            cells = [states[op_i][slot_j] for _, states in groups]
            kind = _classify_slot(cells)
            seg = _encode_slot(cells, kind)
            out.append(kind)
            out += _U32.pack(len(seg))
            out += seg
    return bytes(out)


def states_from_binary(
    buf: Union[bytes, memoryview], limits: Optional[DecodeLimits] = None
) -> list[tuple[dict[str, Variant], list[list]]]:
    """Decode :func:`states_to_binary` output (defensively validated)."""
    limits = limits or _DEFAULT_LIMITS
    mv = memoryview(buf)
    if len(mv) < len(STATES_MAGIC) + 1 + 4:
        raise ColfileError("truncated state batch")
    if bytes(mv[:4]) != STATES_MAGIC:
        raise ColfileError("bad state batch magic")
    mode = mv[4]
    entries_len = _U32.unpack(bytes(mv[5:9]))[0]
    if 9 + entries_len > len(mv):
        raise ColfileError("state batch key section exceeds payload")
    nrows, columns = decode_batch(mv[9 : 9 + entries_len], limits)
    key_store = ColfileStore(nrows, columns)
    entries = [dict(r._entries) for r in key_store.records]
    pos = 9 + entries_len
    if mode == _MODE_GENERIC:
        value, end = unpack_value(mv, pos)
        if end != len(mv) or not isinstance(value, list) or len(value) != nrows:
            raise ColfileError("bad generic state batch")
        return [
            (e, [list(s) if isinstance(s, list) else [s] for s in states])
            for e, states in zip(entries, value)
        ]
    if mode != _MODE_COLUMNAR:
        raise ColfileError(f"unknown state batch mode {mode}")
    if pos + 4 > len(mv):
        raise ColfileError("truncated state batch")
    n_ops = _U32.unpack(bytes(mv[pos : pos + 4]))[0]
    pos += 4
    if n_ops > 4096:
        raise ColfileError("implausible operator count in state batch")
    states: list[list[list]] = [[] for _ in range(nrows)]
    for _op in range(n_ops):
        if pos + 4 > len(mv):
            raise ColfileError("truncated state batch")
        width = _U32.unpack(bytes(mv[pos : pos + 4]))[0]
        pos += 4
        if width > 4096:
            raise ColfileError("implausible state width in state batch")
        slots: list[list[object]] = []
        for _slot in range(width):
            if pos + 5 > len(mv):
                raise ColfileError("truncated state batch")
            kind = mv[pos]
            seg_len = _U32.unpack(bytes(mv[pos + 1 : pos + 5]))[0]
            pos += 5
            if kind not in (_SLOT_INT, _SLOT_FLOAT, _SLOT_GENERIC):
                raise ColfileError(f"unknown state slot kind {kind}")
            if pos + seg_len > len(mv):
                raise ColfileError("state slot exceeds payload")
            slots.append(_decode_slot(mv[pos : pos + seg_len], kind, nrows))
            pos += seg_len
        for g in range(nrows):
            states[g].append([slots[j][g] for j in range(width)])
    if pos != len(mv):
        raise ColfileError("trailing bytes after state batch")
    return list(zip(entries, states))
