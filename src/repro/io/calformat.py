"""The compact ``.cali``-like serialization format.

Caliper datasets deduplicate repeated context through a context tree: every
distinct (attribute, value) chain is written once as node records, and each
snapshot line references the deepest node id plus its inline ("immediate")
measurement values.  Profiles whose snapshots repeat the same few region
combinations thousands of times compress massively under this scheme, which
is what makes event-mode tracing in Table I feasible at all.

File layout (text, line-oriented)::

    __caliper__,1                         header + version
    attr,<id>,<label>,<type>,<props>      attribute table
    glob,<label>,<type>,<value>           per-run global metadata
    node,<id>,<parent>,<attr-id>,<value>  context-tree nodes (parent -1 = root)
    snap,<node>,<label>=<type>:<value>,...  snapshot: node ref + immediates

Values are escaped with ``\\`` for the separator characters.  Everything
round-trips: ``read_cali(write_cali(records)) == records`` is property-
tested over arbitrary record sets.
"""

from __future__ import annotations

import io
import os
from typing import Iterable, Iterator, Optional, TextIO, Union

from ..common.attribute import AttrProperty, Attribute, AttributeRegistry
from ..common.errors import FormatError
from ..common.node import PATH_SEPARATOR, ContextTree, Node
from ..common.record import Record
from ..common.variant import ValueType, Variant

__all__ = ["CaliWriter", "CaliReader", "write_cali", "read_cali", "iter_records"]

_HEADER = "__caliper__,1"
_ESCAPES = {",": "\\,", "=": "\\=", "\\": "\\\\", "\n": "\\n", "\r": "\\r"}


def _escape(text: str) -> str:
    if not any(ch in text for ch in ",=\\\n\r"):
        return text
    return "".join(_ESCAPES.get(ch, ch) for ch in text)


def _split_raw(line: str, sep: str, maxsplit: int = -1) -> list[str]:
    """Split on unescaped ``sep``, keeping escape sequences intact."""
    parts: list[str] = []
    start = 0
    i = 0
    n = len(line)
    while i < n:
        ch = line[i]
        if ch == "\\" and i + 1 < n:
            i += 2
            continue
        if ch == sep:
            parts.append(line[start:i])
            start = i + 1
            if maxsplit >= 0 and len(parts) >= maxsplit:
                break
        i += 1
    parts.append(line[start:])
    return parts


def _unescape(text: str) -> str:
    if "\\" not in text:
        return text
    buf: list[str] = []
    i = 0
    n = len(text)
    while i < n:
        ch = text[i]
        if ch == "\\" and i + 1 < n:
            nxt = text[i + 1]
            if nxt == "n":
                buf.append("\n")
            elif nxt == "r":
                buf.append("\r")
            else:
                buf.append(nxt)
            i += 2
            continue
        buf.append(ch)
        i += 1
    return "".join(buf)


class CaliWriter:
    """Streaming writer with context-tree deduplication.

    The writer classifies each record entry: *reference* entries (values of
    non-ASVALUE attributes — region names, ranks, iteration numbers) go into
    the shared context tree; *immediate* entries (ASVALUE metrics such as
    ``time.duration`` or aggregated results) are written inline.  Entries
    whose labels are unknown to the registry are treated as immediate when
    numeric and reference when strings.
    """

    def __init__(self, stream: TextIO, registry: Optional[AttributeRegistry] = None) -> None:
        self.stream = stream
        self.registry = registry or AttributeRegistry()
        self.tree = ContextTree()
        self._written_attrs: set[int] = set()
        self._written_nodes: set[int] = set()
        self.num_records = 0
        stream.write(_HEADER + "\n")

    # -- metadata ------------------------------------------------------------

    def write_global(self, label: str, value: Union[Variant, object]) -> None:
        v = Variant.of(value)  # type: ignore[arg-type]
        self.stream.write(f"glob,{_escape(label)},{v.type.value},{_escape(v.to_string())}\n")

    def _ensure_attr(self, label: str, value: Variant) -> Attribute:
        attr = self.registry.find(label)
        if attr is None:
            props = AttrProperty.ASVALUE if value.is_numeric else AttrProperty.NONE
            attr = self.registry.create(label, value.type, props)
        if attr.id not in self._written_attrs:
            props_text = "|".join(attr.properties.names())
            self.stream.write(
                f"attr,{attr.id},{_escape(attr.label)},{attr.type.value},{props_text}\n"
            )
            self._written_attrs.add(attr.id)
        return attr

    def _ensure_node(self, node: Node) -> None:
        # Parents are interned before children, so a simple recursion bounded
        # by path depth suffices.
        if node.id in self._written_nodes or node.is_root:
            return
        parent = node.parent
        if parent is not None and not parent.is_root:
            self._ensure_node(parent)
        parent_id = -1 if parent is None or parent.is_root else parent.id
        assert node.attribute is not None
        # The value's own type is recorded per node: the flexible data model
        # does not forbid one label carrying different types across records.
        self.stream.write(
            f"node,{node.id},{parent_id},{node.attribute.id},"
            f"{node.value.type.value},{_escape(node.value.to_string())}\n"
        )
        self._written_nodes.add(node.id)

    # -- records ----------------------------------------------------------------

    def write_record(self, record: Record) -> None:
        reference: list[tuple[Attribute, Variant]] = []
        immediate: list[tuple[Attribute, Variant]] = []
        for label, value in record.items():
            attr = self._ensure_attr(label, value)
            if attr.is_value or (value.is_numeric and attr.type.is_numeric):
                immediate.append((attr, value))
            else:
                reference.append((attr, value))

        # Deterministic chain order => maximal sharing between records.
        reference.sort(key=lambda pair: pair[0].id)
        node: Optional[Node] = None
        for attr, value in reference:
            if attr.is_nested and attr.type is ValueType.STRING:
                for part in value.to_string().split(PATH_SEPARATOR):
                    node = self.tree.get_child(node, attr, Variant.of(part))
            else:
                node = self.tree.get_child(node, attr, value)
        node_id = -1
        if node is not None:
            self._ensure_node(node)
            node_id = node.id

        parts = [f"snap,{node_id}"]
        for attr, value in immediate:
            parts.append(f"{_escape(attr.label)}={value.type.value}:{_escape(value.to_string())}")
        self.stream.write(",".join(parts) + "\n")
        self.num_records += 1

    def write_all(self, records: Iterable[Record]) -> int:
        count = 0
        for record in records:
            self.write_record(record)
            count += 1
        return count


class CaliReader:
    """Reader for the ``.cali``-like format."""

    def __init__(self, stream: TextIO) -> None:
        self.stream = stream
        self.registry = AttributeRegistry()
        self.globals: dict[str, Variant] = {}
        self._attrs: dict[int, Attribute] = {}
        self._nodes: dict[int, tuple[int, int, str]] = {}  # id -> (parent, attr-id, text)
        self._node_entry_cache: dict[int, dict[str, Variant]] = {}

    def read(self) -> list[Record]:
        return list(self.iter())

    def iter(self) -> Iterator[Record]:
        """Yield records one at a time as their ``snap`` lines are parsed.

        The incremental counterpart of :meth:`read`: only the context-tree
        and attribute tables are held in memory (they are shared state the
        snapshots reference), so arbitrarily long record streams — large
        trace files, or a server replaying a spooled batch — are consumed
        in constant memory.  Metadata lines (``attr``/``glob``/``node``)
        update the reader's tables as they stream past; :attr:`globals` is
        complete only once iteration finishes.
        """
        header = self.stream.readline().rstrip("\n")
        if header != _HEADER:
            raise FormatError(f"not a cali file (header {header!r})")
        for lineno, line in enumerate(self.stream, start=2):
            line = line.rstrip("\n")
            if not line:
                continue
            try:
                record = self._parse_line(line)
            except FormatError:
                raise
            except Exception as exc:
                raise FormatError(f"malformed cali line {lineno}: {line!r} ({exc})") from exc
            if record is not None:
                yield record

    def _parse_line(self, line: str) -> Optional[Record]:
        # Fast path for the dominant case: a snapshot line with no escape
        # sequences splits on plain commas and skips _unescape entirely.
        # The writer escapes "," "=" "\\" and newlines, so a backslash-free
        # line cannot contain a separator inside any value.
        if "\\" not in line:
            if line.startswith("snap,"):
                fields = line.split(",")
                entries: dict[str, Variant] = {}
                node_id = int(fields[1])
                if node_id >= 0:
                    entries.update(self._node_entries(node_id))
                for field in fields[2:]:
                    label, typed = field.split("=", 1)
                    type_name, _, text = typed.partition(":")
                    entries[label] = Variant.parse(type_name, text)
                return Record.from_variants(entries)
            fields = line.split(",")
        else:
            fields = _split_raw(line, ",")
        kind = fields[0]
        if kind == "attr":
            attr_id = int(fields[1])
            label = _unescape(fields[2])
            vtype = ValueType.from_name(fields[3])
            props = AttrProperty.from_names(fields[4].split("|")) if fields[4] else AttrProperty.NONE
            self._attrs[attr_id] = self.registry.get_or_create(label, vtype, props)
            return None
        if kind == "glob":
            self.globals[_unescape(fields[1])] = Variant.parse(fields[2], _unescape(fields[3]))
            return None
        if kind == "node":
            node_id = int(fields[1])
            self._nodes[node_id] = (
                int(fields[2]),
                int(fields[3]),
                fields[4],
                _unescape(fields[5]),
            )
            return None
        if kind == "snap":
            node_id = int(fields[1])
            entries: dict[str, Variant] = {}
            if node_id >= 0:
                entries.update(self._node_entries(node_id))
            for field in fields[2:]:
                label_raw, typed = _split_raw(field, "=", maxsplit=1)
                type_name, _, text = typed.partition(":")
                entries[_unescape(label_raw)] = Variant.parse(type_name, _unescape(text))
            return Record.from_variants(entries)
        raise FormatError(f"unknown cali record kind {kind!r}")

    def _node_entries(self, node_id: int) -> dict[str, Variant]:
        cached = self._node_entry_cache.get(node_id)
        if cached is not None:
            return cached
        parent_id, attr_id, type_name, text = self._nodes[node_id]
        attr = self._attrs.get(attr_id)
        if attr is None:
            raise FormatError(f"node {node_id} references unknown attribute {attr_id}")
        entries: dict[str, Variant] = (
            dict(self._node_entries(parent_id)) if parent_id >= 0 else {}
        )
        value = Variant.parse(type_name, text)
        if attr.is_nested and attr.label in entries:
            joined = entries[attr.label].to_string() + PATH_SEPARATOR + value.to_string()
            entries[attr.label] = Variant.of(joined)
        else:
            entries[attr.label] = value
        self._node_entry_cache[node_id] = entries
        return entries


def write_cali(
    path_or_stream: Union[str, os.PathLike, TextIO],
    records: Iterable[Record],
    registry: Optional[AttributeRegistry] = None,
    globals_: Optional[dict[str, object]] = None,
) -> int:
    """Write records to a ``.cali`` file; returns the record count."""
    if isinstance(path_or_stream, (str, os.PathLike)):
        with open(path_or_stream, "w", encoding="utf-8") as stream:
            return write_cali(stream, records, registry, globals_)
    writer = CaliWriter(path_or_stream, registry)
    for label, value in (globals_ or {}).items():
        writer.write_global(label, value)
    return writer.write_all(records)


def iter_records(
    path_or_stream: Union[str, os.PathLike, TextIO],
) -> Iterator[Record]:
    """Stream records from a ``.cali`` file in constant memory.

    A generator over the file's snapshot records: nothing beyond the
    shared context-tree/attribute tables and the record being yielded is
    ever resident, which is what lets the network client replay multi-
    megabyte spool files — and large-file ingest pipelines run — without
    materializing the record list.  Per-run globals are *not* folded into
    the records (they are only fully known at end of file); use
    :func:`read_cali` when globals matter.

    >>> for record in iter_records("trace.cali"):     # doctest: +SKIP
    ...     db.process(record)
    """
    if isinstance(path_or_stream, (str, os.PathLike)):
        with open(path_or_stream, "r", encoding="utf-8") as stream:
            yield from CaliReader(stream).iter()
        return
    yield from CaliReader(path_or_stream).iter()


def read_cali(
    path_or_stream: Union[str, os.PathLike, TextIO],
    with_globals: bool = False,
):
    """Read records from a ``.cali`` file.

    Returns the record list, or ``(records, globals)`` when ``with_globals``.
    """
    if isinstance(path_or_stream, (str, os.PathLike)):
        with open(path_or_stream, "r", encoding="utf-8") as stream:
            return read_cali(stream, with_globals)
    reader = CaliReader(path_or_stream)
    records = reader.read()
    if with_globals:
        return records, dict(reader.globals)
    return records
