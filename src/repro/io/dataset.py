"""Datasets: in-memory record collections, columnar caching, multi-file loading.

A :class:`Dataset` is what off-line analysis works on: records plus run
globals, loadable from one or many files (the per-process files a parallel
run produces).  It offers the pandas-like conveniences the analytical
workflow wants — ``query`` with CalQL text, column access, iteration — while
staying a thin list-of-records wrapper underneath.

Two performance layers live here as well:

* :class:`ColumnStore` — dictionary-encoded (interned) columns over the
  record list, built lazily per attribute and cached across queries.  The
  row→column convert step is the dominant cost of vectorized aggregation;
  caching it is what makes repeated interactive queries on one dataset fast.
* process-parallel loading — ``from_files(paths, parallel=N)`` parses input
  files in a :class:`~concurrent.futures.ProcessPoolExecutor`, the paper's
  reduction-tree idea applied to real cores for the ingest phase.
"""

from __future__ import annotations

import glob as globmod
import os
import time
from typing import TYPE_CHECKING, Iterable, Iterator, Optional, Sequence, Union

import numpy as np

from .. import observe
from ..common.errors import DatasetError
from ..common.record import Record
from ..common.variant import ValueType, Variant
from .calformat import read_cali, write_cali
from .csvio import write_csv
from .jsonio import read_json, write_json

if TYPE_CHECKING:  # pragma: no cover
    from ..query.engine import QueryResult

__all__ = ["ColumnStore", "Dataset", "write_records", "read_records"]


def _format_of(path: Union[str, os.PathLike]) -> str:
    ext = os.path.splitext(os.fspath(path))[1].lower()
    if ext == ".cali":
        return "cali"
    if ext in (".json", ".jsonl"):
        return "json"
    if ext == ".csv":
        return "csv"
    if ext == ".rcf":
        return "rcf"
    raise DatasetError(f"cannot infer record format from extension {ext!r} ({path})")


def write_records(
    path: Union[str, os.PathLike],
    records: Iterable[Record],
    globals_: Optional[dict[str, object]] = None,
) -> int:
    """Write records to ``path``, format chosen by extension."""
    fmt = _format_of(path)
    if fmt == "cali":
        return write_cali(path, records, globals_=globals_)
    if fmt == "json":
        return write_json(path, records, globals_=globals_)
    if fmt == "rcf":
        from .colfile import write_colfile  # deferred: colfile imports this module

        return write_colfile(path, records, globals_=globals_)
    return write_csv(path, records)


def read_records(path: Union[str, os.PathLike]) -> tuple[list[Record], dict[str, Variant]]:
    """Read records (and globals, if the format has them) from ``path``."""
    fmt = _format_of(path)
    if fmt == "cali":
        records, globals_ = read_cali(path, with_globals=True)
        return records, globals_
    if fmt == "json":
        records, globals_ = read_json(path, with_globals=True)
        return records, globals_
    if fmt == "rcf":
        from .colfile import read_colfile  # deferred: colfile imports this module

        return read_colfile(path)
    from .csvio import read_csv

    return read_csv(path), {}


class ColumnStore:
    """Dictionary-encoded columns over a fixed record list.

    Each attribute is interned once into an ``int64`` code array (-1 =
    missing) plus a small table of distinct :class:`Variant` values; numeric
    readings are then derived per *distinct* value and broadcast through the
    codes, so the per-record Python work happens exactly once per attribute
    regardless of how many queries run.  Instances are immutable snapshots:
    :class:`Dataset` drops its cached store when the record list changes.
    """

    def __init__(self, records: Sequence[Record]) -> None:
        self._records: list[Record] = (
            records if isinstance(records, list) else list(records)
        )
        self._n = len(self._records)
        self._interned: dict[str, tuple[np.ndarray, list[Variant]]] = {}
        self._numeric: dict[tuple[str, bool], tuple[np.ndarray, np.ndarray]] = {}

    def __len__(self) -> int:
        return self._n

    @property
    def records(self) -> list[Record]:
        return self._records

    def interned(self, label: str) -> tuple[np.ndarray, list[Variant]]:
        """``(codes, values)`` for one attribute: codes index into ``values``
        (first-seen order); -1 marks records without the attribute."""
        cached = self._interned.get(label)
        if cached is not None:
            observe.count("columnstore.intern", result="hit", label=label)
            return cached
        observe.count("columnstore.intern", result="miss", label=label)
        codes = np.empty(self._n, dtype=np.int64)
        # Keyed by plain (type, value) tuples rather than Variants: hashing a
        # small tuple is several times cheaper than Variant.__hash__, and this
        # loop runs once per record.  Interning is *exact* — ``int 1`` and
        # ``double 1.0`` under one label stay distinct codes — so group
        # representatives and ``first()`` preserve each record's actual
        # Variant.  Variant-equality collapsing for GROUP BY identity happens
        # per *distinct* value in the grouping layer, never per record.
        table: dict[object, int] = {}
        values: list[Variant] = []
        missing = (ValueType.INV, None)
        table_get = table.get
        for i, record in enumerate(self._records):
            v = record._entries.get(label)
            t = None if v is None else v.type
            if t in missing:
                codes[i] = -1
                continue
            key = (t, v.value)
            idx = table_get(key)
            if idx is None:
                idx = len(values)
                table[key] = idx
                values.append(v)
            codes[i] = idx
        cached = (codes, values)
        self._interned[label] = cached
        return cached

    def numeric(
        self, label: str, include_bool: bool = True
    ) -> tuple[np.ndarray, np.ndarray]:
        """``(values, mask)`` float64/bool arrays for one attribute.

        ``mask`` is True exactly where the streaming kernels would fold the
        value (see :func:`repro.aggregate.ops.numeric_or_none`); ``values``
        is 0.0 elsewhere.  Derived from the interned column via a
        per-distinct-value lookup table.
        """
        key = (label, include_bool)
        cached = self._numeric.get(key)
        if cached is not None:
            return cached
        from ..aggregate.ops import numeric_or_none

        codes, values = self.interned(label)
        # Slot 0 stands for "missing" (code -1); distinct value i maps to i+1.
        table = np.zeros(len(values) + 1, dtype=np.float64)
        ok = np.zeros(len(values) + 1, dtype=bool)
        for i, v in enumerate(values):
            x = numeric_or_none(v, include_bool)
            if x is not None:
                table[i + 1] = x
                ok[i + 1] = True
        shifted = codes + 1
        cached = (table[shifted], ok[shifted])
        self._numeric[key] = cached
        return cached


def _load_source_timed(
    path: Union[str, os.PathLike],
) -> tuple[list[Record], dict[str, Variant], float]:
    """Read one file (globals folded in) and measure the parse wall time.

    Module-level so :class:`~concurrent.futures.ProcessPoolExecutor` workers
    can pickle a reference to it.  The duration is *measured* here —
    including inside worker processes, where the parent's metrics registry
    is unreachable — and *recorded* by the caller, which is how per-file
    parse time stays attributable across process boundaries.
    """
    start = time.perf_counter()
    records, globals_ = read_records(path)
    if globals_:
        records = [r.with_entries(globals_) for r in records]
    return records, globals_, time.perf_counter() - start


def _load_source(path: Union[str, os.PathLike]) -> tuple[list[Record], dict[str, Variant]]:
    """Read one file with its globals folded into the records."""
    records, globals_, _elapsed = _load_source_timed(path)
    return records, globals_


def _load_source_packed(
    path: Union[str, os.PathLike],
) -> tuple[bytes, dict[str, Variant], float, int]:
    """Parallel-ingest worker: parse one file and ship *column buffers*.

    Pickling a million Record objects back to the parent re-encodes every
    value through ``pickle``; encoding the parsed records into one binary
    column batch moves a single compact buffer per file instead, and the
    parent's decode shares interned Variants across rows.  Results are
    identical to :func:`_load_source_timed` (globals are folded in before
    encoding, and the batch codec round-trips records exactly).
    """
    from .colfile import encode_batch  # deferred: colfile imports this module

    records, globals_, elapsed = _load_source_timed(path)
    return encode_batch(records), globals_, elapsed, len(records)


#: Auto-parallel heuristics (``parallel=True``): a process pool only pays off
#: when each worker amortizes its fork/pickle cost over a meaningful share of
#: the input.  Record counts are estimated from file sizes before parsing;
#: module-level so tests and unusual deployments can tune them.
MIN_PARALLEL_RECORDS_PER_WORKER = 10_000
APPROX_BYTES_PER_RECORD = 48


def _estimate_records(paths: Optional[Sequence[str]]) -> Optional[int]:
    """Rough record count from file sizes; None when it cannot be estimated."""
    if not paths:
        return None
    total = 0
    for path in paths:
        try:
            total += os.path.getsize(path)
        except OSError:
            # Missing/unreadable file: let the reader raise its usual error.
            return None
    return total // APPROX_BYTES_PER_RECORD


def _resolve_workers(
    parallel: Union[bool, int, None],
    n_items: int,
    paths: Optional[Sequence[str]] = None,
) -> int:
    """Turn a ``parallel=`` argument into a worker count (1 = serial).

    An explicit integer is a user override, clamped only to the item count.
    ``parallel=True`` (auto) additionally applies fallback heuristics — a
    pool on a single-core machine, or one whose per-worker share falls below
    ``MIN_PARALLEL_RECORDS_PER_WORKER``, is pure overhead (the 0.58x ingest
    "speedup" in early benchmark runs).  Each fallback decision is recorded
    as a ``parallel.fallback`` count with its reason.
    """
    if not parallel or n_items <= 1:
        return 1
    if parallel is not True:
        return max(1, min(int(parallel), n_items))
    cpus = os.cpu_count() or 1
    if cpus <= 1:
        observe.count("parallel.fallback", reason="single-core")
        return 1
    workers = min(cpus, n_items)
    est_records = _estimate_records(paths)
    if est_records is not None:
        cap = max(1, int(est_records // MIN_PARALLEL_RECORDS_PER_WORKER))
        if cap < workers:
            observe.count("parallel.fallback", reason="small-input", workers=cap)
            workers = cap
    return workers


class _DeferredRecords:
    """Record iterable that hydrates a lazy dataset only when iterated.

    Passed to :meth:`QueryEngine.run` in place of the record list so the
    columnar fast path over an ``.rcf``-backed store never materializes
    Record objects; row-engine fallbacks iterate it and hydrate on demand.
    """

    def __init__(self, dataset: "Dataset") -> None:
        self._dataset = dataset

    def __iter__(self) -> Iterator[Record]:
        return iter(self._dataset.records)

    def __len__(self) -> int:
        return len(self._dataset)


class Dataset:
    """Records + globals, with query and export conveniences.

    Datasets opened from ``.rcf`` columnar files are *lazy*: the mmap-backed
    :class:`~repro.io.colfile.ColfileStore` is attached immediately and
    Record objects are only materialized if something row-oriented touches
    ``.records`` — vectorized queries run straight off the store.
    """

    def __init__(
        self,
        records: Iterable[Record] = (),
        globals_: Optional[dict[str, Variant]] = None,
        sources: Sequence[str] = (),
    ) -> None:
        self._records: Optional[list[Record]] = list(records)
        self.globals: dict[str, Variant] = dict(globals_ or {})
        #: file paths this dataset was assembled from (informational)
        self.sources: list[str] = list(sources)
        self._store: Optional[ColumnStore] = None

    @property
    def records(self) -> list[Record]:
        if self._records is None:
            # hydrate from the columnar store (shared with column_store())
            self._records = self._store.records  # type: ignore[union-attr]
        return self._records

    @records.setter
    def records(self, value: Iterable[Record]) -> None:
        self._records = list(value)
        self._store = None

    # -- construction ----------------------------------------------------------

    @classmethod
    def from_file(cls, path: Union[str, os.PathLike]) -> "Dataset":
        path = os.fspath(path)
        if _format_of(path) == "rcf":
            return cls._from_colfile(path)
        records, globals_ = read_records(path)
        return cls(records, globals_, [path])

    @classmethod
    def _from_colfile(cls, path: str) -> "Dataset":
        """Open an ``.rcf`` file as a lazy, mmap-backed dataset."""
        from .colfile import ColfileReader  # deferred: colfile imports this module

        reader = ColfileReader(path)
        dataset = cls((), reader.globals, [path])
        dataset._store = reader.store()
        dataset._records = None
        return dataset

    @classmethod
    def from_files(
        cls,
        paths: Iterable[Union[str, os.PathLike]],
        parallel: Union[bool, int, None] = None,
    ) -> "Dataset":
        """Concatenate several files (e.g. one per process).

        Per-file globals are folded into the records of that file so
        cross-file attributes (like the producing rank) stay distinguishable,
        then dropped from the dataset-level globals when files disagree.

        ``parallel`` parses files in a process pool: ``True`` picks the pool
        size automatically (one worker per CPU, falling back to serial on
        single-core machines or when the per-worker share of the input is
        too small to amortize the pool); an integer is an explicit worker
        count.  The result is identical to the serial path (files are merged
        in argument order).  For
        aggregation queries over many files, prefer
        :func:`repro.query.parallel_query_files`, which also *aggregates* in
        the workers and only ships small partial states back.
        """
        path_list = [os.fspath(p) for p in paths]
        if not path_list:
            return cls()
        workers = _resolve_workers(parallel, len(path_list), path_list)
        with observe.span("ingest.from_files", files=len(path_list), workers=workers):
            if workers > 1:
                from concurrent.futures import ProcessPoolExecutor

                from .colfile import decode_batch_store

                with ProcessPoolExecutor(max_workers=workers) as pool:
                    packed = list(pool.map(_load_source_packed, path_list))
                loaded = [
                    (decode_batch_store(batch).records, globals_, seconds)
                    for batch, globals_, seconds, _count in packed
                ]
            else:
                loaded = [_load_source_timed(p) for p in path_list]
            all_records: list[Record] = []
            merged_globals: dict[str, Variant] = {}
            conflicting: set[str] = set()
            for path, (records, globals_, parse_seconds) in zip(path_list, loaded):
                # Worker-measured parse time, attributed per file (the span
                # above holds the end-to-end ingest wall time).
                observe.timing(
                    "ingest.file.parse", parse_seconds, file=os.path.basename(path)
                )
                observe.count("ingest.records", len(records))
                for key, value in globals_.items():
                    if key in merged_globals and merged_globals[key] != value:
                        conflicting.add(key)
                    merged_globals.setdefault(key, value)
                all_records.extend(records)
            for key in conflicting:
                merged_globals.pop(key, None)
            return cls(all_records, merged_globals, path_list)

    @classmethod
    def from_glob(cls, pattern: str, parallel: Union[bool, int, None] = None) -> "Dataset":
        paths = sorted(globmod.glob(pattern))
        if not paths:
            raise DatasetError(f"no files match {pattern!r}")
        return cls.from_files(paths, parallel=parallel)

    # -- basic container behaviour ------------------------------------------------

    def __len__(self) -> int:
        if self._records is None and self._store is not None:
            return len(self._store)  # lazy: the store knows without hydrating
        return len(self.records)

    def __iter__(self) -> Iterator[Record]:
        return iter(self.records)

    def __getitem__(self, index: int) -> Record:
        return self.records[index]

    def labels(self) -> list[str]:
        """Union of attribute labels across all records, sorted."""
        if self._records is None and hasattr(self._store, "labels"):
            return self._store.labels()  # lazy: straight from the column schema
        seen: set[str] = set()
        for record in self.records:
            seen.update(record.labels())
        return sorted(seen)

    def column(self, label: str) -> list[Variant]:
        """All non-empty values of one attribute, in record order."""
        out = []
        for record in self.records:
            v = record.get(label)
            if not v.is_empty:
                out.append(v)
        return out

    def extend(self, records: Iterable[Record]) -> None:
        self.records.extend(records)  # hydrates first when lazy
        self._store = None  # interned columns no longer cover every record

    # -- analysis ---------------------------------------------------------------

    def column_store(self) -> ColumnStore:
        """The cached interned-column view of this dataset.

        Built lazily (per attribute, on first use by a columnar query) and
        reused across queries; rebuilt when the record list has changed.
        """
        store = self._store
        if store is not None and self._records is None:
            return store  # lazy .rcf store; don't force record hydration
        if (
            store is None
            or store.records is not self.records
            or len(store) != len(self.records)
        ):
            store = ColumnStore(self.records)
            self._store = store
        return store

    def query(self, text: str, backend: str = "auto") -> "QueryResult":
        """Run a CalQL query over this dataset (the analytical path).

        ``backend`` selects the execution engine: ``"auto"`` (default) lets
        the planner pick the vectorized columnar backend whenever the query
        qualifies, ``"rows"`` forces the streaming row engine, ``"columnar"``
        requires vectorized execution (raising if unsupported).  The columnar
        path runs over the cached :meth:`column_store`, so repeated queries
        skip the row→column conversion.
        """
        from ..query.engine import QueryEngine  # deferred: query sits above io

        engine = QueryEngine(text)
        store = (
            self.column_store()
            if (backend != "rows" and engine.scheme is not None)
            else None
        )
        # With a store attached, hand the engine a deferred iterable: the
        # vectorized path reads the store only, so a lazy .rcf dataset never
        # materializes Record objects; fallback paths hydrate on iteration.
        source = self.records if store is None else _DeferredRecords(self)
        return engine.run(source, backend=backend, store=store)

    def summary(self) -> str:
        """Per-attribute overview: occurrence count, types, value span.

        The first thing an analyst wants from an unfamiliar dataset: which
        dimensions exist and what they look like.
        """
        stats: dict[str, dict] = {}
        for record in self.records:
            for label, value in record.items():
                s = stats.setdefault(
                    label, {"count": 0, "types": set(), "min": None, "max": None, "values": set()}
                )
                s["count"] += 1
                s["types"].add(value.type.value)
                if value.is_numeric:
                    x = value.to_double()
                    s["min"] = x if s["min"] is None else min(s["min"], x)
                    s["max"] = x if s["max"] is None else max(s["max"], x)
                elif len(s["values"]) <= 8:
                    s["values"].add(value.to_string())

        lines = [f"{len(self.records)} records, {len(stats)} attributes"]
        width = max((len(lbl) for lbl in stats), default=0)
        for label in sorted(stats):
            s = stats[label]
            types = ",".join(sorted(s["types"]))
            if s["min"] is not None:
                span = f"range [{s['min']:.6g}, {s['max']:.6g}]"
            else:
                shown = sorted(s["values"])
                span = "values {" + ", ".join(shown[:6])
                span += ", ...}" if len(shown) > 6 else "}"
            lines.append(f"  {label.ljust(width)}  {s['count']:>8}x  {types:<8}  {span}")
        return "\n".join(lines)

    # -- export ------------------------------------------------------------------

    def to_file(self, path: Union[str, os.PathLike]) -> int:
        return write_records(
            path, self.records, {k: v.value for k, v in self.globals.items()}
        )

    def save(self, path: Union[str, os.PathLike], chunk_rows: int = 0) -> int:
        """Write this dataset as an ``.rcf`` columnar file.

        The binary columnar counterpart of :meth:`to_file`: typed column
        buffers that :meth:`from_file` maps straight back into the cached
        column store without parsing.  ``chunk_rows`` bounds the rows per
        chunk (0 = default), which is also the granularity at which
        ``repro.api.query`` later streams the file for out-of-core scans.
        """
        from .colfile import write_colfile  # deferred: colfile imports this module

        return write_colfile(
            path, self.records, globals_=self.globals, chunk_rows=chunk_rows
        )

    def __repr__(self) -> str:
        return f"Dataset({len(self.records)} records from {len(self.sources) or 'memory'} source(s))"
