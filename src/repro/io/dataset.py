"""Datasets: in-memory record collections and multi-file loading.

A :class:`Dataset` is what off-line analysis works on: records plus run
globals, loadable from one or many files (the per-process files a parallel
run produces).  It offers the pandas-like conveniences the analytical
workflow wants — ``query`` with CalQL text, column access, iteration — while
staying a thin list-of-records wrapper underneath.
"""

from __future__ import annotations

import glob as globmod
import os
from typing import TYPE_CHECKING, Iterable, Iterator, Optional, Sequence, Union

from ..common.errors import DatasetError
from ..common.record import Record
from ..common.variant import Variant
from .calformat import read_cali, write_cali
from .csvio import write_csv
from .jsonio import read_json, write_json

if TYPE_CHECKING:  # pragma: no cover
    from ..query.engine import QueryResult

__all__ = ["Dataset", "write_records", "read_records"]


def _format_of(path: Union[str, os.PathLike]) -> str:
    ext = os.path.splitext(os.fspath(path))[1].lower()
    if ext == ".cali":
        return "cali"
    if ext in (".json", ".jsonl"):
        return "json"
    if ext == ".csv":
        return "csv"
    raise DatasetError(f"cannot infer record format from extension {ext!r} ({path})")


def write_records(
    path: Union[str, os.PathLike],
    records: Iterable[Record],
    globals_: Optional[dict[str, object]] = None,
) -> int:
    """Write records to ``path``, format chosen by extension."""
    fmt = _format_of(path)
    if fmt == "cali":
        return write_cali(path, records, globals_=globals_)
    if fmt == "json":
        return write_json(path, records, globals_=globals_)
    return write_csv(path, records)


def read_records(path: Union[str, os.PathLike]) -> tuple[list[Record], dict[str, Variant]]:
    """Read records (and globals, if the format has them) from ``path``."""
    fmt = _format_of(path)
    if fmt == "cali":
        records, globals_ = read_cali(path, with_globals=True)
        return records, globals_
    if fmt == "json":
        records, globals_ = read_json(path, with_globals=True)
        return records, globals_
    from .csvio import read_csv

    return read_csv(path), {}


class Dataset:
    """Records + globals, with query and export conveniences."""

    def __init__(
        self,
        records: Iterable[Record] = (),
        globals_: Optional[dict[str, Variant]] = None,
        sources: Sequence[str] = (),
    ) -> None:
        self.records: list[Record] = list(records)
        self.globals: dict[str, Variant] = dict(globals_ or {})
        #: file paths this dataset was assembled from (informational)
        self.sources: list[str] = list(sources)

    # -- construction ----------------------------------------------------------

    @classmethod
    def from_file(cls, path: Union[str, os.PathLike]) -> "Dataset":
        records, globals_ = read_records(path)
        return cls(records, globals_, [os.fspath(path)])

    @classmethod
    def from_files(cls, paths: Iterable[Union[str, os.PathLike]]) -> "Dataset":
        """Concatenate several files (e.g. one per process).

        Per-file globals are folded into the records of that file so
        cross-file attributes (like the producing rank) stay distinguishable,
        then dropped from the dataset-level globals when files disagree.
        """
        all_records: list[Record] = []
        merged_globals: dict[str, Variant] = {}
        conflicting: set[str] = set()
        sources: list[str] = []
        for path in paths:
            records, globals_ = read_records(path)
            if globals_:
                records = [r.with_entries(globals_) for r in records]
            for key, value in globals_.items():
                if key in merged_globals and merged_globals[key] != value:
                    conflicting.add(key)
                merged_globals.setdefault(key, value)
            all_records.extend(records)
            sources.append(os.fspath(path))
        for key in conflicting:
            merged_globals.pop(key, None)
        return cls(all_records, merged_globals, sources)

    @classmethod
    def from_glob(cls, pattern: str) -> "Dataset":
        paths = sorted(globmod.glob(pattern))
        if not paths:
            raise DatasetError(f"no files match {pattern!r}")
        return cls.from_files(paths)

    # -- basic container behaviour ------------------------------------------------

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[Record]:
        return iter(self.records)

    def __getitem__(self, index: int) -> Record:
        return self.records[index]

    def labels(self) -> list[str]:
        """Union of attribute labels across all records, sorted."""
        seen: set[str] = set()
        for record in self.records:
            seen.update(record.labels())
        return sorted(seen)

    def column(self, label: str) -> list[Variant]:
        """All non-empty values of one attribute, in record order."""
        out = []
        for record in self.records:
            v = record.get(label)
            if not v.is_empty:
                out.append(v)
        return out

    def extend(self, records: Iterable[Record]) -> None:
        self.records.extend(records)

    # -- analysis ---------------------------------------------------------------

    def query(self, text: str) -> "QueryResult":
        """Run a CalQL query over this dataset (the analytical path)."""
        from ..query.engine import QueryEngine  # deferred: query sits above io

        return QueryEngine(text).run(self.records)

    def summary(self) -> str:
        """Per-attribute overview: occurrence count, types, value span.

        The first thing an analyst wants from an unfamiliar dataset: which
        dimensions exist and what they look like.
        """
        stats: dict[str, dict] = {}
        for record in self.records:
            for label, value in record.items():
                s = stats.setdefault(
                    label, {"count": 0, "types": set(), "min": None, "max": None, "values": set()}
                )
                s["count"] += 1
                s["types"].add(value.type.value)
                if value.is_numeric:
                    x = value.to_double()
                    s["min"] = x if s["min"] is None else min(s["min"], x)
                    s["max"] = x if s["max"] is None else max(s["max"], x)
                elif len(s["values"]) <= 8:
                    s["values"].add(value.to_string())

        lines = [f"{len(self.records)} records, {len(stats)} attributes"]
        width = max((len(lbl) for lbl in stats), default=0)
        for label in sorted(stats):
            s = stats[label]
            types = ",".join(sorted(s["types"]))
            if s["min"] is not None:
                span = f"range [{s['min']:.6g}, {s['max']:.6g}]"
            else:
                shown = sorted(s["values"])
                span = "values {" + ", ".join(shown[:6])
                span += ", ...}" if len(shown) > 6 else "}"
            lines.append(f"  {label.ljust(width)}  {s['count']:>8}x  {types:<8}  {span}")
        return "\n".join(lines)

    # -- export ------------------------------------------------------------------

    def to_file(self, path: Union[str, os.PathLike]) -> int:
        return write_records(
            path, self.records, {k: v.value for k, v in self.globals.items()}
        )

    def __repr__(self) -> str:
        return f"Dataset({len(self.records)} records from {len(self.sources) or 'memory'} source(s))"
