"""CSV serialization of record streams.

CSV flattens the flexible data model onto a fixed column set (the union of
all labels), so it is lossy about *types* on read-back (values come back via
inference) — intended for handing results to spreadsheet/pandas workflows,
not for archival.  Column order: sorted labels, with any labels passed in
``preferred`` first (the query engine passes the aggregation key so tables
read naturally).
"""

from __future__ import annotations

import csv
import os
from typing import Iterable, Sequence, TextIO, Union

from ..common.record import Record
from ..common.variant import Variant

__all__ = ["write_csv", "read_csv"]


def collect_columns(
    records: Sequence[Record], preferred: Sequence[str] = ()
) -> list[str]:
    """Union of record labels, preferred labels first, rest sorted."""
    seen: set[str] = set()
    for record in records:
        seen.update(record.labels())
    ordered = [label for label in preferred if label in seen]
    ordered.extend(sorted(seen - set(ordered)))
    return ordered


def write_csv(
    path_or_stream: Union[str, os.PathLike, TextIO],
    records: Iterable[Record],
    preferred: Sequence[str] = (),
) -> int:
    """Write records as CSV; returns the record count."""
    if isinstance(path_or_stream, (str, os.PathLike)):
        with open(path_or_stream, "w", encoding="utf-8", newline="") as stream:
            return write_csv(stream, records, preferred)
    stream = path_or_stream

    materialized = list(records)
    columns = collect_columns(materialized, preferred)
    writer = csv.writer(stream)
    writer.writerow(columns)
    for record in materialized:
        writer.writerow([record.get(col).to_string() for col in columns])
    return len(materialized)


def read_csv(path_or_stream: Union[str, os.PathLike, TextIO]) -> list[Record]:
    """Read CSV into records; empty cells are dropped, types inferred."""
    if isinstance(path_or_stream, (str, os.PathLike)):
        with open(path_or_stream, "r", encoding="utf-8", newline="") as stream:
            return read_csv(stream)
    stream = path_or_stream

    reader = csv.reader(stream)
    try:
        columns = next(reader)
    except StopIteration:
        return []
    records: list[Record] = []
    for row in reader:
        entries: dict[str, Variant] = {}
        for label, cell in zip(columns, row):
            if cell == "":
                continue
            entries[label] = _infer(cell)
        records.append(Record.from_variants(entries))
    return records


def _infer(cell: str) -> Variant:
    try:
        return Variant.of(int(cell))
    except ValueError:
        pass
    try:
        return Variant.of(float(cell))
    except ValueError:
        pass
    if cell == "true":
        return Variant.of(True)
    if cell == "false":
        return Variant.of(False)
    return Variant.of(cell)
