"""JSON-lines serialization of record streams.

A human-friendly interchange format: the first line is a metadata object
(format version, attribute type table, globals); every further line is one
record as a plain JSON object.  Types round-trip through the metadata table
rather than per-value tags, keeping record lines clean enough to pipe into
``jq`` or pandas.
"""

from __future__ import annotations

import json
import os
from typing import Iterable, Optional, TextIO, Union

from ..common.errors import FormatError
from ..common.record import Record
from ..common.variant import ValueType, Variant

__all__ = ["write_json", "read_json"]

_VERSION = 1


def write_json(
    path_or_stream: Union[str, os.PathLike, TextIO],
    records: Iterable[Record],
    globals_: Optional[dict[str, object]] = None,
) -> int:
    """Write records as JSON lines; returns the record count."""
    if isinstance(path_or_stream, (str, os.PathLike)):
        with open(path_or_stream, "w", encoding="utf-8") as stream:
            return write_json(stream, records, globals_)
    stream = path_or_stream

    # Two passes over an in-memory list: the type table must precede the
    # records, and record streams are cheap relative to profile sizes.
    materialized = list(records)
    types: dict[str, str] = {}
    for record in materialized:
        for label, value in record.items():
            seen = types.get(label)
            if seen is None:
                types[label] = value.type.value
            elif seen != value.type.value:
                # Heterogeneous columns degrade to per-value inference.
                types[label] = "mixed"

    header = {
        "format": "repro-json",
        "version": _VERSION,
        "attributes": types,
        "globals": {k: Variant.of(v).value for k, v in (globals_ or {}).items()},
    }
    stream.write(json.dumps(header) + "\n")
    for record in materialized:
        stream.write(json.dumps(record.to_plain(), sort_keys=True) + "\n")
    return len(materialized)


def read_json(
    path_or_stream: Union[str, os.PathLike, TextIO],
    with_globals: bool = False,
):
    """Read a JSON-lines record file written by :func:`write_json`."""
    if isinstance(path_or_stream, (str, os.PathLike)):
        with open(path_or_stream, "r", encoding="utf-8") as stream:
            return read_json(stream, with_globals)
    stream = path_or_stream

    header_line = stream.readline()
    if not header_line.strip():
        raise FormatError("empty JSON record file")
    try:
        header = json.loads(header_line)
    except json.JSONDecodeError as exc:
        raise FormatError(f"malformed JSON header: {exc}") from exc
    if header.get("format") != "repro-json":
        raise FormatError(f"not a repro JSON record file: {header.get('format')!r}")
    types = {k: v for k, v in header.get("attributes", {}).items()}

    records: list[Record] = []
    for lineno, line in enumerate(stream, start=2):
        if not line.strip():
            continue
        try:
            obj = json.loads(line)
        except json.JSONDecodeError as exc:
            raise FormatError(f"malformed JSON record on line {lineno}: {exc}") from exc
        entries: dict[str, Variant] = {}
        for label, raw in obj.items():
            type_name = types.get(label, "mixed")
            if type_name == "mixed":
                entries[label] = Variant.of(raw)
            else:
                vtype = ValueType.from_name(type_name)
                entries[label] = Variant(vtype, raw)
        records.append(Record.from_variants(entries))

    if with_globals:
        globals_ = {k: Variant.of(v) for k, v in header.get("globals", {}).items()}
        return records, globals_
    return records
