"""Record serialization: compact .cali-like, JSON lines, CSV, binary columnar .rcf; datasets."""

from .calformat import CaliReader, CaliWriter, iter_records, read_cali, write_cali
from .colfile import (
    ColfileReader,
    ColfileStore,
    ColfileWriter,
    read_colfile,
    write_colfile,
)
from .csvio import read_csv, write_csv
from .dataset import Dataset, read_records, write_records
from .jsonio import read_json, write_json

__all__ = [
    "CaliReader",
    "CaliWriter",
    "read_cali",
    "write_cali",
    "iter_records",
    "read_csv",
    "write_csv",
    "read_json",
    "write_json",
    "ColfileReader",
    "ColfileWriter",
    "ColfileStore",
    "read_colfile",
    "write_colfile",
    "Dataset",
    "read_records",
    "write_records",
]
