"""Context tree: interning of nested attribute values.

Caliper stores nested begin/end annotation values in a global context tree;
snapshot records then reference a single tree node instead of repeating the
whole path of open regions.  We reproduce that structure because it is what
makes the ``.cali``-like file format compact (node records are written once,
snapshot lines reference node ids) and it defines the path semantics of
``NESTED`` attributes (a node's value in a snapshot is the slash-joined path
of values from the root).

The tree is append-only and interning: asking for the same (parent,
attribute, value) child twice returns the same node.
"""

from __future__ import annotations

import threading
from typing import Iterator, Optional

from .attribute import Attribute
from .variant import Variant

__all__ = ["Node", "ContextTree", "PATH_SEPARATOR"]

#: Separator used when flattening a nested node path into a string value.
PATH_SEPARATOR = "/"


class Node:
    """A node in the context tree.

    ``id`` is the node's index in its tree's node table and is what snapshot
    lines in the file format reference.
    """

    __slots__ = ("id", "attribute", "value", "parent", "_children")

    def __init__(
        self,
        node_id: int,
        attribute: Optional[Attribute],
        value: Variant,
        parent: Optional["Node"],
    ) -> None:
        self.id = node_id
        self.attribute = attribute  # None only for the root sentinel
        self.value = value
        self.parent = parent
        self._children: dict[tuple[int, Variant], "Node"] = {}

    @property
    def is_root(self) -> bool:
        return self.attribute is None

    def path_to_root(self) -> Iterator["Node"]:
        """Yield this node and its ancestors, nearest first, excluding root."""
        node: Optional[Node] = self
        while node is not None and not node.is_root:
            yield node
            node = node.parent

    def path_values(self, attribute: Attribute) -> list[Variant]:
        """Values of ``attribute`` along the root-to-here path, root first."""
        values = [n.value for n in self.path_to_root() if n.attribute == attribute]
        values.reverse()
        return values

    def path_string(self, attribute: Attribute) -> str:
        """Slash-joined path of ``attribute`` values (the NESTED snapshot value)."""
        return PATH_SEPARATOR.join(v.to_string() for v in self.path_values(attribute))

    def attributes_on_path(self) -> list[Attribute]:
        """Distinct attributes present on the root-to-here path."""
        seen: dict[int, Attribute] = {}
        for n in self.path_to_root():
            assert n.attribute is not None
            seen.setdefault(n.attribute.id, n.attribute)
        return list(seen.values())

    def __repr__(self) -> str:
        label = self.attribute.label if self.attribute else "<root>"
        return f"Node(id={self.id}, {label}={self.value.to_string()!r})"


class ContextTree:
    """Append-only interning tree of (attribute, value) nodes.

    Thread-safe.  ``get_child`` is the hot operation; it takes the parent's
    child table lock-free on the read path and falls back to a tree-wide
    lock only when inserting.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.root = Node(-1, None, Variant.empty(), None)
        self._nodes: list[Node] = []

    def get_child(self, parent: Optional[Node], attribute: Attribute, value: Variant) -> Node:
        """Return (creating if needed) the child of ``parent`` for (attribute, value)."""
        if parent is None:
            parent = self.root
        key = (attribute.id, value)
        child = parent._children.get(key)
        if child is not None:
            return child
        with self._lock:
            child = parent._children.get(key)
            if child is None:
                child = Node(len(self._nodes), attribute, value, parent)
                self._nodes.append(child)
                parent._children[key] = child
            return child

    def get_path(self, attribute: Attribute, values: list[Variant],
                 parent: Optional[Node] = None) -> Optional[Node]:
        """Intern a chain of nodes for ``values`` under ``parent``.

        Returns the deepest node, or ``parent``/None for an empty list.
        """
        node = parent
        for value in values:
            node = self.get_child(node, attribute, value)
        return node

    def node(self, node_id: int) -> Node:
        return self._nodes[node_id]

    def __len__(self) -> int:
        return len(self._nodes)

    def __iter__(self) -> Iterator[Node]:
        return iter(self._nodes)
