"""Common data-model building blocks shared by every subsystem."""

from .attribute import AttrProperty, Attribute, AttributeRegistry
from .errors import (
    AggregationError,
    BlackboardError,
    CalQLSemanticError,
    CalQLSyntaxError,
    ChannelError,
    CommunicatorError,
    ConfigError,
    DatasetError,
    DeadlockError,
    DuplicateAttributeError,
    FormatError,
    OperatorError,
    QueryError,
    ReproError,
    ServiceError,
    SimMPIError,
    TypeMismatchError,
    UnknownAttributeError,
)
from .node import PATH_SEPARATOR, ContextTree, Node
from .record import Entry, Record, make_record
from .variant import ValueType, Variant

__all__ = [
    "AttrProperty",
    "Attribute",
    "AttributeRegistry",
    "ContextTree",
    "Node",
    "PATH_SEPARATOR",
    "Entry",
    "Record",
    "make_record",
    "ValueType",
    "Variant",
    # errors
    "ReproError",
    "DuplicateAttributeError",
    "UnknownAttributeError",
    "TypeMismatchError",
    "BlackboardError",
    "ChannelError",
    "ConfigError",
    "ServiceError",
    "QueryError",
    "CalQLSyntaxError",
    "CalQLSemanticError",
    "OperatorError",
    "AggregationError",
    "FormatError",
    "DatasetError",
    "SimMPIError",
    "CommunicatorError",
    "DeadlockError",
]
