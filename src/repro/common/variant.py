"""Typed values for the key:value performance-data model.

The paper's data model allows string, integer, and floating-point attribute
values.  :class:`Variant` is the tagged value used throughout the framework:
it pairs a :class:`ValueType` tag with a plain Python payload, provides a
total order within a type class (needed for ``min``/``max`` operators and
``ORDER BY``), and round-trips through the text serialization formats.

We additionally support booleans and unsigned integers because Caliper does
(``bool``, ``uint``); they cost nothing and make the MPI-rank / iteration
attributes natural.
"""

from __future__ import annotations

import enum
import math
from typing import Union

from .errors import TypeMismatchError

__all__ = ["ValueType", "Variant", "RawValue"]

RawValue = Union[str, int, float, bool]


class ValueType(enum.Enum):
    """Type tag for attribute values.

    The wire names (``.value``) match Caliper's type names so our ``.cali``
    -like format stays familiar.
    """

    INV = "inv"  # invalid / empty
    INT = "int"
    UINT = "uint"
    DOUBLE = "double"
    STRING = "string"
    BOOL = "bool"
    USR = "usr"  # opaque user data (kept as string)

    @classmethod
    def from_name(cls, name: str) -> "ValueType":
        # Dict lookup, not a member scan: the .cali reader resolves a type
        # name per immediate field, which makes this a parse hot path.
        member = _TYPES_BY_NAME.get(name)
        if member is None:
            raise TypeMismatchError(f"unknown value type name: {name!r}")
        return member

    @property
    def is_numeric(self) -> bool:
        return self in (ValueType.INT, ValueType.UINT, ValueType.DOUBLE)


_TYPES_BY_NAME = {member.value: member for member in ValueType}


def _infer_type(value: RawValue) -> ValueType:
    # bool must be tested before int: bool is an int subclass.
    if isinstance(value, bool):
        return ValueType.BOOL
    if isinstance(value, int):
        return ValueType.INT
    if isinstance(value, float):
        return ValueType.DOUBLE
    if isinstance(value, str):
        return ValueType.STRING
    raise TypeMismatchError(
        f"cannot infer attribute type for {type(value).__name__} value {value!r}"
    )


class Variant:
    """An immutable tagged value.

    >>> Variant.of(17)
    Variant(int, 17)
    >>> Variant.of(2.5).to_double()
    2.5
    >>> Variant("uint", 3) < Variant("uint", 9)
    True
    """

    __slots__ = ("type", "value")

    #: Singleton-ish empty variant; compares equal to other empties.
    def __init__(self, vtype: Union[ValueType, str], value: RawValue | None) -> None:
        if isinstance(vtype, str):
            vtype = ValueType.from_name(vtype)
        if vtype is ValueType.INV:
            value = None
        else:
            value = _coerce(vtype, value)
        object.__setattr__(self, "type", vtype)
        object.__setattr__(self, "value", value)

    def __setattr__(self, name: str, value: object) -> None:  # pragma: no cover
        raise AttributeError("Variant is immutable")

    def __reduce__(self):
        # Explicit reduction: the immutability guard breaks pickle's default
        # slot restoration, and payload-size estimation in the MPI simulator
        # pickles records.
        return (Variant, (self.type.value, self.value))

    # -- constructors ------------------------------------------------------

    @classmethod
    def of(cls, value: "RawValue | Variant | None") -> "Variant":
        """Build a variant by inferring the type from a Python value."""
        if isinstance(value, Variant):
            return value
        if value is None:
            return EMPTY_VARIANT
        return cls(_infer_type(value), value)

    @classmethod
    def empty(cls) -> "Variant":
        return EMPTY_VARIANT

    @classmethod
    def double(cls, value: float) -> "Variant":
        """Fast DOUBLE constructor for a value known to be a ``float``.

        Skips the ``__init__`` type dispatch and :func:`_coerce` validation;
        the timer service builds one of these per snapshot, which makes the
        full constructor measurable on the per-event hot path.  Callers must
        pass an actual float.
        """
        v = cls.__new__(cls)
        object.__setattr__(v, "type", ValueType.DOUBLE)
        object.__setattr__(v, "value", value)
        return v

    # -- predicates --------------------------------------------------------

    @property
    def is_empty(self) -> bool:
        return self.type is ValueType.INV

    @property
    def is_numeric(self) -> bool:
        return self.type.is_numeric

    # -- conversions -------------------------------------------------------

    def to_int(self) -> int:
        """Return the value as an int; raises for non-numeric variants."""
        if self.type in (ValueType.INT, ValueType.UINT):
            return self.value  # type: ignore[return-value]
        if self.type is ValueType.DOUBLE:
            return int(self.value)  # type: ignore[arg-type]
        if self.type is ValueType.BOOL:
            return int(self.value)  # type: ignore[arg-type]
        raise TypeMismatchError(f"cannot convert {self!r} to int")

    def to_double(self) -> float:
        if self.type.is_numeric or self.type is ValueType.BOOL:
            return float(self.value)  # type: ignore[arg-type]
        raise TypeMismatchError(f"cannot convert {self!r} to double")

    def to_string(self) -> str:
        """Text form used by formatters and the .cali writer."""
        if self.type is ValueType.INV:
            return ""
        if self.type is ValueType.BOOL:
            return "true" if self.value else "false"
        if self.type is ValueType.DOUBLE:
            # repr keeps round-trip precision; strip the trailing '.0' noise
            # for integral doubles to keep tables compact.
            v = self.value
            assert isinstance(v, float)
            if math.isfinite(v) and v == int(v) and abs(v) < 1e15:
                return str(int(v))
            return repr(v)
        return str(self.value)

    @classmethod
    def parse(cls, vtype: Union[ValueType, str], text: str) -> "Variant":
        """Inverse of :meth:`to_string` for a known type."""
        if isinstance(vtype, str):
            vtype = ValueType.from_name(vtype)
        if vtype is ValueType.INV:
            return EMPTY_VARIANT
        if vtype in (ValueType.INT, ValueType.UINT):
            return cls(vtype, int(text))
        if vtype is ValueType.DOUBLE:
            return cls(vtype, float(text))
        if vtype is ValueType.BOOL:
            lowered = text.strip().lower()
            if lowered in ("true", "1"):
                return cls(vtype, True)
            if lowered in ("false", "0"):
                return cls(vtype, False)
            raise TypeMismatchError(f"cannot parse bool from {text!r}")
        return cls(vtype, text)

    # -- comparisons -------------------------------------------------------

    def _order_key(self) -> tuple:
        # Numeric types compare by value across int/uint/double; everything
        # else compares within its own type class.  Mixed-class comparisons
        # order by type name so sorting heterogeneous columns is stable.
        if self.type.is_numeric or self.type is ValueType.BOOL:
            return (0, float(self.value))  # type: ignore[arg-type]
        if self.type is ValueType.INV:
            return (-1, 0.0)
        return (1, self.type.value, self.value)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Variant):
            return NotImplemented
        if self.type.is_numeric and other.type.is_numeric:
            return float(self.value) == float(other.value)  # type: ignore[arg-type]
        return self.type is other.type and self.value == other.value

    def __lt__(self, other: "Variant") -> bool:
        return self._order_key() < other._order_key()

    def __le__(self, other: "Variant") -> bool:
        return self._order_key() <= other._order_key()

    def __gt__(self, other: "Variant") -> bool:
        return self._order_key() > other._order_key()

    def __ge__(self, other: "Variant") -> bool:
        return self._order_key() >= other._order_key()

    def __hash__(self) -> int:
        if self.type.is_numeric:
            return hash(float(self.value))  # type: ignore[arg-type]
        return hash((self.type, self.value))

    def __repr__(self) -> str:
        return f"Variant({self.type.value}, {self.value!r})"

    def __bool__(self) -> bool:
        return not self.is_empty


def _coerce(vtype: ValueType, value: RawValue | None) -> RawValue:
    """Validate/convert a raw Python value for the declared type."""
    if value is None:
        raise TypeMismatchError(f"None is not a valid {vtype.value} value")
    if vtype in (ValueType.INT, ValueType.UINT):
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise TypeMismatchError(f"{value!r} is not a valid {vtype.value} value")
        ivalue = int(value)
        if ivalue != value:
            raise TypeMismatchError(f"{value!r} would lose precision as {vtype.value}")
        if vtype is ValueType.UINT and ivalue < 0:
            raise TypeMismatchError(f"negative value {value!r} for uint attribute")
        return ivalue
    if vtype is ValueType.DOUBLE:
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise TypeMismatchError(f"{value!r} is not a valid double value")
        return float(value)
    if vtype is ValueType.BOOL:
        if not isinstance(value, bool):
            raise TypeMismatchError(f"{value!r} is not a valid bool value")
        return value
    if vtype in (ValueType.STRING, ValueType.USR):
        if not isinstance(value, str):
            raise TypeMismatchError(f"{value!r} is not a valid string value")
        return value
    raise TypeMismatchError(f"unsupported value type {vtype}")  # pragma: no cover


EMPTY_VARIANT = Variant.__new__(Variant)
object.__setattr__(EMPTY_VARIANT, "type", ValueType.INV)
object.__setattr__(EMPTY_VARIANT, "value", None)
