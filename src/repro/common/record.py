"""Snapshot records: the unit of performance data.

A :class:`Record` is a set of independent key:value attributes, exactly the
model of Section III-A of the paper: subsequent records in a stream may have
entirely different attribute sets.  Keys are attribute *labels* (interned
strings); values are :class:`~repro.common.variant.Variant` instances.

Records are deliberately a thin mapping type: the aggregation engine touches
millions of them, so every operation here is dict-speed.  Attribute metadata
(types, properties) lives in the :class:`AttributeRegistry`, not in each
record.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping, Optional, Tuple, Union

from .variant import RawValue, Variant

__all__ = ["Entry", "Record", "make_record"]

#: A single (label, value) pair as stored in a record.
Entry = Tuple[str, Variant]


class Record:
    """An immutable-ish snapshot record.

    The constructor accepts raw Python values and wraps them in Variants;
    use :meth:`from_variants` when values are already typed (hot paths).

    >>> r = Record({"function": "foo", "time.duration": 251})
    >>> r["function"].to_string()
    'foo'
    >>> sorted(r.labels())
    ['function', 'time.duration']
    """

    __slots__ = ("_entries",)

    def __init__(self, entries: Optional[Mapping[str, Union[RawValue, Variant]]] = None) -> None:
        data: dict[str, Variant] = {}
        if entries:
            for label, value in entries.items():
                data[label] = Variant.of(value)
        self._entries = data

    @classmethod
    def from_variants(cls, entries: dict[str, Variant]) -> "Record":
        """Wrap an existing ``{label: Variant}`` dict without copying.

        The caller must not mutate ``entries`` afterwards.
        """
        rec = cls.__new__(cls)
        rec._entries = entries
        return rec

    # -- mapping interface ---------------------------------------------------

    def __getitem__(self, label: str) -> Variant:
        return self._entries[label]

    def get(self, label: str, default: Variant = Variant.empty()) -> Variant:
        return self._entries.get(label, default)

    def __contains__(self, label: str) -> bool:
        return label in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[str]:
        return iter(self._entries)

    def labels(self) -> Iterable[str]:
        return self._entries.keys()

    def items(self) -> Iterable[Entry]:
        return self._entries.items()

    def as_dict(self) -> dict[str, Variant]:
        """A copy of the underlying entries."""
        return dict(self._entries)

    def to_plain(self) -> dict[str, RawValue]:
        """Untyped dict of raw Python values, for display and JSON."""
        return {label: v.value for label, v in self._entries.items()}  # type: ignore[misc]

    # -- derived records -------------------------------------------------------

    def with_entries(self, extra: Mapping[str, Union[RawValue, Variant]]) -> "Record":
        """A new record with ``extra`` entries added/overriding."""
        data = dict(self._entries)
        for label, value in extra.items():
            data[label] = Variant.of(value)
        return Record.from_variants(data)

    def project(self, labels: Iterable[str]) -> "Record":
        """A new record restricted to ``labels`` (missing ones dropped)."""
        data = {lbl: self._entries[lbl] for lbl in labels if lbl in self._entries}
        return Record.from_variants(data)

    def drop(self, labels: Iterable[str]) -> "Record":
        """A new record without ``labels``."""
        dropset = set(labels)
        data = {lbl: v for lbl, v in self._entries.items() if lbl not in dropset}
        return Record.from_variants(data)

    # -- comparisons ---------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Record):
            return NotImplemented
        return self._entries == other._entries

    def __hash__(self) -> int:
        return hash(frozenset(self._entries.items()))

    def __repr__(self) -> str:
        inner = ", ".join(f"{k!r}: {v.to_string()!r}" for k, v in sorted(self._entries.items()))
        return "Record({" + inner + "})"


def make_record(**kwargs: Union[RawValue, Variant]) -> Record:
    """Convenience constructor: ``make_record(function="foo", time=251)``.

    Keyword names with ``__`` are translated to ``.`` so dotted labels can be
    written inline: ``make_record(time__duration=251)``.
    """
    return Record({k.replace("__", "."): v for k, v in kwargs.items()})
