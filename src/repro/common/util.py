"""Small shared helpers."""

from __future__ import annotations

from typing import Sequence

__all__ = [
    "stable_hash64",
    "format_count",
    "format_duration",
    "chunk_evenly",
    "is_power_of_two",
    "parent_of",
    "children_of",
]

_FNV_OFFSET = 0xCBF29CE484222325
_FNV_PRIME = 0x100000001B3
_MASK64 = 0xFFFFFFFFFFFFFFFF


def stable_hash64(data: bytes) -> int:
    """64-bit FNV-1a hash.

    Used where we need a hash that is stable across processes and Python
    runs (Python's builtin ``hash`` for str is salted per process, which
    would break cross-"process" aggregation-key exchange in the simulator).
    """
    h = _FNV_OFFSET
    for byte in data:
        h ^= byte
        h = (h * _FNV_PRIME) & _MASK64
    return h


def format_count(n: int) -> str:
    """Thousands-separated count, as the paper prints them (219 382)."""
    return f"{n:,}".replace(",", " ")


def format_duration(seconds: float) -> str:
    """Human-readable duration with a sensible unit."""
    if seconds < 0:
        return "-" + format_duration(-seconds)
    if seconds < 1e-6:
        return f"{seconds * 1e9:.1f} ns"
    if seconds < 1e-3:
        return f"{seconds * 1e6:.1f} us"
    if seconds < 1.0:
        return f"{seconds * 1e3:.2f} ms"
    if seconds < 120.0:
        return f"{seconds:.3f} s"
    return f"{seconds / 60.0:.2f} min"


def chunk_evenly(items: Sequence, parts: int) -> list[list]:
    """Split ``items`` into ``parts`` contiguous chunks of near-equal size.

    The first ``len(items) % parts`` chunks get one extra element; chunks may
    be empty when there are more parts than items.  This is the file
    assignment policy of the MPI query application.
    """
    if parts <= 0:
        raise ValueError(f"parts must be positive, got {parts}")
    n = len(items)
    base, extra = divmod(n, parts)
    chunks: list[list] = []
    start = 0
    for i in range(parts):
        size = base + (1 if i < extra else 0)
        chunks.append(list(items[start : start + size]))
        start += size
    return chunks


def is_power_of_two(n: int) -> bool:
    return n > 0 and (n & (n - 1)) == 0


def parent_of(rank: int, fanout: int = 2) -> int:
    """Parent of ``rank`` in a k-ary reduction tree rooted at 0."""
    if rank == 0:
        raise ValueError("rank 0 is the root and has no parent")
    return (rank - 1) // fanout


def children_of(rank: int, size: int, fanout: int = 2) -> list[int]:
    """Children of ``rank`` in a k-ary reduction tree over ``size`` ranks."""
    first = rank * fanout + 1
    return [c for c in range(first, min(first + fanout, size))]
