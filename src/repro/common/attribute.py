"""Attribute metadata and the attribute registry.

An :class:`Attribute` is the *key* half of the paper's key:value data model:
a unique label, a value type, and a set of properties that control how the
runtime treats values of this attribute.  The :class:`AttributeRegistry`
interns attributes by label and assigns small integer ids used by the
aggregation database for compact keys.

Properties (a subset of Caliper's semantics, the ones aggregation needs):

``NESTED``
    Values form a begin/end stack; snapshots record the whole path
    (e.g. a callpath ``main/foo``).  Non-nested attributes snapshot only
    their current (top) value.
``ASVALUE``
    The attribute is stored inline in snapshot records rather than in the
    context tree; typical for metric values such as ``time.duration``.
``AGGREGATABLE``
    Marks metric attributes that aggregation operators may reduce.
``SKIP_EVENTS``
    Updates to this attribute never trigger event snapshots (used for
    bookkeeping attributes to avoid measurement feedback).
``GLOBAL``
    Process-wide metadata (run date, problem size) emitted once per
    dataset rather than per snapshot.
"""

from __future__ import annotations

import enum
import threading
from typing import Iterable, Iterator, Optional, Union

from .errors import DuplicateAttributeError, UnknownAttributeError
from .variant import ValueType, Variant

__all__ = ["AttrProperty", "Attribute", "AttributeRegistry"]


class AttrProperty(enum.Flag):
    """Bit flags describing runtime semantics of an attribute."""

    NONE = 0
    NESTED = enum.auto()
    ASVALUE = enum.auto()
    AGGREGATABLE = enum.auto()
    SKIP_EVENTS = enum.auto()
    GLOBAL = enum.auto()

    @classmethod
    def from_names(cls, names: Iterable[str]) -> "AttrProperty":
        prop = cls.NONE
        for name in names:
            try:
                prop |= cls[name.strip().upper()]
            except KeyError:
                raise UnknownAttributeError(f"attribute property {name!r}") from None
        return prop

    def names(self) -> list[str]:
        return [m.name.lower() for m in AttrProperty if m and self & m]  # type: ignore[arg-type]


class Attribute:
    """Immutable attribute metadata.

    Attributes are created through :meth:`AttributeRegistry.create` which
    guarantees label uniqueness and id assignment; constructing one directly
    is only useful in tests.
    """

    __slots__ = (
        "id",
        "label",
        "type",
        "properties",
        # property flags, precomputed once — enum-flag arithmetic is too
        # slow for the per-event hot path that tests is_nested/skip_events
        "is_nested",
        "is_value",
        "is_aggregatable",
        "is_global",
        "skip_events",
        "_value_cache",
        "_hash",
    )

    #: cap on interned checked values per attribute (region-name vocabularies
    #: are small; unbounded label sets just stop caching new entries)
    _VALUE_CACHE_LIMIT = 1024

    def __init__(
        self,
        attr_id: int,
        label: str,
        vtype: Union[ValueType, str],
        properties: AttrProperty = AttrProperty.NONE,
    ) -> None:
        if isinstance(vtype, str):
            vtype = ValueType.from_name(vtype)
        object.__setattr__(self, "id", attr_id)
        object.__setattr__(self, "label", label)
        object.__setattr__(self, "type", vtype)
        object.__setattr__(self, "properties", properties)
        object.__setattr__(self, "is_nested", bool(properties & AttrProperty.NESTED))
        object.__setattr__(self, "is_value", bool(properties & AttrProperty.ASVALUE))
        object.__setattr__(
            self, "is_aggregatable", bool(properties & AttrProperty.AGGREGATABLE)
        )
        object.__setattr__(self, "is_global", bool(properties & AttrProperty.GLOBAL))
        object.__setattr__(
            self, "skip_events", bool(properties & AttrProperty.SKIP_EVENTS)
        )
        object.__setattr__(self, "_value_cache", {})
        # Attributes key the blackboard's per-event dict lookups; hashing
        # the (id, label) tuple every time is measurable, so do it once.
        object.__setattr__(self, "_hash", hash((attr_id, label)))

    def __setattr__(self, name: str, value: object) -> None:  # pragma: no cover
        raise AttributeError("Attribute is immutable")

    def __reduce__(self):
        return (Attribute, (self.id, self.label, self.type.value, self.properties))

    def check(self, value: object) -> Variant:
        """Coerce ``value`` into a Variant of this attribute's type.

        Checked **string** values are interned per attribute: repeated
        ``begin("function", "solve")`` calls return the *identical* Variant
        object.  Besides skipping validation and allocation, this identity
        stability is what lets the aggregation service's context-key cache
        recognise re-entered regions (it memos keys by value identity).
        Benign data race by design: the cache is per-attribute and guarded
        only by the GIL; a lost update merely re-creates an equal Variant.
        """
        if isinstance(value, str):
            cached = self._value_cache.get(value)
            if cached is None:
                cached = Variant(self.type, value)
                if len(self._value_cache) < self._VALUE_CACHE_LIMIT:
                    self._value_cache[value] = cached
            return cached
        if isinstance(value, Variant):
            if value.type is not self.type and not (
                value.type.is_numeric and self.type.is_numeric
            ):
                from .errors import TypeMismatchError

                raise TypeMismatchError(
                    f"attribute {self.label!r} has type {self.type.value}, "
                    f"got {value.type.value} value {value.value!r}"
                )
            return value
        return Variant(self.type, value)  # type: ignore[arg-type]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Attribute):
            return NotImplemented
        return self.id == other.id and self.label == other.label

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        props = ",".join(self.properties.names()) or "none"
        return f"Attribute(id={self.id}, label={self.label!r}, type={self.type.value}, props={props})"


class AttributeRegistry:
    """Interning registry mapping labels <-> :class:`Attribute`.

    Thread-safe: the runtime may create attributes from multiple threads.
    ``create`` is idempotent for identical metadata and raises
    :class:`DuplicateAttributeError` on conflicting redefinition, mirroring
    Caliper's ``cali_create_attribute`` semantics.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._by_label: dict[str, Attribute] = {}
        self._by_id: list[Attribute] = []

    def create(
        self,
        label: str,
        vtype: Union[ValueType, str] = ValueType.STRING,
        properties: AttrProperty = AttrProperty.NONE,
    ) -> Attribute:
        if isinstance(vtype, str):
            vtype = ValueType.from_name(vtype)
        with self._lock:
            existing = self._by_label.get(label)
            if existing is not None:
                if existing.type is not vtype or existing.properties != properties:
                    raise DuplicateAttributeError(
                        label,
                        f"existing type={existing.type.value} props={existing.properties.names()}, "
                        f"requested type={vtype.value} props={properties.names()}",
                    )
                return existing
            attr = Attribute(len(self._by_id), label, vtype, properties)
            self._by_id.append(attr)
            self._by_label[label] = attr
            return attr

    def get(self, key: Union[str, int]) -> Attribute:
        """Look up by label or id; raises :class:`UnknownAttributeError`."""
        try:
            if isinstance(key, str):
                return self._by_label[key]
            return self._by_id[key]
        except (KeyError, IndexError):
            raise UnknownAttributeError(key) from None

    def find(self, key: Union[str, int]) -> Optional[Attribute]:
        """Like :meth:`get` but returns None instead of raising."""
        try:
            return self.get(key)
        except UnknownAttributeError:
            return None

    def get_or_create(
        self,
        label: str,
        vtype: Union[ValueType, str] = ValueType.STRING,
        properties: AttrProperty = AttrProperty.NONE,
    ) -> Attribute:
        """Return the existing attribute for ``label`` or create one.

        Unlike :meth:`create`, an existing attribute is returned even if the
        requested metadata differs (the existing definition wins); used by
        readers that encounter labels with unknown provenance.
        """
        existing = self.find(label)
        if existing is not None:
            return existing
        return self.create(label, vtype, properties)

    def __contains__(self, label: str) -> bool:
        return label in self._by_label

    def __len__(self) -> int:
        return len(self._by_id)

    def __iter__(self) -> Iterator[Attribute]:
        return iter(list(self._by_id))

    def labels(self) -> list[str]:
        return [a.label for a in self._by_id]
