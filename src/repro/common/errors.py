"""Exception hierarchy for the repro profiling framework.

All library errors derive from :class:`ReproError` so callers can catch a
single base type.  Subsystems raise the most specific subclass available;
error messages always carry enough context (attribute label, query text
position, file offset, ...) to be actionable without a debugger.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "AttributeError_",
    "DuplicateAttributeError",
    "UnknownAttributeError",
    "TypeMismatchError",
    "BlackboardError",
    "ChannelError",
    "ConfigError",
    "ServiceError",
    "QueryError",
    "CalQLSyntaxError",
    "CalQLSemanticError",
    "OperatorError",
    "AggregationError",
    "FormatError",
    "DatasetError",
    "SimMPIError",
    "CommunicatorError",
    "DeadlockError",
]


class ReproError(Exception):
    """Base class for all errors raised by the repro framework."""


class AttributeError_(ReproError):
    """Base class for attribute-registry errors.

    Named with a trailing underscore to avoid shadowing the builtin
    :class:`AttributeError`.
    """


class DuplicateAttributeError(AttributeError_):
    """An attribute with the same label but conflicting metadata exists."""

    def __init__(self, label: str, detail: str = "") -> None:
        msg = f"attribute {label!r} already exists with different metadata"
        if detail:
            msg += f": {detail}"
        super().__init__(msg)
        self.label = label


class UnknownAttributeError(AttributeError_):
    """A lookup referenced an attribute label or id that was never created."""

    def __init__(self, key: object) -> None:
        super().__init__(f"unknown attribute: {key!r}")
        self.key = key


class TypeMismatchError(ReproError):
    """A value did not match the declared attribute type."""


class BlackboardError(ReproError):
    """Invalid blackboard operation (e.g. unmatched end())."""


class ChannelError(ReproError):
    """Invalid channel lifecycle operation."""


class ConfigError(ReproError):
    """Malformed runtime configuration."""


class ServiceError(ReproError):
    """A service failed to register or process a snapshot."""


class QueryError(ReproError):
    """Base class for query-language and query-engine errors."""


class CalQLSyntaxError(QueryError):
    """The CalQL text failed to lex or parse.

    Carries the character ``position`` within the query string so tools can
    print a caret diagnostic.
    """

    def __init__(self, message: str, position: int = -1, text: str = "") -> None:
        if position >= 0 and text:
            line = text[:position].count("\n") + 1
            col = position - (text.rfind("\n", 0, position) + 1) + 1
            message = f"{message} (line {line}, column {col})"
        super().__init__(message)
        self.position = position


class CalQLSemanticError(QueryError):
    """The CalQL text parsed but is not a meaningful query."""


class OperatorError(ReproError):
    """Unknown aggregation operator or invalid operator arguments."""


class AggregationError(ReproError):
    """Failure inside the aggregation engine itself."""


class FormatError(ReproError):
    """Failure while reading or writing a serialization format."""


class DatasetError(ReproError):
    """Failure while assembling or querying a multi-file dataset."""


class SimMPIError(ReproError):
    """Base class for errors in the discrete-event MPI simulator."""


class CommunicatorError(SimMPIError):
    """Invalid communicator operation (bad rank, tag, mismatched collective)."""


class DeadlockError(SimMPIError):
    """The simulated program can make no further progress.

    Raised by the scheduler when every live rank is blocked and no message
    or event can unblock any of them; the message lists the blocked ranks
    and the operation each is waiting on.
    """

    def __init__(self, blocked: dict[int, str]) -> None:
        detail = ", ".join(f"rank {r}: {op}" for r, op in sorted(blocked.items()))
        super().__init__(f"simulated MPI deadlock; blocked ranks: {detail}")
        self.blocked = blocked
