"""repro — Flexible Data Aggregation for Performance Profiling.

A from-scratch Python reproduction of Böhme, Beckingsale & Schulz,
"Flexible Data Aggregation for Performance Profiling" (IEEE CLUSTER 2017):
a Caliper-style performance-introspection runtime with a flexible key:value
data model, user-definable aggregation schemes written in a small SQL-like
description language (CalQL), an on-line streaming aggregation service, a
scalable (simulated-)MPI cross-process query application, and the paper's
evaluation workloads.

Quick tour::

    import repro

    # --- on-line profiling ------------------------------------------------
    cali = repro.Caliper()
    chan = cali.create_channel("profile", {
        "services": ["event", "timer", "aggregate"],
        "aggregate.config":
            "AGGREGATE count, sum(time.duration) GROUP BY function",
    })
    with cali.region("function", "solve"):
        ...                                   # your code
    records = chan.finish()

    # --- analysis: one entry point for any source ------------------------
    result = repro.api.query(
        "AGGREGATE sum(time.duration) GROUP BY function ORDER BY function",
        records,          # or a path, a glob, a Dataset, or "host:port"
    )
    print(result.to_table())

See ``examples/`` for complete scenarios and ``DESIGN.md`` for the system
inventory.
"""

from .aggregate import (
    AggregationDB,
    AggregationScheme,
    StreamAggregator,
    aggregate_records,
    combine_partials,
    make_op,
)
from .calql import parse_query, parse_scheme
from .common import (
    AttrProperty,
    Attribute,
    AttributeRegistry,
    Record,
    ReproError,
    ValueType,
    Variant,
    make_record,
)
from . import api
from .io import Dataset, read_records, write_records
from .mpi import LatencyBandwidthNetwork, SimWorld
from .net import AggregationServer, FlushClient, LocalTree, live_query, plan_tree
from .query import MPIQueryRunner, QueryEngine, QueryOptions, QueryResult, run_query
from .runtime import (
    Caliper,
    Channel,
    ConfigSet,
    VirtualClock,
    WallClock,
    default_runtime,
)
from .session import ProfilingSession, profiling

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # data model
    "Variant",
    "ValueType",
    "Attribute",
    "AttrProperty",
    "AttributeRegistry",
    "Record",
    "make_record",
    "ReproError",
    # aggregation core
    "AggregationScheme",
    "AggregationDB",
    "StreamAggregator",
    "aggregate_records",
    "combine_partials",
    "make_op",
    # language
    "parse_query",
    "parse_scheme",
    # runtime
    "Caliper",
    "Channel",
    "ConfigSet",
    "VirtualClock",
    "WallClock",
    "default_runtime",
    "ProfilingSession",
    "profiling",
    # query
    "api",
    "QueryEngine",
    "QueryResult",
    "QueryOptions",
    "run_query",
    "MPIQueryRunner",
    # io
    "Dataset",
    "read_records",
    "write_records",
    # mpi
    "SimWorld",
    "LatencyBandwidthNetwork",
    # net
    "AggregationServer",
    "FlushClient",
    "live_query",
    "LocalTree",
    "plan_tree",
]
