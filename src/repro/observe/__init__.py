"""repro.observe — the self-profiling telemetry layer.

The profiler profiles itself: runtime, query-engine, ingestion, and MPI
reduction-tree internals record their cost into a thread-safe metrics
registry (:mod:`.registry`), and exporters (:mod:`.export`) render the
result as a ``--stats`` table, a JSON payload, or — dogfooding the paper's
own data model — ordinary snapshot records that CalQL queries aggregate
like any other performance data.

Collection is **off by default** and costs one flag check per instrumented
site when off; enable it per scope::

    from repro import observe

    with observe.collecting() as reg:
        dataset.query("AGGREGATE count GROUP BY kernel")
        print(observe.stats_table(reg))
        telemetry = observe.to_records(reg)   # CalQL-queryable records

See ``docs/observability.md`` for the metric catalog.
"""

from .export import flush_to_channel, stats_table, to_dict, to_records
from .runinfo import config_fingerprint, git_state, run_info
from .registry import (
    NULL_SPAN,
    MetricsRegistry,
    Span,
    collecting,
    count,
    disable,
    enable,
    enabled,
    gauge,
    registry,
    reset,
    span,
    timing,
)

__all__ = [
    # registry
    "MetricsRegistry",
    "Span",
    "NULL_SPAN",
    "enabled",
    "enable",
    "disable",
    "registry",
    "reset",
    "collecting",
    "count",
    "gauge",
    "timing",
    "span",
    # exporters
    "stats_table",
    "to_dict",
    "to_records",
    "flush_to_channel",
    # run metadata
    "run_info",
    "git_state",
    "config_fingerprint",
]
