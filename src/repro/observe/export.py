"""Exporters: metrics → stats table, JSON payload, or snapshot records.

Three consumers, three shapes:

* :func:`stats_table` — the human-readable ``--stats`` table the query CLI
  prints to stderr;
* :func:`to_dict` — a JSON-able payload (``--json-stats``, and what
  ``benchmarks/run_bench_json.py`` archives as ``BENCH_observability.json``);
* :func:`to_records` — the headline: every metric becomes an ordinary
  snapshot :class:`~repro.common.record.Record` with ``observe.*`` labels,
  so the profiler's own telemetry is CalQL-queryable::

      AGGREGATE sum(observe.time) GROUP BY observe.phase

  :func:`flush_to_channel` goes one step further and pushes those records
  through a real runtime channel (blackboard snapshot → trace service →
  flush), dogfooding the exact pipeline the system profiles.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from ..common.record import Record
from ..common.variant import Variant
from .registry import MetricsRegistry, registry

if TYPE_CHECKING:  # pragma: no cover
    from ..runtime.instrumentation import Caliper

__all__ = ["stats_table", "to_dict", "to_records", "flush_to_channel"]


def _flat_name(name: str, tags: tuple) -> str:
    """``name{k=v,...}`` — one stable string key per metric identity."""
    if not tags:
        return name
    inner = ",".join(f"{k}={v}" for k, v in tags)
    return f"{name}{{{inner}}}"


def to_dict(reg: Optional[MetricsRegistry] = None) -> dict:
    """JSON-able payload: counters/gauges as flat maps, timers with stats."""
    snap = (reg or registry()).snapshot()
    return {
        "counters": {
            _flat_name(name, tags): value
            for (name, tags), value in sorted(snap["counters"].items())
        },
        "gauges": {
            _flat_name(name, tags): value
            for (name, tags), value in sorted(snap["gauges"].items())
        },
        "timers": {
            _flat_name(name, tags): {
                "count": n,
                "total": total,
                "mean": total / n if n else 0.0,
                "min": mn,
                "max": mx,
            }
            for (name, tags), (n, total, mn, mx) in sorted(snap["timers"].items())
        },
    }


def to_records(
    reg: Optional[MetricsRegistry] = None,
    run_info: Optional[dict] = None,
    run_seq: Optional[int] = None,
) -> list[Record]:
    """One snapshot record per metric, in the system's own data model.

    Shared labels: ``observe.kind`` (timer/counter/gauge), ``observe.phase``
    (the metric's leaf name — what per-phase aggregations group by), and one
    ``observe.<tag>`` entry per tag.  Timers add ``observe.path`` (the full
    nesting path), ``observe.count``, ``observe.time`` (total seconds) and
    min/max; counters and gauges add ``observe.metric``/``observe.value``.

    ``run_info`` (see :func:`repro.observe.run_info`) stamps its ``run.*``
    labels onto every record so multi-run telemetry datasets stay
    attributable; ``run_seq`` adds a caller-supplied monotonic ``run.seq``
    so records from successive exports order deterministically.
    """
    snap = (reg or registry()).snapshot()
    stamp: dict[str, Variant] = {
        k: Variant.of(v) for k, v in (run_info or {}).items()
    }
    if run_seq is not None:
        stamp["run.seq"] = Variant.of(int(run_seq))
    out: list[Record] = []
    for (path, tags), (n, total, mn, mx) in snap["timers"].items():
        entries: dict[str, Variant] = {
            "observe.kind": Variant.of("timer"),
            "observe.path": Variant.of(path),
            "observe.phase": Variant.of(path.rsplit("/", 1)[-1]),
            "observe.count": Variant.of(n),
            "observe.time": Variant.of(total),
            "observe.time.min": Variant.of(mn),
            "observe.time.max": Variant.of(mx),
        }
        for key, value in tags:
            entries[f"observe.{key}"] = Variant.of(value)
        if stamp:
            entries.update(stamp)
        out.append(Record.from_variants(entries))
    for kind, table in (("counter", snap["counters"]), ("gauge", snap["gauges"])):
        for (name, tags), value in table.items():
            entries = {
                "observe.kind": Variant.of(kind),
                "observe.metric": Variant.of(name),
                "observe.phase": Variant.of(name.rsplit("/", 1)[-1]),
                "observe.value": Variant.of(value),
            }
            for key, value_ in tags:
                entries[f"observe.{key}"] = Variant.of(value_)
            if stamp:
                entries.update(stamp)
            out.append(Record.from_variants(entries))
    return out


def stats_table(reg: Optional[MetricsRegistry] = None) -> str:
    """The aligned, human-readable metrics report (``--stats`` output).

    Timer totals are printed with microsecond resolution; the per-phase rows
    here are the numbers the telemetry records reproduce under CalQL.
    """
    snap = (reg or registry()).snapshot()
    lines: list[str] = [
        f"observe: {len(snap['timers'])} timers, "
        f"{len(snap['counters'])} counters, {len(snap['gauges'])} gauges"
    ]

    if snap["timers"]:
        rows = [
            (
                _flat_name(path, tags),
                str(n),
                f"{total:.6f}",
                f"{total / n:.6f}",
                f"{mn:.6f}",
                f"{mx:.6f}",
            )
            for (path, tags), (n, total, mn, mx) in sorted(snap["timers"].items())
        ]
        header = ("timer (path)", "count", "total s", "mean s", "min s", "max s")
        widths = [
            max(len(header[i]), max(len(r[i]) for r in rows)) for i in range(6)
        ]
        lines.append("")
        lines.append(
            "  ".join(
                h.ljust(widths[i]) if i == 0 else h.rjust(widths[i])
                for i, h in enumerate(header)
            )
        )
        for row in rows:
            lines.append(
                "  ".join(
                    c.ljust(widths[i]) if i == 0 else c.rjust(widths[i])
                    for i, c in enumerate(row)
                )
            )

    for title, table in (("counters", snap["counters"]), ("gauges", snap["gauges"])):
        if not table:
            continue
        rows = [
            (_flat_name(name, tags), str(value))
            for (name, tags), value in sorted(table.items())
        ]
        name_w = max(len(title), max(len(r[0]) for r in rows))
        val_w = max(len("value"), max(len(r[1]) for r in rows))
        lines.append("")
        lines.append(f"{title.ljust(name_w)}  {'value'.rjust(val_w)}")
        for name, value in rows:
            lines.append(f"{name.ljust(name_w)}  {value.rjust(val_w)}")
    return "\n".join(lines)


def flush_to_channel(
    caliper: Optional["Caliper"] = None,
    channel_name: str = "observe.telemetry",
    reg: Optional[MetricsRegistry] = None,
    run_info: Optional[dict] = None,
    run_seq: Optional[int] = None,
) -> list[Record]:
    """Push the collected metrics through a real runtime channel.

    Creates a trace-service channel on ``caliper`` (a private runtime
    instance by default), takes one snapshot per metric record, and returns
    the channel's flushed output — the profiler's telemetry delivered by the
    very snapshot pipeline it measures.  The channel is finished (and the
    name freed) before returning.  ``run_info``/``run_seq`` stamp run
    metadata and a monotonic sequence number onto the records (see
    :func:`to_records`).
    """
    from ..runtime.instrumentation import Caliper  # deferred: observe sits below runtime

    cali = caliper if caliper is not None else Caliper()
    name = channel_name
    suffix = 1
    while name in cali.channels:
        name = f"{channel_name}.{suffix}"
        suffix += 1
    channel = cali.create_channel(name, {"services": ["trace"]})
    try:
        for record in to_records(reg, run_info=run_info, run_seq=run_seq):
            channel.push_snapshot(record.as_dict())
        return channel.flush()
    finally:
        cali.finish_channel(name)
        cali.remove_channel(name)
