"""The metrics registry: counters, gauges, and nesting timer spans.

This is the self-profiling layer's core (the paper's Section V, turned on
ourselves): the framework records its *own* runtime behaviour — query phase
times, channel flush cost, reduction-tree wire volume — as named metrics,
and the exporters in :mod:`repro.observe.export` turn them into the very
snapshot records the system aggregates, so overhead studies become ordinary
CalQL queries.

Design constraints, in priority order:

1. **Zero overhead when disabled.**  Collection is off by default; the
   module-level helpers (:func:`count`, :func:`gauge`, :func:`timing`,
   :func:`span`) check one module flag and return immediately —
   :func:`span` hands back a shared no-op :data:`NULL_SPAN` so instrumented
   code can always write ``with observe.span("query.plan"):``.  Nothing in
   the per-*record* hot paths calls into this module at all; only
   per-query / per-file / per-flush sites are instrumented.
2. **Thread safety.**  One lock guards the metric tables; the span nesting
   stack is thread-local, so concurrent threads time independently.
3. **Nesting.**  Spans opened inside an active span get a slash-joined path
   (``query.run/query.scan``), which is how per-phase breakdowns stay
   attributable without threading context through call signatures.

Metric identity is ``(name-or-path, tags)`` where tags are keyword
arguments (``backend="columnar"``); the same name with different tags
accumulates separately, and the accessors sum across tag sets when no tags
are given.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from typing import Iterator, Optional, Union

__all__ = [
    "MetricsRegistry",
    "Span",
    "NULL_SPAN",
    "TagValue",
    "enabled",
    "enable",
    "disable",
    "registry",
    "reset",
    "collecting",
    "count",
    "gauge",
    "timing",
    "span",
]

#: Tag values stay plain scalars so they round-trip through Variants/JSON.
TagValue = Union[str, int, float, bool]

TagsKey = tuple  # tuple of sorted (key, value) pairs


def _tags_key(tags: dict[str, TagValue]) -> TagsKey:
    return tuple(sorted(tags.items())) if tags else ()


class _NullSpan:
    """Shared do-nothing span returned while collection is disabled."""

    __slots__ = ()
    elapsed = 0.0
    path = ""

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


NULL_SPAN = _NullSpan()


class Span:
    """A timed region; records its duration into the registry on exit.

    Entering a span pushes it on the owning registry's thread-local stack;
    nested spans extend the parent's slash-joined ``path``.  The measured
    duration is available as ``elapsed`` after exit.
    """

    __slots__ = ("_registry", "name", "tags", "path", "elapsed", "_start")

    def __init__(self, registry: "MetricsRegistry", name: str, tags: dict[str, TagValue]):
        self._registry = registry
        self.name = name
        self.tags = tags
        self.path = name
        self.elapsed = 0.0
        self._start = 0.0

    def __enter__(self) -> "Span":
        stack = self._registry._span_stack()
        if stack:
            self.path = stack[-1].path + "/" + self.name
        stack.append(self)
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.elapsed = time.perf_counter() - self._start
        stack = self._registry._span_stack()
        if stack and stack[-1] is self:
            stack.pop()
        self._registry.timing(self.path, self.elapsed, **self.tags)
        return False


class MetricsRegistry:
    """Thread-safe store of counters, gauges, and timer statistics.

    Timers hold ``[count, total, min, max]`` per ``(path, tags)``; a
    :class:`Span` feeds them through :meth:`timing`, which callers may also
    use directly for externally measured durations (e.g. shipped back from
    worker processes).
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[tuple[str, TagsKey], float] = {}
        self._gauges: dict[tuple[str, TagsKey], TagValue] = {}
        self._timers: dict[tuple[str, TagsKey], list] = {}
        self._tls = threading.local()

    # -- recording -----------------------------------------------------------

    def count(self, name: str, delta: float = 1, **tags: TagValue) -> None:
        key = (name, _tags_key(tags))
        with self._lock:
            self._counters[key] = self._counters.get(key, 0) + delta

    def gauge(self, name: str, value: TagValue, **tags: TagValue) -> None:
        with self._lock:
            self._gauges[(name, _tags_key(tags))] = value

    def timing(self, name: str, seconds: float, **tags: TagValue) -> None:
        """Fold one measured duration into the ``name`` timer.

        ``name`` may be a slash path (spans pass theirs); externally
        measured durations use a plain metric name.
        """
        key = (name, _tags_key(tags))
        with self._lock:
            t = self._timers.get(key)
            if t is None:
                self._timers[key] = [1, seconds, seconds, seconds]
            else:
                t[0] += 1
                t[1] += seconds
                if seconds < t[2]:
                    t[2] = seconds
                if seconds > t[3]:
                    t[3] = seconds

    def span(self, name: str, **tags: TagValue) -> Span:
        return Span(self, name, tags)

    def _span_stack(self) -> list:
        stack = getattr(self._tls, "stack", None)
        if stack is None:
            stack = []
            self._tls.stack = stack
        return stack

    # -- accessors -----------------------------------------------------------

    def counter_value(self, name: str, **tags: TagValue) -> float:
        """One counter's value; without tags, the sum across all tag sets."""
        with self._lock:
            if tags:
                return self._counters.get((name, _tags_key(tags)), 0)
            return sum(v for (n, _), v in self._counters.items() if n == name)

    def gauge_value(self, name: str, **tags: TagValue) -> Optional[TagValue]:
        """One gauge's value; without tags, the sum of numeric values
        across all tag sets (``None`` when no numeric gauge matches),
        mirroring :meth:`counter_value` so the no-tags read is a single
        consistent pass under the lock rather than one untagged lookup."""
        with self._lock:
            if tags:
                return self._gauges.get((name, _tags_key(tags)))
            total: Optional[float] = None
            for (n, _), v in self._gauges.items():
                if n == name and v.__class__ in (int, float):
                    total = v if total is None else total + v
            return total

    def timer_stats(
        self, name: str, **tags: TagValue
    ) -> Optional[tuple[int, float, float, float]]:
        """``(count, total, min, max)`` for one exact ``(path, tags)`` timer."""
        with self._lock:
            t = self._timers.get((name, _tags_key(tags)))
            return tuple(t) if t is not None else None

    def timer_total(self, name: str, **tags: TagValue) -> float:
        """Total seconds in a timer; without tags, summed across tag sets."""
        with self._lock:
            if tags:
                t = self._timers.get((name, _tags_key(tags)))
                return t[1] if t is not None else 0.0
            return sum(t[1] for (n, _), t in self._timers.items() if n == name)

    def timer_paths(self) -> list[str]:
        """All distinct timer paths, sorted."""
        with self._lock:
            return sorted({name for name, _ in self._timers})

    def snapshot(self) -> dict:
        """A consistent point-in-time copy of all three metric tables."""
        with self._lock:
            return {
                "counters": dict(self._counters),
                "gauges": dict(self._gauges),
                "timers": {k: list(v) for k, v in self._timers.items()},
            }

    def clear(self) -> None:
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._timers.clear()

    def __repr__(self) -> str:
        with self._lock:
            return (
                f"MetricsRegistry({len(self._counters)} counters, "
                f"{len(self._gauges)} gauges, {len(self._timers)} timers)"
            )


# -- module-level collection state --------------------------------------------

_enabled = False
_registry = MetricsRegistry()
_state_lock = threading.Lock()


def enabled() -> bool:
    """Whether metric collection is currently on (off by default)."""
    return _enabled


def enable() -> MetricsRegistry:
    """Turn collection on; returns the active registry."""
    global _enabled
    with _state_lock:
        _enabled = True
    return _registry


def disable() -> None:
    global _enabled
    with _state_lock:
        _enabled = False


def registry() -> MetricsRegistry:
    """The active registry (metrics land here while collection is on)."""
    return _registry


def reset() -> None:
    """Drop all collected metrics (collection state is unchanged)."""
    _registry.clear()


@contextmanager
def collecting(fresh: bool = True) -> Iterator[MetricsRegistry]:
    """Enable collection for a ``with`` block, restoring prior state after.

    ``fresh`` (default) swaps in a new empty registry for the block so the
    caller gets exactly the metrics its own code produced — the pattern the
    CLI's ``--stats`` and the tests use.
    """
    global _enabled, _registry
    with _state_lock:
        prev_registry, prev_enabled = _registry, _enabled
        if fresh:
            _registry = MetricsRegistry()
        _enabled = True
        reg = _registry
    try:
        yield reg
    finally:
        with _state_lock:
            _registry, _enabled = prev_registry, prev_enabled


# -- fast-path helpers (what instrumented code calls) --------------------------


def count(name: str, delta: float = 1, **tags: TagValue) -> None:
    if _enabled:
        _registry.count(name, delta, **tags)


def gauge(name: str, value: TagValue, **tags: TagValue) -> None:
    if _enabled:
        _registry.gauge(name, value, **tags)


def timing(name: str, seconds: float, **tags: TagValue) -> None:
    if _enabled:
        _registry.timing(name, seconds, **tags)


def span(name: str, **tags: TagValue) -> Union[Span, _NullSpan]:
    """A timed region; the shared no-op span when collection is off."""
    if not _enabled:
        return NULL_SPAN
    return _registry.span(name, **tags)
