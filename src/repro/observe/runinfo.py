"""Run metadata capture: who produced this profile, and from what tree.

A profile is only comparable to another profile if you know *what ran*:
which commit, whether the tree was dirty, which interpreter and numpy, how
many cores.  :func:`run_info` gathers exactly that as flat ``run.*`` labels
— the :mod:`repro.store` profile store persists them as ``.rcf`` globals,
and the exporters in :mod:`.export` can stamp them onto telemetry snapshot
records so multi-run telemetry datasets stay attributable.

Everything here is best-effort and cheap: git questions are answered by one
subprocess call per repository path per process (cached), and a tree that
is not a git checkout simply yields no ``run.commit``.  Timestamps are
**caller-supplied** — this module never reads the wall clock, so tests and
deterministic pipelines stay reproducible.
"""

from __future__ import annotations

import hashlib
import json
import os
import subprocess
import sys
from typing import Any, Mapping, Optional

__all__ = ["config_fingerprint", "git_state", "run_info"]

#: cache of ``git_state`` answers per absolute repository path — run metadata
#: is captured once per save, but benchmark loops may save dozens of profiles
_git_cache: dict[str, tuple[Optional[str], Optional[bool]]] = {}


def git_state(repo: Optional[str] = None) -> tuple[Optional[str], Optional[bool]]:
    """``(commit, dirty)`` of the checkout containing ``repo`` (default cwd).

    ``(None, None)`` when the directory is not inside a git work tree or git
    is unavailable.  Answers are cached per path for the process lifetime;
    call :func:`reset_git_cache` if the checkout changes underneath you.
    """
    path = os.path.abspath(repo or os.getcwd())
    if path in _git_cache:
        return _git_cache[path]
    commit: Optional[str] = None
    dirty: Optional[bool] = None
    try:
        proc = subprocess.run(
            ["git", "-C", path, "rev-parse", "HEAD"],
            capture_output=True,
            text=True,
            timeout=10,
        )
        if proc.returncode == 0:
            commit = proc.stdout.strip() or None
        if commit:
            proc = subprocess.run(
                ["git", "-C", path, "status", "--porcelain"],
                capture_output=True,
                text=True,
                timeout=10,
            )
            if proc.returncode == 0:
                dirty = bool(proc.stdout.strip())
    except (OSError, subprocess.SubprocessError):
        commit, dirty = None, None
    _git_cache[path] = (commit, dirty)
    return commit, dirty


def reset_git_cache() -> None:
    """Forget cached git answers (tests, long-lived daemons)."""
    _git_cache.clear()


def config_fingerprint(config: Optional[Mapping[str, Any]]) -> Optional[str]:
    """Short stable hash of a configuration mapping (12 hex chars).

    Canonical JSON (sorted keys, no whitespace) hashed with sha256, so the
    fingerprint is insensitive to dict ordering and stable across processes.
    Non-JSON-able values are folded in via ``repr``.  ``None`` in, ``None``
    out — "no config" is a valid profile key.
    """
    if config is None:
        return None
    canonical = json.dumps(
        dict(config), sort_keys=True, separators=(",", ":"), default=repr
    )
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:12]


def run_info(
    repo: Optional[str] = None,
    workload: Optional[str] = None,
    config: Optional[Mapping[str, Any]] = None,
    timestamp: Optional[float] = None,
    extra: Optional[Mapping[str, Any]] = None,
) -> dict[str, Any]:
    """Flat ``run.*`` metadata labels describing the current run.

    Always present: ``run.python``, ``run.cpu_count``, and ``run.numpy``
    (when numpy imports).  Present when derivable/supplied: ``run.commit``
    and ``run.dirty`` (git state of ``repo``, default cwd),
    ``run.workload``, ``run.config_hash`` (fingerprint of ``config``), and
    ``run.timestamp`` (caller-supplied epoch seconds — never read from the
    clock here).  ``extra`` entries are added under ``run.<key>``.
    """
    info: dict[str, Any] = {
        "run.python": sys.version.split()[0],
        "run.cpu_count": os.cpu_count() or 1,
    }
    try:
        import numpy

        info["run.numpy"] = numpy.__version__
    except ImportError:  # pragma: no cover - numpy is a hard dep today
        pass
    commit, dirty = git_state(repo)
    if commit is not None:
        info["run.commit"] = commit
    if dirty is not None:
        info["run.dirty"] = dirty
    if workload is not None:
        info["run.workload"] = workload
    fingerprint = config_fingerprint(config)
    if fingerprint is not None:
        info["run.config_hash"] = fingerprint
    if timestamp is not None:
        info["run.timestamp"] = float(timestamp)
    if extra:
        for key, value in extra.items():
            info[f"run.{key}"] = value
    return info
