"""High-level convenience entry points.

The full runtime (``Caliper`` + channels + services) is flexible but takes
a few lines to set up; :func:`profiling` wraps the common case — profile a
block of code with one aggregation scheme and query the result — into a
context manager::

    import repro

    with repro.profiling("AGGREGATE count, sum(time.duration) GROUP BY function") as prof:
        with prof.region("function", "solve"):
            ...

    print(prof.result.to_table())
    prof.query("AGGREGATE sum(sum#time.duration)")   # further analysis
"""

from __future__ import annotations

from typing import Any, Mapping, Optional

from .common.errors import ReproError
from .common.record import Record
from .query.engine import QueryEngine, QueryResult
from .runtime.clock import Clock
from .runtime.instrumentation import Caliper

__all__ = ["ProfilingSession", "profiling"]


class ProfilingSession:
    """One-shot profiling of a code block (see :func:`profiling`)."""

    def __init__(
        self,
        scheme: str = "AGGREGATE count, sum(time.duration) GROUP BY function",
        mode: str = "event",
        sampling_period: float = 0.01,
        clock: Optional[Clock] = None,
        channel_config: Optional[Mapping[str, Any]] = None,
    ) -> None:
        self.caliper = Caliper(clock=clock)
        if channel_config is None:
            if mode == "event":
                services = ["event", "timer", "aggregate"]
                channel_config = {}
            elif mode == "sample":
                services = ["sampler", "timer", "aggregate"]
                channel_config = {"sampler.period": sampling_period}
            else:
                raise ReproError(f"unknown profiling mode {mode!r} ('event' or 'sample')")
            channel_config = dict(channel_config)
            channel_config.update(
                {
                    "services": services,
                    "aggregate.config": scheme,
                    "aggregate.rename_count": False,
                }
            )
        self.channel = self.caliper.create_channel("profiling-session", channel_config)
        self._records: Optional[list[Record]] = None

    # -- annotation passthroughs ----------------------------------------------

    def region(self, key: str, value):
        """``with prof.region("function", "solve"): ...``"""
        return self.caliper.region(key, value)

    def begin(self, key: str, value) -> None:
        self.caliper.begin(key, value)

    def end(self, key: str) -> None:
        self.caliper.end(key)

    def set(self, key: str, value) -> None:
        self.caliper.set(key, value)

    def profile(self, *args, **kwargs):
        """Decorator passthrough (``@prof.profile``)."""
        return self.caliper.profile(*args, **kwargs)

    # -- lifecycle ----------------------------------------------------------------

    def __enter__(self) -> "ProfilingSession":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def close(self) -> None:
        if self._records is None:
            self._records = self.channel.finish()

    # -- results ----------------------------------------------------------------------

    @property
    def records(self) -> list[Record]:
        """The flushed profile records (closing the session if needed)."""
        self.close()
        assert self._records is not None
        return self._records

    @property
    def result(self) -> QueryResult:
        """The profile as a query result (table-printable)."""
        records = self.records
        preferred = sorted({lbl for r in records for lbl in r.labels()})
        return QueryResult(list(records), preferred)

    def query(self, text: str) -> QueryResult:
        """Run a CalQL query over the collected profile."""
        return QueryEngine(text).run(self.records)


def profiling(
    scheme: str = "AGGREGATE count, sum(time.duration) GROUP BY function",
    **kwargs,
) -> ProfilingSession:
    """Profile a code block with one aggregation scheme.

    Keyword arguments are forwarded to :class:`ProfilingSession`
    (``mode="sample"``, ``sampling_period``, ``clock``, ``channel_config``).
    """
    return ProfilingSession(scheme, **kwargs)
