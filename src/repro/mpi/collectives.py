"""Collective operations built on the simulator's point-to-point layer.

All collectives are generator helpers used with ``yield from`` inside rank
programs.  The reduction is the k-ary tree of the paper's Section IV-C:
"leaf" processes send their local results to their parent, where partial
results are aggregated again, level by level, up to the root — giving the
logarithmic scaling Figure 4 demonstrates.
"""

from __future__ import annotations

from typing import Any, Callable, Generator, Optional, Union

from ..common.util import children_of, parent_of
from .network import default_payload_size
from .simulator import Comm

__all__ = ["bcast", "tree_reduce", "allreduce", "gather", "tree_depth"]

_TAG_BCAST = 101
_TAG_REDUCE = 102
_TAG_GATHER = 103

Sizer = Optional[Union[int, Callable[[Any], int]]]


def _size_of(value: Any, nbytes: Sizer) -> Optional[int]:
    if nbytes is None:
        return None
    if callable(nbytes):
        return int(nbytes(value))
    return int(nbytes)


def tree_depth(size: int, fanout: int = 2) -> int:
    """Depth of the k-ary reduction tree over ``size`` ranks.

    The deepest node is the last rank; we walk its parent chain to 0.
    """
    if size <= 1:
        return 0
    depth = 0
    node = size - 1
    while node > 0:
        node = (node - 1) // fanout
        depth += 1
    return depth


def bcast(comm: Comm, value: Any = None, root: int = 0, nbytes: Optional[int] = None) -> Generator:
    """Binomial-tree broadcast; returns the broadcast value on every rank."""
    if comm.size == 1:
        return value
    # Translate ranks so the root is virtual rank 0 (MPICH-style binomial).
    vrank = (comm.rank - root) % comm.size
    mask = 1
    while mask < comm.size:
        if vrank & mask:
            src = (comm.rank - mask + comm.size) % comm.size
            value = yield from comm.recv(src=src, tag=_TAG_BCAST)
            break
        mask <<= 1
    mask >>= 1
    while mask > 0:
        if vrank + mask < comm.size:
            dst = (comm.rank + mask) % comm.size
            yield from comm.send(dst, value, tag=_TAG_BCAST, nbytes=_size_of(value, nbytes))
        mask >>= 1
    return value


def tree_reduce(
    comm: Comm,
    value: Any,
    combine: Callable[[Any, Any], Any],
    root: int = 0,
    fanout: int = 2,
    nbytes: Sizer = None,
    combine_cost: Union[float, Callable[[Any, Any], float]] = 0.0,
) -> Generator:
    """K-ary-tree reduction; the root returns the combined value, others None.

    ``combine(acc, incoming) -> acc`` merges a child's partial result;
    ``combine_cost`` charges virtual compute time per merge (a constant or a
    function of the two operands).  Children are merged in increasing rank
    order, so results are deterministic for non-commutative combines.
    """
    if root != 0:
        raise NotImplementedError("tree_reduce currently requires root=0")
    acc = value
    for child in children_of(comm.rank, comm.size, fanout):
        incoming = yield from comm.recv(src=child, tag=_TAG_REDUCE)
        cost = combine_cost(acc, incoming) if callable(combine_cost) else combine_cost
        if cost:
            yield from comm.compute(cost)
        acc = combine(acc, incoming)
    if comm.rank != 0:
        parent = parent_of(comm.rank, fanout)
        yield from comm.send(parent, acc, tag=_TAG_REDUCE, nbytes=_size_of(acc, nbytes))
        return None
    return acc


def allreduce(
    comm: Comm,
    value: Any,
    combine: Callable[[Any, Any], Any],
    fanout: int = 2,
    nbytes: Sizer = None,
    combine_cost: Union[float, Callable[[Any, Any], float]] = 0.0,
) -> Generator:
    """Reduce-then-broadcast allreduce; every rank returns the combined value."""
    reduced = yield from tree_reduce(
        comm, value, combine, 0, fanout, nbytes, combine_cost
    )
    size = _size_of(reduced, nbytes) if comm.rank == 0 else None
    result = yield from bcast(comm, reduced, 0, size)
    return result


def gather(comm: Comm, value: Any, root: int = 0, nbytes: Optional[int] = None) -> Generator:
    """Gather values to ``root``; returns the rank-ordered list there, None elsewhere.

    Implemented as a tree gather (lists concatenated up the tree) so it
    stays logarithmic in depth like the reduction.
    """
    if root != 0:
        raise NotImplementedError("gather currently requires root=0")

    def merge(acc: list, incoming: list) -> list:
        acc.extend(incoming)
        return acc

    gathered = yield from tree_reduce(
        comm,
        [(comm.rank, value)],
        merge,
        root=0,
        nbytes=(lambda pairs: sum(default_payload_size(v) for _, v in pairs))
        if nbytes is None
        else (lambda pairs: nbytes * len(pairs)),
    )
    if comm.rank != 0:
        return None
    assert gathered is not None
    gathered.sort(key=lambda pair: pair[0])
    return [v for _, v in gathered]
