"""Network performance models for the MPI simulator.

The simulator charges virtual time for communication according to a
pluggable model.  :class:`LatencyBandwidthNetwork` is the classic
alpha-beta (LogGP-flavoured) model: a message of ``n`` bytes from src to dst
costs ``alpha + n / bandwidth`` end to end, with a per-message CPU
``overhead`` on each side.  Parameters default to numbers representative of
a modern fat-tree cluster interconnect (the paper's Quartz system uses
Intel OmniPath: ~1 us latency, ~12 GB/s effective bandwidth); absolute
values only shift curves, the logarithmic shape of tree reductions comes
from the structure.
"""

from __future__ import annotations

import pickle
from typing import Any

__all__ = [
    "NetworkModel",
    "LatencyBandwidthNetwork",
    "ZeroCostNetwork",
    "default_payload_size",
]


def default_payload_size(payload: Any) -> int:
    """Estimate a payload's wire size in bytes.

    Objects advertising ``wire_size()`` are asked directly (the aggregation
    database does, cheaply); otherwise we measure the pickle, falling back
    to a flat constant for unpicklable objects (closures etc.).
    """
    hook = getattr(payload, "wire_size", None)
    if callable(hook):
        return int(hook())
    try:
        return len(pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL))
    except Exception:
        return 64


class NetworkModel:
    """Interface: communication cost accounting."""

    def send_overhead(self, nbytes: int) -> float:
        """CPU seconds the sender is busy injecting the message."""
        raise NotImplementedError

    def recv_overhead(self, nbytes: int) -> float:
        """CPU seconds the receiver is busy draining the message."""
        raise NotImplementedError

    def transit_time(self, src: int, dst: int, nbytes: int) -> float:
        """Seconds between send completion and earliest receive completion."""
        raise NotImplementedError


class LatencyBandwidthNetwork(NetworkModel):
    """alpha + n/beta network with fixed per-message CPU overheads."""

    def __init__(
        self,
        latency: float = 1.5e-6,
        bandwidth: float = 12.0e9,
        overhead: float = 0.4e-6,
    ) -> None:
        if latency < 0 or bandwidth <= 0 or overhead < 0:
            raise ValueError(
                f"invalid network parameters: latency={latency}, "
                f"bandwidth={bandwidth}, overhead={overhead}"
            )
        self.latency = latency
        self.bandwidth = bandwidth
        self.overhead = overhead

    def send_overhead(self, nbytes: int) -> float:
        return self.overhead

    def recv_overhead(self, nbytes: int) -> float:
        return self.overhead

    def transit_time(self, src: int, dst: int, nbytes: int) -> float:
        if src == dst:
            return 0.0
        return self.latency + nbytes / self.bandwidth

    def __repr__(self) -> str:
        return (
            f"LatencyBandwidthNetwork(latency={self.latency}, "
            f"bandwidth={self.bandwidth}, overhead={self.overhead})"
        )


class ZeroCostNetwork(NetworkModel):
    """Free communication; isolates algorithmic structure in tests."""

    def send_overhead(self, nbytes: int) -> float:
        return 0.0

    def recv_overhead(self, nbytes: int) -> float:
        return 0.0

    def transit_time(self, src: int, dst: int, nbytes: int) -> float:
        return 0.0
