"""MPI interception for simulated rank programs.

The paper obtains ``mpi.function`` and ``mpi.rank`` annotations from
Caliper's MPI wrapper (the PMPI profiling interface).  The equivalent here
wraps a simulator :class:`~repro.mpi.simulator.Comm`: every communication
operation is bracketed with ``mpi.function`` begin/end annotations on a
per-rank runtime instance, and the rank's runtime clock *is* the
simulator's virtual clock — so ``time.duration`` in snapshots measures
simulated communication/computation time, including time spent blocked in
a receive or barrier.

Typical use inside a rank program::

    def program(comm):
        prof = RankProfiler(comm, aggregate_config=
            "AGGREGATE count, sum(time.duration) GROUP BY mpi.function, function")
        icomm = prof.comm                      # instrumented communicator
        with prof.cali.region("function", "exchange"):
            yield from icomm.send(1, data)
            payload = yield from icomm.recv(src=1)
        records = prof.finish()
        return records

Per-rank record lists can then be merged/queried off-line, or combined with
:func:`repro.aggregate.combine_partials` — the cross-process workflow of the
paper on top of the simulated cluster.
"""

from __future__ import annotations

from typing import Any, Callable, Generator, Mapping, Optional

from ..runtime.clock import Clock
from ..runtime.instrumentation import Caliper
from .simulator import ANY_SOURCE, Comm

__all__ = ["CommClock", "InstrumentedComm", "RankProfiler"]


class CommClock(Clock):
    """A runtime clock that reads the simulator's per-rank virtual time."""

    __slots__ = ("_comm",)

    def __init__(self, comm: Comm) -> None:
        self._comm = comm

    def now(self) -> float:
        return self._comm.now()


class InstrumentedComm:
    """Wraps a :class:`Comm`, annotating every operation as ``mpi.function``.

    All methods mirror the communicator's generator API; use ``yield from``
    exactly as with the raw object.  Operation names follow the MPI spelling
    the paper's figures use (``MPI_Send``, ``MPI_Barrier``, ...).
    """

    __slots__ = ("_comm", "_cali")

    def __init__(self, comm: Comm, caliper: Caliper) -> None:
        self._comm = comm
        self._cali = caliper

    # -- plain accessors -----------------------------------------------------

    @property
    def rank(self) -> int:
        return self._comm.rank

    @property
    def size(self) -> int:
        return self._comm.size

    def now(self) -> float:
        return self._comm.now()

    @property
    def raw(self) -> Comm:
        """The unwrapped communicator."""
        return self._comm

    # -- instrumented operations -------------------------------------------------

    def _wrap(self, name: str, gen: Generator) -> Generator:
        self._cali.begin("mpi.function", name)
        try:
            result = yield from gen
        finally:
            self._cali.end("mpi.function")
        return result

    def compute(self, seconds: float) -> Generator:
        # compute is application work, not MPI: no annotation.
        return self._comm.compute(seconds)

    def send(self, dst: int, payload: Any = None, tag: int = 0,
             nbytes: Optional[int] = None) -> Generator:
        return self._wrap("MPI_Send", self._comm.send(dst, payload, tag, nbytes))

    def recv(self, src: int = ANY_SOURCE, tag: int = 0) -> Generator:
        return self._wrap("MPI_Recv", self._comm.recv(src, tag))

    def barrier(self) -> Generator:
        return self._wrap("MPI_Barrier", self._comm.barrier())

    def bcast(self, value: Any = None, root: int = 0,
              nbytes: Optional[int] = None) -> Generator:
        return self._wrap("MPI_Bcast", self._comm.bcast(value, root, nbytes))

    def reduce(self, value: Any, combine: Callable[[Any, Any], Any], **kwargs) -> Generator:
        return self._wrap("MPI_Reduce", self._comm.reduce(value, combine, **kwargs))

    def allreduce(self, value: Any, combine: Callable[[Any, Any], Any], **kwargs) -> Generator:
        return self._wrap("MPI_Allreduce", self._comm.allreduce(value, combine, **kwargs))

    def gather(self, value: Any, root: int = 0, nbytes: Optional[int] = None) -> Generator:
        return self._wrap("MPI_Gather", self._comm.gather(value, root, nbytes))


class RankProfiler:
    """Per-rank profiling bundle: runtime + channel + instrumented comm.

    Creates a :class:`Caliper` on the rank's virtual clock, one channel with
    the given configuration (default: event-mode aggregation over
    ``mpi.function`` and ``function``), sets ``mpi.rank``, and exposes the
    instrumented communicator.
    """

    def __init__(
        self,
        comm: Comm,
        aggregate_config: Optional[str] = None,
        channel_config: Optional[Mapping[str, Any]] = None,
    ) -> None:
        self.cali = Caliper(clock=CommClock(comm))
        if channel_config is None:
            channel_config = {
                "services": ["event", "timer", "aggregate"],
                "aggregate.config": aggregate_config
                or (
                    "AGGREGATE count, sum(time.duration) "
                    "GROUP BY mpi.function, function, mpi.rank"
                ),
            }
        elif aggregate_config is not None:
            raise ValueError("pass either aggregate_config or channel_config, not both")
        self.channel = self.cali.create_channel("rank-profile", channel_config)
        self.channel.set_global("mpi.world.size", comm.size)
        self.cali.set("mpi.rank", comm.rank)
        self.comm = InstrumentedComm(comm, self.cali)

    def finish(self):
        """Flush the channel; returns this rank's output records."""
        return self.channel.finish()
