"""Discrete-event MPI simulator: the cluster substrate for cross-process
aggregation experiments."""

from .collectives import allreduce, bcast, gather, tree_depth, tree_reduce
from .instrument import CommClock, InstrumentedComm, RankProfiler
from .network import (
    LatencyBandwidthNetwork,
    NetworkModel,
    ZeroCostNetwork,
    default_payload_size,
)
from .simulator import ANY_SOURCE, Comm, RankProgram, SimResult, SimStats, SimWorld

__all__ = [
    "ANY_SOURCE",
    "Comm",
    "RankProgram",
    "SimResult",
    "SimStats",
    "SimWorld",
    "NetworkModel",
    "LatencyBandwidthNetwork",
    "ZeroCostNetwork",
    "default_payload_size",
    "bcast",
    "tree_reduce",
    "allreduce",
    "gather",
    "tree_depth",
    "CommClock",
    "InstrumentedComm",
    "RankProfiler",
]
