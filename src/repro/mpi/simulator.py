"""Discrete-event MPI simulator.

Substitutes for the real MPI cluster the paper's scalability experiment
(Fig. 4) ran on.  Rank programs are *generator coroutines*: plain Python
generators that ``yield`` communication/compute operations to the engine
and receive results back::

    def program(comm: Comm):
        yield from comm.compute(0.5)                 # 0.5 s of local work
        if comm.rank == 0:
            payload = yield from comm.recv(src=1)
        else:
            yield from comm.send(0, "hello")
        return comm.now()

    world = SimWorld(2)
    result = world.run(program)
    result.returns, result.elapsed, result.stats.messages

The engine keeps a virtual clock per rank, matches sends to receives
through per-(src, dst, tag) FIFO mailboxes, charges network costs through a
:class:`NetworkModel`, and detects deadlock (all live ranks blocked).
Generators scale to thousands of ranks with negligible memory — this is why
the Fig. 4 reproduction can sweep to 4096 simulated processes on a laptop.

Local computation inside a rank program runs as ordinary Python *between*
yields; programs either charge modelled time (``comm.compute(dt)``) or
measure their own real execution time and charge that (what the parallel
query application does for its local aggregation phase, making the "read +
process local input" line of Fig. 4 a real measurement).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Any, Callable, Generator, Iterator, Optional, Sequence, Union

from ..common.errors import CommunicatorError, DeadlockError, SimMPIError
from .network import LatencyBandwidthNetwork, NetworkModel, default_payload_size

__all__ = ["ANY_SOURCE", "Comm", "SimWorld", "SimResult", "SimStats", "RankProgram"]

#: wildcard source for :meth:`Comm.recv`
ANY_SOURCE = -1

RankProgram = Callable[..., Generator]


@dataclass
class SimStats:
    """Aggregate traffic statistics for one simulation run."""

    messages: int = 0
    bytes: int = 0
    barriers: int = 0
    max_mailbox_depth: int = 0


@dataclass
class SimResult:
    """Outcome of :meth:`SimWorld.run`."""

    #: per-rank return values of the rank programs
    returns: list
    #: per-rank final virtual times
    times: list[float]
    stats: SimStats = field(default_factory=SimStats)

    @property
    def elapsed(self) -> float:
        """Virtual wall-clock of the run (max over ranks)."""
        return max(self.times) if self.times else 0.0


class _Message:
    __slots__ = ("payload", "arrival", "nbytes", "src")

    def __init__(self, payload: Any, arrival: float, nbytes: int, src: int) -> None:
        self.payload = payload
        self.arrival = arrival
        self.nbytes = nbytes
        self.src = src


class Comm:
    """Per-rank communicator handle passed to rank programs.

    All communication methods are generators — call them with ``yield from``.
    ``rank``, ``size``, and ``now()`` are plain accessors.
    """

    __slots__ = ("rank", "size", "_world")

    def __init__(self, rank: int, size: int, world: "SimWorld") -> None:
        self.rank = rank
        self.size = size
        self._world = world

    def now(self) -> float:
        """This rank's current virtual time."""
        return self._world._times[self.rank]

    # -- primitive operations ------------------------------------------------

    def compute(self, seconds: float) -> Generator:
        """Charge ``seconds`` of local computation to this rank's clock."""
        if seconds < 0:
            raise CommunicatorError(f"negative compute time {seconds}")
        yield ("compute", seconds)

    def send(
        self, dst: int, payload: Any = None, tag: int = 0, nbytes: Optional[int] = None
    ) -> Generator:
        """Send ``payload`` to rank ``dst`` (asynchronous, buffered)."""
        if not (0 <= dst < self.size):
            raise CommunicatorError(f"send to invalid rank {dst} (size {self.size})")
        if dst == self.rank:
            raise CommunicatorError("send to self is not supported; restructure the program")
        size = nbytes if nbytes is not None else default_payload_size(payload)
        yield ("send", dst, tag, payload, size)

    def recv(self, src: int = ANY_SOURCE, tag: int = 0) -> Generator:
        """Receive the next matching message; returns its payload."""
        if src != ANY_SOURCE and not (0 <= src < self.size):
            raise CommunicatorError(f"recv from invalid rank {src} (size {self.size})")
        payload = yield ("recv", src, tag)
        return payload

    def barrier(self) -> Generator:
        """Block until every rank reaches the barrier."""
        yield ("barrier",)

    # -- collectives (see repro.mpi.collectives for the algorithms) ---------------

    def bcast(self, value: Any = None, root: int = 0, nbytes: Optional[int] = None):
        from .collectives import bcast

        return bcast(self, value, root, nbytes)

    def reduce(
        self,
        value: Any,
        combine: Callable[[Any, Any], Any],
        root: int = 0,
        fanout: int = 2,
        nbytes: Optional[Union[int, Callable[[Any], int]]] = None,
        combine_cost: Union[float, Callable[[Any, Any], float]] = 0.0,
    ):
        from .collectives import tree_reduce

        return tree_reduce(self, value, combine, root, fanout, nbytes, combine_cost)

    def allreduce(self, value: Any, combine: Callable[[Any, Any], Any], **kwargs):
        from .collectives import allreduce

        return allreduce(self, value, combine, **kwargs)

    def gather(self, value: Any, root: int = 0, nbytes: Optional[int] = None):
        from .collectives import gather

        return gather(self, value, root, nbytes)


class SimWorld:
    """One simulated MPI world: N ranks over a network model."""

    def __init__(
        self,
        size: int,
        network: Optional[NetworkModel] = None,
        barrier_latency_factor: float = 1.0,
    ) -> None:
        if size < 1:
            raise SimMPIError(f"world size must be >= 1, got {size}")
        self.size = size
        self.network = network if network is not None else LatencyBandwidthNetwork()
        self.barrier_latency_factor = barrier_latency_factor
        self.stats = SimStats()
        # run state (rebuilt per run)
        self._times: list[float] = []

    # -- public API -----------------------------------------------------------

    def run(
        self,
        program: RankProgram,
        args: Optional[Sequence[tuple]] = None,
    ) -> SimResult:
        """Execute ``program`` on every rank until completion.

        ``args`` optionally gives per-rank extra positional arguments:
        ``program(comm, *args[rank])``.
        """
        self.stats = SimStats()
        self._times = [0.0] * self.size
        comms = [Comm(r, self.size, self) for r in range(self.size)]
        gens: list[Optional[Generator]] = []
        for r in range(self.size):
            extra = tuple(args[r]) if args is not None else ()
            gen = program(comms[r], *extra)
            if not isinstance(gen, Iterator):
                raise SimMPIError(
                    "rank program must be a generator function (use 'yield from comm....')"
                )
            gens.append(gen)

        returns: list[Any] = [None] * self.size
        # mailboxes[(src, dst, tag)] -> FIFO of _Message
        mailboxes: dict[tuple[int, int, int], list[_Message]] = {}
        # blocked_recv[dst] = (src, tag) for ranks blocked in recv
        blocked_recv: dict[int, tuple[int, int]] = {}
        barrier_waiting: set[int] = set()
        live = self.size

        # runnable heap of (time, seq, rank, send_value)
        heap: list[tuple[float, int, int, Any]] = []
        seq = 0
        for r in range(self.size):
            heap.append((0.0, seq, r, None))
            seq += 1
        heapq.heapify(heap)

        def schedule(rank: int, at: float, value: Any = None) -> None:
            nonlocal seq
            self._times[rank] = at
            heapq.heappush(heap, (at, seq, rank, value))
            seq += 1

        def find_match(dst: int, src: int, tag: int) -> Optional[tuple[tuple, _Message]]:
            if src != ANY_SOURCE:
                queue = mailboxes.get((src, dst, tag))
                if queue:
                    return (src, dst, tag), queue[0]
                return None
            best: Optional[tuple[tuple, _Message]] = None
            for key, queue in mailboxes.items():
                if key[1] == dst and key[2] == tag and queue:
                    msg = queue[0]
                    if best is None or (msg.arrival, key[0]) < (best[1].arrival, best[0][0]):
                        best = (key, msg)
            return best

        while live > 0:
            if not heap:
                blocked: dict[int, str] = {}
                for r, (src, tag) in blocked_recv.items():
                    src_text = "ANY" if src == ANY_SOURCE else str(src)
                    blocked[r] = f"recv(src={src_text}, tag={tag})"
                for r in barrier_waiting:
                    blocked[r] = "barrier"
                raise DeadlockError(blocked)

            t, _, rank, send_value = heapq.heappop(heap)
            self._times[rank] = t
            gen = gens[rank]
            assert gen is not None

            try:
                op = gen.send(send_value)
            except StopIteration as stop:
                returns[rank] = stop.value
                gens[rank] = None
                live -= 1
                continue

            kind = op[0]
            if kind == "compute":
                schedule(rank, t + op[1])
            elif kind == "send":
                _, dst, tag, payload, nbytes = op
                send_done = t + self.network.send_overhead(nbytes)
                arrival = send_done + self.network.transit_time(rank, dst, nbytes)
                msg = _Message(payload, arrival, nbytes, rank)
                key = (rank, dst, tag)
                queue = mailboxes.setdefault(key, [])
                queue.append(msg)
                self.stats.messages += 1
                self.stats.bytes += nbytes
                self.stats.max_mailbox_depth = max(self.stats.max_mailbox_depth, len(queue))
                schedule(rank, send_done)
                # Wake a matching blocked receiver.
                want = blocked_recv.get(dst)
                if want is not None and (want[0] in (rank, ANY_SOURCE)) and want[1] == tag:
                    del blocked_recv[dst]
                    queue.pop(0)
                    if not queue:
                        del mailboxes[key]
                    done = max(self._times[dst], arrival) + self.network.recv_overhead(nbytes)
                    schedule(dst, done, payload)
            elif kind == "recv":
                _, src, tag = op
                match = find_match(rank, src, tag)
                if match is None:
                    blocked_recv[rank] = (src, tag)
                else:
                    key, msg = match
                    queue = mailboxes[key]
                    queue.pop(0)
                    if not queue:
                        del mailboxes[key]
                    done = max(t, msg.arrival) + self.network.recv_overhead(msg.nbytes)
                    schedule(rank, done, msg.payload)
            elif kind == "barrier":
                barrier_waiting.add(rank)
                if len(barrier_waiting) == self.size:
                    import math

                    release = max(self._times[r] for r in barrier_waiting)
                    cost = (
                        self.barrier_latency_factor
                        * self.network.transit_time(0, 1, 0)
                        * max(1, math.ceil(math.log2(self.size)))
                        if self.size > 1
                        else 0.0
                    )
                    release += cost
                    self.stats.barriers += 1
                    waiting = sorted(barrier_waiting)
                    barrier_waiting.clear()
                    for r in waiting:
                        schedule(r, release)
            else:
                raise SimMPIError(f"rank {rank} yielded unknown operation {op!r}")

        # Any messages never received are a program bug worth surfacing.
        leftover = sum(len(q) for q in mailboxes.values())
        if leftover:
            raise SimMPIError(f"{leftover} message(s) were sent but never received")

        return SimResult(returns=returns, times=list(self._times), stats=self.stats)
