"""AMR behaviour model for the CleverLeaf simulator.

Models two things the case study's figures depend on:

* **level time shares over timesteps** (Fig. 8): in the triple-point
  problem, the shock generates growing vorticity, so the AMR algorithm
  covers an expanding region with fine patches — level 0 stays constant,
  level 1 grows slightly, level 2 grows strongly over the run;
* **per-rank work distribution** (Figs. 7 & 9): SAMRAI's patch clustering
  gives each rank a mildly uneven share of every level, with occasional
  outliers — the paper calls out rank 8 (more level-1 than level-0 time)
  and rank 7 (less level-0 than most).

Everything is precomputed into numpy arrays; the instrumentation loop just
reads them.
"""

from __future__ import annotations

import numpy as np

from .config import CleverLeafConfig

__all__ = ["AMRModel"]


class AMRModel:
    """Deterministic AMR work model derived from a config."""

    def __init__(self, config: CleverLeafConfig) -> None:
        self.config = config
        self.rng = np.random.default_rng(config.seed)
        #: (timesteps, levels): *absolute* work weight per level per step.
        #: Level 0 is constant (it always covers the full coarse grid);
        #: the fine levels grow as the vortex develops, so the per-step
        #: total grows over the run — exactly the paper's Fig. 8 shape.
        self.level_weight = self._build_level_weights()
        #: (timesteps, levels): per-step share view (each row sums to 1)
        self.level_share = self.level_weight / self.level_weight.sum(
            axis=1, keepdims=True
        )
        #: (ranks, levels): each rank's share of a level's work; columns sum to 1
        self.rank_share = self._build_rank_shares()

    # -- level evolution --------------------------------------------------------

    def _build_level_weights(self) -> np.ndarray:
        cfg = self.config
        steps = np.arange(cfg.timesteps, dtype=float)
        progress = steps / max(1, cfg.timesteps - 1) if cfg.timesteps > 1 else steps
        weights = np.zeros((cfg.timesteps, cfg.levels))
        # Level 0 covers the full coarse grid: constant work.
        weights[:, 0] = 1.0
        if cfg.levels > 1:
            # Level 1 starts below level 0 and grows mildly.
            weights[:, 1] = 0.7 * (1.0 + cfg.level1_growth * progress)
        if cfg.levels > 2:
            # Level 2 starts small and grows strongly (super-linear: the
            # vortex area expands as the shock interaction develops).
            weights[:, 2] = 0.35 * (1.0 + cfg.level2_growth * progress**1.6)
        for level in range(3, cfg.levels):
            weights[:, level] = 0.15 * (1.0 + cfg.level2_growth * progress**2.0)
        return weights

    # -- rank distribution ----------------------------------------------------------

    def _build_rank_shares(self) -> np.ndarray:
        cfg = self.config
        noise = self.rng.normal(0.0, cfg.imbalance, size=(cfg.ranks, cfg.levels))
        shares = np.clip(1.0 + noise, 0.5, 1.5)
        if cfg.ranks > 1:
            a1 = cfg.anomalous_level1_rank
            a0 = cfg.anomalous_level0_rank
            if 0 <= a1 < cfg.ranks and cfg.levels > 1:
                # Rank 8 (paper Fig. 9): clearly more level-1 work than level-0.
                shares[a1, 1] *= 1.8
                shares[a1, 0] *= 0.8
            if 0 <= a0 < cfg.ranks and a0 != a1:
                # Rank 7: noticeably less level-0 work than most ranks.
                shares[a0, 0] *= 0.6
        return shares / shares.sum(axis=0, keepdims=True)

    # -- derived views -----------------------------------------------------------

    def level_time_fraction(self, timestep: int, level: int) -> float:
        """Share of kernel time spent on ``level`` at ``timestep``."""
        return float(self.level_share[timestep, level])

    def rank_level_work(self) -> np.ndarray:
        """(ranks, timesteps, levels): per-rank absolute work weights.

        ``rank_share[r, l] * level_weight[t, l]`` — summing over ranks gives
        the level's absolute weight at each step, so level-0 time stays
        constant over the run while the fine levels grow.
        """
        return self.rank_share[:, None, :] * self.level_weight[None, :, :]
