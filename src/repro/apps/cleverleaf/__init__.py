"""CleverLeaf workload simulator: the case-study application (Section VI)."""

from .amr import AMRModel
from .config import KERNELS, MPI_FUNCTIONS, CleverLeafConfig
from .plan import WorkloadPlan
from .simulation import RankRun, SimulationOutput, run_rank, run_simulation
from .schemes import (
    SCHEME_A,
    SCHEME_B,
    SCHEME_C,
    channel_config_aggregate,
    channel_config_sampling,
    channel_config_trace,
)

__all__ = [
    "AMRModel",
    "CleverLeafConfig",
    "KERNELS",
    "MPI_FUNCTIONS",
    "WorkloadPlan",
    "RankRun",
    "SimulationOutput",
    "run_rank",
    "run_simulation",
    "SCHEME_A",
    "SCHEME_B",
    "SCHEME_C",
    "channel_config_aggregate",
    "channel_config_sampling",
    "channel_config_trace",
]
