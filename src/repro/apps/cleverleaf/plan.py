"""Precomputed workload plan for the CleverLeaf simulator.

Turns a :class:`CleverLeafConfig` into dense numpy cost tables the
instrumented run walks through:

``kernel_time[rank, step, level, kernel]``
    Virtual seconds in each annotated kernel.  Kernel weights follow
    :data:`~.config.KERNELS` (calc-dt dominant); level shares follow the
    :class:`~.amr.AMRModel`; per-rank shares carry the configured imbalance
    with kernel-specific damping (advec-mom is kept balanced and the two
    most expensive kernels only mildly imbalanced, so that — as the paper
    observes in Fig. 7 — the top-two kernels account for less than half of
    the total computational imbalance).

``unannotated_time[rank, step]``
    Compute time outside annotated kernels (SAMRAI bookkeeping, halo
    packing, regridding): the paper's Fig. 5 finds most samples land here.

``mpi_time[rank, step, fn]``
    Time per MPI function.  Base weights follow :data:`~.config.MPI_FUNCTIONS`
    (Barrier >> Allreduce >> p2p, Fig. 6); on top, each step's barrier
    absorbs the *wait* caused by compute imbalance — the mechanism that ties
    Fig. 7's computation and MPI distributions together.

``init_time[rank]`` / ``io_time[rank]``
    The annotated initialization and I/O phases.
"""

from __future__ import annotations

import numpy as np

from .amr import AMRModel
from .config import KERNELS, MPI_FUNCTIONS, CleverLeafConfig

__all__ = ["WorkloadPlan"]

#: kernels whose cross-rank imbalance is damped (paper: advec-mom shows
#: almost none; the top-2 kernels only account for < half of the total)
_KERNEL_IMBALANCE_EXPONENT = {
    "advec-mom": 0.0,
    "calc-dt": 0.45,
    "advec-cell": 0.45,
}


class WorkloadPlan:
    """All virtual-time costs of one simulated CleverLeaf run."""

    def __init__(self, config: CleverLeafConfig) -> None:
        self.config = config
        self.amr = AMRModel(config)
        self.kernel_names = [name for name, _ in KERNELS]
        self.mpi_names = [name for name, _ in MPI_FUNCTIONS]
        rng = np.random.default_rng(config.seed + 1)

        cfg = config
        steps = cfg.timesteps
        ranks = cfg.ranks
        n_kernels = len(KERNELS)
        n_mpi = len(MPI_FUNCTIONS)

        # -- budget split ------------------------------------------------------
        total = cfg.target_runtime
        kernel_budget = total * cfg.kernel_fraction
        unannotated_budget = total * cfg.unannotated_fraction
        mpi_budget = total * cfg.mpi_fraction
        phase_budget = total * cfg.phases_fraction

        # -- kernel times -------------------------------------------------------
        kernel_weights = np.array([w for _, w in KERNELS])
        kernel_weights = kernel_weights / kernel_weights.sum()

        # AMR level structure: (ranks, steps, levels); summing over ranks
        # gives the level share per step.
        rank_level = self.amr.rank_level_work()

        # step jitter keeps successive iterations from being identical
        step_jitter = np.clip(1.0 + rng.normal(0.0, 0.02, size=(steps,)), 0.9, 1.1)

        # kernel_time[r, t, l, k]: each kernel sees the AMR placement
        # imbalance damped by its exponent — advec-mom runs perfectly
        # balanced, the two most expensive kernels only mildly imbalanced,
        # the rest carry the full placement imbalance (incl. the rank-7/8
        # anomalies).  Globally normalized to the kernel budget.
        balanced = rank_level.mean(axis=0, keepdims=True)  # (1, steps, levels)
        self.kernel_time = np.empty((ranks, steps, cfg.levels, n_kernels))
        for k, name in enumerate(self.kernel_names):
            exponent = _KERNEL_IMBALANCE_EXPONENT.get(name, 1.0)
            blended = balanced + exponent * (rank_level - balanced)
            self.kernel_time[:, :, :, k] = blended * kernel_weights[k]
        self.kernel_time *= step_jitter[None, :, None, None]
        self.kernel_time *= (kernel_budget * ranks) / self.kernel_time.sum()

        # -- unannotated compute ---------------------------------------------------
        unannot_noise = np.clip(1.0 + rng.normal(0.0, cfg.imbalance, size=(ranks, 1)), 0.5, 1.5)
        shape = np.clip(1.0 + rng.normal(0.0, 0.03, size=(ranks, steps)), 0.8, 1.2)
        raw = unannot_noise * shape
        self.unannotated_time = raw / raw.sum() * (unannotated_budget * ranks)

        # -- MPI times ----------------------------------------------------------------
        mpi_weights = np.array([w for _, w in MPI_FUNCTIONS])
        mpi_weights = mpi_weights / mpi_weights.sum()
        # Reserve the barrier-wait pool out of the barrier weight.
        compute = self.kernel_time.sum(axis=(2, 3)) + self.unannotated_time  # (r, t)
        wait = compute.max(axis=0, keepdims=True) - compute  # (r, t)
        wait_total = wait.sum()
        base_total = mpi_budget * ranks - wait_total
        if base_total < 0.1 * mpi_budget * ranks:
            # Imbalance larger than the MPI budget allows: shrink waits.
            scale = (0.9 * mpi_budget * ranks) / wait_total if wait_total > 0 else 0.0
            wait = wait * scale
            wait_total = wait.sum()
            base_total = mpi_budget * ranks - wait_total

        mpi_jitter = np.clip(
            1.0 + rng.normal(0.0, 0.05, size=(ranks, steps, n_mpi)), 0.7, 1.3
        )
        base = mpi_jitter * mpi_weights[None, None, :]
        base = base / base.sum() * base_total
        self.mpi_time = base
        barrier_idx = self.mpi_names.index("MPI_Barrier")
        self.mpi_time[:, :, barrier_idx] += wait

        # -- phases ---------------------------------------------------------------------
        phase_noise = np.clip(1.0 + rng.normal(0.0, 0.05, size=ranks), 0.8, 1.2)
        per_rank_phase = phase_noise / phase_noise.sum() * (phase_budget * ranks)
        self.init_time = per_rank_phase * 0.6
        self.io_time = per_rank_phase * 0.4

    # -- introspection ------------------------------------------------------------

    def rank_total(self, rank: int) -> float:
        """Total virtual runtime of one rank."""
        return float(
            self.kernel_time[rank].sum()
            + self.unannotated_time[rank].sum()
            + self.mpi_time[rank].sum()
            + self.init_time[rank]
            + self.io_time[rank]
        )

    def totals(self) -> dict[str, float]:
        """Budget checks used by tests."""
        return {
            "kernel": float(self.kernel_time.sum()),
            "unannotated": float(self.unannotated_time.sum()),
            "mpi": float(self.mpi_time.sum()),
            "phases": float(self.init_time.sum() + self.io_time.sum()),
        }
