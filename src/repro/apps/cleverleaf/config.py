"""Configuration for the CleverLeaf workload simulator.

The real CleverLeaf is a structured-grid Lagrangian-Eulerian shock
hydrodynamics mini-app with SAMRAI adaptive mesh refinement; the paper's
case study runs the Galera et al. triple-point shock interaction on a
640x240 coarse grid with three refinement levels, 18 or 36 MPI ranks and
100 timesteps.  Our simulator reproduces the *structure and cost profile*
of those runs on a virtual clock: the same annotation attributes, the same
kernels, plausible AMR growth driven by the developing vortex, mild
cross-rank load imbalance, and the MPI call mix the paper reports
(Barrier-dominated, then Allreduce).  Every parameter below is the knob its
docstring says; defaults reproduce the paper's setup at reduced event
volume (``events_scale`` raises it to Table-I magnitudes).
"""

from __future__ import annotations

from dataclasses import dataclass

from ...common.errors import ReproError

__all__ = ["CleverLeafConfig", "KERNELS", "MPI_FUNCTIONS"]

#: Computational kernels of CleverLeaf, with per-cell relative costs.
#: ``calc-dt`` dominates (paper Fig. 5); the rest are cheap per visit.
KERNELS: tuple[tuple[str, float], ...] = (
    ("calc-dt", 5.0),
    ("advec-cell", 1.1),
    ("advec-mom", 1.0),
    ("pdv", 0.9),
    ("accelerate", 0.6),
    ("flux-calc", 0.5),
    ("viscosity", 0.5),
    ("ideal-gas", 0.3),
    ("revert", 0.2),
    ("reset", 0.2),
)

#: MPI functions CleverLeaf-on-SAMRAI touches, with relative time weights
#: matching the paper's Fig. 6 ordering: Barrier >> Allreduce >> the rest.
MPI_FUNCTIONS: tuple[tuple[str, float], ...] = (
    ("MPI_Barrier", 55.0),
    ("MPI_Allreduce", 25.0),
    ("MPI_Waitall", 6.0),
    ("MPI_Isend", 4.0),
    ("MPI_Irecv", 3.0),
    ("MPI_Allgather", 2.5),
    ("MPI_Gather", 1.5),
    ("MPI_Bcast", 1.2),
    ("MPI_Reduce", 0.8),
    ("MPI_Scatterv", 0.5),
)


@dataclass
class CleverLeafConfig:
    """All knobs of the simulated CleverLeaf run."""

    #: number of main-loop iterations (paper: 100)
    timesteps: int = 100
    #: number of MPI ranks (paper: 36 for the overhead study, 18 for the case study)
    ranks: int = 18
    #: coarse grid resolution (paper: 640 x 240)
    coarse_nx: int = 640
    coarse_ny: int = 240
    #: number of AMR levels (paper: 3, numbered 0..2)
    levels: int = 3
    #: RNG seed for all jitter/imbalance draws
    seed: int = 20170905
    #: target virtual runtime per rank in seconds (paper's run: ~24 s,
    #: giving ~2360 snapshots at 10 ms sampling)
    target_runtime: float = 24.0
    #: multiply the number of annotation events per timestep by issuing
    #: kernels per patch-batch; 1 = one kernel region per (level, kernel)
    #: per timestep, larger values approach the paper's 219k event snapshots
    events_scale: int = 1
    #: relative magnitude of cross-rank compute imbalance (paper Fig. 7:
    #: "a small amount of imbalance")
    imbalance: float = 0.06
    #: fraction of compute time outside annotated kernels (paper Fig. 5
    #: finds most samples outside the annotated kernels)
    unannotated_fraction: float = 0.55
    #: fraction of total time spent in MPI
    mpi_fraction: float = 0.18
    #: fraction of total time spent in init/io phases
    phases_fraction: float = 0.06
    #: AMR growth of level-1 time over the run (paper Fig. 8: "increases slightly")
    level1_growth: float = 0.35
    #: AMR growth of level-2 time over the run (paper Fig. 8: "increases significantly")
    level2_growth: float = 2.4
    #: ranks with anomalous level distribution (paper Fig. 9: rank 8 spends
    #: more time in level 1 than 0; rank 7 less in level 0 than most)
    anomalous_level1_rank: int = 8
    anomalous_level0_rank: int = 7

    def __post_init__(self) -> None:
        if self.timesteps < 1:
            raise ReproError(f"timesteps must be >= 1, got {self.timesteps}")
        if self.ranks < 1:
            raise ReproError(f"ranks must be >= 1, got {self.ranks}")
        if self.levels < 1 or self.levels > 8:
            raise ReproError(f"levels must be in 1..8, got {self.levels}")
        if self.events_scale < 1:
            raise ReproError(f"events_scale must be >= 1, got {self.events_scale}")
        fractions = self.unannotated_fraction + self.mpi_fraction + self.phases_fraction
        if not (0.0 < fractions < 1.0):
            raise ReproError(
                "unannotated + mpi + phases fractions must stay below 1 "
                f"(got {fractions:.3f})"
            )

    @property
    def kernel_fraction(self) -> float:
        """Share of total time in annotated computational kernels."""
        return 1.0 - self.unannotated_fraction - self.mpi_fraction - self.phases_fraction

    def scaled_down(self, timesteps: int = 10, ranks: int = 4) -> "CleverLeafConfig":
        """A small copy for unit tests."""
        return CleverLeafConfig(
            timesteps=timesteps,
            ranks=ranks,
            coarse_nx=self.coarse_nx,
            coarse_ny=self.coarse_ny,
            levels=self.levels,
            seed=self.seed,
            target_runtime=self.target_runtime * timesteps / self.timesteps,
            events_scale=self.events_scale,
            imbalance=self.imbalance,
            unannotated_fraction=self.unannotated_fraction,
            mpi_fraction=self.mpi_fraction,
            phases_fraction=self.phases_fraction,
            level1_growth=self.level1_growth,
            level2_growth=self.level2_growth,
            anomalous_level1_rank=min(self.anomalous_level1_rank, max(0, ranks - 1)),
            anomalous_level0_rank=min(self.anomalous_level0_rank, max(0, ranks - 2)),
        )
