"""The instrumented CleverLeaf run.

Walks the :class:`~.plan.WorkloadPlan` through a per-rank
:class:`~repro.runtime.Caliper` instance on a virtual clock, issuing the
exact annotation structure the paper's case study describes:

* ``function`` — source structure (``main``, ``main/hydro_step``), NESTED;
* ``annotation`` — user phases (``initialization``, ``computation``, ``io``);
* ``kernel`` — computational kernels;
* ``amr.level`` — the mesh refinement level being processed;
* ``iteration#mainloop`` — the simulation timestep;
* ``mpi.function`` / ``mpi.rank`` — from the (simulated) MPI wrapper.

That is the 7-attribute setup of the paper's Section V-B.  Each rank runs
as an independent process image (its own runtime, clock and channel), and
per-rank outputs become per-process datasets, exactly like Caliper's
distributed-memory behaviour.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import Any, Mapping, Optional, Sequence, Union

from ...common.record import Record
from ...io.dataset import Dataset, write_records
from ...runtime.clock import VirtualClock
from ...runtime.instrumentation import Caliper
from .config import CleverLeafConfig
from .plan import WorkloadPlan

__all__ = ["RankRun", "SimulationOutput", "run_rank", "run_simulation"]


@dataclass
class RankRun:
    """Outcome of one rank's instrumented run."""

    rank: int
    #: flushed output records (aggregation results or trace)
    records: list[Record]
    #: snapshot records pushed through the channel (Table I "Snapshots")
    num_snapshots: int
    #: virtual runtime of the rank
    virtual_runtime: float
    #: real (wall) seconds this run took — the overhead measurement
    wall_seconds: float

    @property
    def num_output_records(self) -> int:
        """Table I's "Output records" for this process."""
        return len(self.records)


@dataclass
class SimulationOutput:
    """All ranks' outcomes plus dataset conveniences."""

    config: CleverLeafConfig
    runs: list[RankRun] = field(default_factory=list)

    @property
    def num_snapshots_per_rank(self) -> int:
        return self.runs[0].num_snapshots if self.runs else 0

    @property
    def records_per_rank(self) -> int:
        return self.runs[0].num_output_records if self.runs else 0

    @property
    def wall_seconds(self) -> float:
        """Total real time across ranks (they execute sequentially here)."""
        return sum(run.wall_seconds for run in self.runs)

    def dataset(self) -> Dataset:
        """All ranks' output records merged into one dataset."""
        records: list[Record] = []
        for run in self.runs:
            records.extend(run.records)
        return Dataset(records)

    def record_lists(self) -> list[list[Record]]:
        """Per-rank record lists (for the parallel query application)."""
        return [run.records for run in self.runs]

    def write(self, directory: Union[str, os.PathLike], fmt: str = "cali") -> list[str]:
        """Write one file per rank; returns the paths."""
        os.makedirs(directory, exist_ok=True)
        paths = []
        for run in self.runs:
            path = os.path.join(os.fspath(directory), f"cleverleaf-{run.rank:04d}.{fmt}")
            write_records(path, run.records, globals_={"mpi.world.size": self.config.ranks})
            paths.append(path)
        return paths


def run_rank(
    config: CleverLeafConfig,
    plan: WorkloadPlan,
    rank: int,
    channel_config: Optional[Mapping[str, Any]] = None,
    enabled: bool = True,
) -> RankRun:
    """Run one rank's instrumented simulation.

    ``channel_config`` is the runtime configuration profile (services +
    aggregation scheme etc.); ``None`` means annotations run with no
    channel attached.  ``enabled=False`` disables the runtime entirely —
    the paper's "baseline configuration without data collection".
    """
    clock = VirtualClock()
    cali = Caliper(clock=clock, enabled=enabled)
    channel = None
    if channel_config is not None and enabled:
        channel = cali.create_channel("cleverleaf", channel_config)
        channel.set_global("cleverleaf.ranks", config.ranks)
        channel.set_global("cleverleaf.timesteps", config.timesteps)

    kernel_time = plan.kernel_time[rank]
    unannotated = plan.unannotated_time[rank]
    mpi_time = plan.mpi_time[rank]
    kernel_names = plan.kernel_names
    mpi_names = plan.mpi_names
    reps = config.events_scale

    wall0 = time.perf_counter()

    cali.set("mpi.rank", rank)
    cali.begin("function", "main")

    cali.begin("annotation", "initialization")
    clock.advance(float(plan.init_time[rank]))
    cali.sample_point()
    cali.end("annotation")

    cali.begin("annotation", "computation")
    for step in range(config.timesteps):
        cali.begin("iteration#mainloop", step)
        cali.begin("function", "hydro_step")

        step_kernels = kernel_time[step]
        for level in range(config.levels):
            cali.begin("amr.level", level)
            level_costs = step_kernels[level]
            for k, name in enumerate(kernel_names):
                cost = float(level_costs[k]) / reps
                for _ in range(reps):
                    cali.begin("kernel", name)
                    clock.advance(cost)
                    cali.end("kernel")
            cali.end("amr.level")

        # Unannotated computation: SAMRAI clustering, halo packing, ...
        clock.advance(float(unannotated[step]))
        cali.sample_point()
        cali.end("function")  # hydro_step

        step_mpi = mpi_time[step]
        for m, name in enumerate(mpi_names):
            cost = float(step_mpi[m])
            if cost <= 0.0:
                continue
            cali.begin("mpi.function", name)
            clock.advance(cost)
            cali.end("mpi.function")

        cali.end("iteration#mainloop")
    cali.end("annotation")  # computation

    cali.begin("annotation", "io")
    clock.advance(float(plan.io_time[rank]))
    cali.sample_point()
    cali.end("annotation")

    cali.end("function")  # main

    records: list[Record] = []
    num_snapshots = 0
    if channel is not None:
        records = channel.finish()
        num_snapshots = channel.num_snapshots
    wall = time.perf_counter() - wall0

    return RankRun(
        rank=rank,
        records=records,
        num_snapshots=num_snapshots,
        virtual_runtime=clock.now(),
        wall_seconds=wall,
    )


def run_simulation(
    config: Optional[CleverLeafConfig] = None,
    channel_config: Optional[Mapping[str, Any]] = None,
    ranks: Optional[Sequence[int]] = None,
    enabled: bool = True,
    plan: Optional[WorkloadPlan] = None,
) -> SimulationOutput:
    """Run the simulation for all (or selected) ranks.

    Ranks execute sequentially, each with an isolated runtime — mirroring
    the per-process independence of the real tool (Caliper performs no
    inter-process communication at runtime).
    """
    config = config or CleverLeafConfig()
    plan = plan or WorkloadPlan(config)
    which = list(ranks) if ranks is not None else list(range(config.ranks))
    output = SimulationOutput(config=config)
    for rank in which:
        output.runs.append(run_rank(config, plan, rank, channel_config, enabled))
    return output
