"""The evaluation's aggregation schemes and channel profiles (Section V-B).

The paper examines three aggregation schemes over the 7 collected
attributes:

* **Scheme A** — the aggregation key contains all attributes *except* the
  main-loop iteration number;
* **Scheme B** — only two attributes (we use ``kernel`` and
  ``mpi.function``, the profile a kernel/communication study needs);
* **Scheme C** — all attributes *including* the iteration number (the
  time-series profile; many more output records, Table I).

plus two snapshot-collection modes: asynchronous sampling every 10 ms and
synchronous event triggering; and a tracing configuration that stores every
snapshot.  The helpers here build the corresponding channel configs.
"""

from __future__ import annotations

from typing import Any, Optional

__all__ = [
    "ALL_ATTRIBUTES",
    "SCHEME_A",
    "SCHEME_B",
    "SCHEME_C",
    "channel_config_aggregate",
    "channel_config_sampling",
    "channel_config_trace",
]

#: the 7 attributes collected in the paper's overhead study
ALL_ATTRIBUTES: tuple[str, ...] = (
    "function",
    "annotation",
    "kernel",
    "amr.level",
    "iteration#mainloop",
    "mpi.function",
    "mpi.rank",
)

_NO_ITERATION = tuple(a for a in ALL_ATTRIBUTES if a != "iteration#mainloop")

#: Scheme A: all attributes except the iteration number.
SCHEME_A: str = (
    "AGGREGATE count, sum(time.duration) GROUP BY " + ", ".join(_NO_ITERATION)
)

#: Scheme B: a two-attribute key.
SCHEME_B: str = "AGGREGATE count, sum(time.duration) GROUP BY kernel, mpi.function"

#: Scheme C: all attributes including the iteration number (time series).
SCHEME_C: str = (
    "AGGREGATE count, sum(time.duration) GROUP BY " + ", ".join(ALL_ATTRIBUTES)
)


def channel_config_aggregate(
    scheme: str,
    mode: str = "event",
    sampling_period: float = 0.01,
    key_strategy: str = "tuple",
) -> dict[str, Any]:
    """Channel config for on-line aggregation in ``event`` or ``sample`` mode."""
    if mode == "event":
        services = ["event", "timer", "aggregate"]
        config: dict[str, Any] = {}
    elif mode == "sample":
        services = ["sampler", "timer", "aggregate"]
        config = {"sampler.period": sampling_period}
    else:
        raise ValueError(f"unknown mode {mode!r} (expected 'event' or 'sample')")
    config.update(
        {
            "services": services,
            "aggregate.config": scheme,
            "aggregate.key_strategy": key_strategy,
        }
    )
    return config


def channel_config_trace(mode: str = "event", sampling_period: float = 0.01) -> dict[str, Any]:
    """Channel config for the tracing baseline (store every snapshot)."""
    if mode == "event":
        return {"services": ["event", "timer", "trace"]}
    if mode == "sample":
        return {
            "services": ["sampler", "timer", "trace"],
            "sampler.period": sampling_period,
        }
    raise ValueError(f"unknown mode {mode!r} (expected 'event' or 'sample')")


def channel_config_sampling(
    scheme: Optional[str] = None, period: float = 0.01
) -> dict[str, Any]:
    """Sampling channel: count-only profile when no scheme is given.

    This is the Section VI-B configuration: 100 Hz sampling with
    ``AGGREGATE count GROUP BY kernel`` per process.
    """
    scheme = scheme or "AGGREGATE count GROUP BY kernel"
    return channel_config_aggregate(scheme, mode="sample", sampling_period=period)
