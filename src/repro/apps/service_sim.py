"""Request/response service workload: latency percentiles per endpoint.

The profiling-target class the original CleverLeaf/ParaDiS workloads do not
cover: a server handling a stream of requests where the interesting numbers
are *latency quantiles per endpoint*, not per-iteration kernel times.  Each
simulated request routes to one of a handful of endpoints (Zipf-ish
popularity), runs a handler whose virtual service time follows a lognormal
per-endpoint distribution, and occasionally hits a slow path (cache miss,
lock contention) that produces the heavy tail real services have.

The workload is instrumented exclusively through the public
:mod:`repro.api.instrument` facade — it doubles as the facade's reference
user — and its default aggregation scheme carries a fixed-range
``histogram(time.duration, ...)`` so :func:`latency_quantiles` can report
p50/p90/p99 per endpoint straight from the aggregated records, including
after Bernoulli sampling (histogram shapes are weight-invariant under
uniform per-key sampling; the count-scaled ``count`` column still reflects
offered load).

Everything is driven by a seeded RNG and a virtual clock, so a
``(seed, requests)`` pair always produces byte-identical records —
the property suite and the sampling benchmark rely on that.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping, Optional, Sequence

import random

from ..aggregate.ops import HistogramOp
from ..common.errors import ReproError
from ..common.record import Record
from ..runtime.clock import VirtualClock
from ..runtime.instrumentation import Caliper

__all__ = [
    "ServiceSimConfig",
    "ENDPOINTS",
    "LATENCY_SCHEME",
    "run_service",
    "latency_quantiles",
]

#: simulated endpoints with (popularity weight, median ms, sigma, slow odds)
ENDPOINTS: tuple[tuple[str, float, float, float, float], ...] = (
    ("GET /api/items", 8.0, 4.0, 0.45, 0.02),
    ("GET /api/items/{id}", 5.0, 2.5, 0.35, 0.01),
    ("POST /api/items", 2.0, 9.0, 0.55, 0.05),
    ("GET /api/search", 1.5, 18.0, 0.70, 0.08),
    ("POST /api/checkout", 0.5, 30.0, 0.60, 0.10),
)

#: per-endpoint latency profile: counts for load, sum/min/max for totals,
#: and a fixed-range histogram (0..500ms, 50 bins) for the quantiles
LATENCY_SCHEME: str = (
    "AGGREGATE count, sum(time.duration), min(time.duration), "
    "max(time.duration), histogram(time.duration,50,0,500) "
    "GROUP BY endpoint, status"
)


@dataclass
class ServiceSimConfig:
    """Shape parameters of the simulated request stream."""

    requests: int = 2000
    seed: int = 20260808
    #: multiplier applied to a slow-path request's service time
    slow_factor: float = 12.0
    #: fraction of requests that fail (HTTP 500 after partial work)
    error_rate: float = 0.01
    endpoints: Sequence[tuple[str, float, float, float, float]] = ENDPOINTS

    def __post_init__(self) -> None:
        if self.requests < 1:
            raise ReproError(f"requests must be >= 1, got {self.requests}")
        if not self.endpoints:
            raise ReproError("need at least one endpoint")


def run_service(
    config: Optional[ServiceSimConfig] = None,
    channel_config: Optional[Mapping[str, Any]] = None,
) -> tuple[list[Record], Caliper]:
    """Simulate the request stream; returns (flushed records, runtime).

    ``channel_config`` overrides the default channel profile — pass
    ``{"sampling.budget": "200ns", ...}`` on top of the defaults to run the
    workload under the adaptive sampler.
    """
    from ..api import instrument

    config = config or ServiceSimConfig()
    rng = random.Random(config.seed)
    clock = VirtualClock()
    cali = Caliper(clock=clock)
    profile: dict[str, Any] = {
        "services": ["event", "timer", "aggregate"],
        "aggregate.config": LATENCY_SCHEME,
        "aggregate.rename_count": False,
    }
    if channel_config:
        profile.update(channel_config)
    channel = cali.create_channel("service", profile)

    weights = [e[1] for e in config.endpoints]

    def handle(endpoint: tuple[str, float, float, float, float]) -> None:
        name, _w, median_ms, sigma, slow_odds = endpoint
        service_ms = median_ms * rng.lognormvariate(0.0, sigma)
        failed = rng.random() < config.error_rate
        instrument.set("status", 500 if failed else 200, runtime=cali)
        if failed:
            # errors bail out early: they are cheap, which is exactly why
            # averaging latency over all requests hides an outage
            clock.advance(service_ms * 0.25)
            return
        clock.advance(service_ms)
        if rng.random() < slow_odds:
            with instrument.region("slow-path", runtime=cali):
                clock.advance(service_ms * (config.slow_factor - 1.0))

    for _ in range(config.requests):
        endpoint = rng.choices(config.endpoints, weights=weights)[0]
        with instrument.region(endpoint[0], attribute="endpoint", runtime=cali):
            handle(endpoint)

    records = channel.finish()
    return records, cali


def latency_quantiles(
    records: Sequence[Record],
    quantiles: Sequence[float] = (0.5, 0.9, 0.99),
    status: int = 200,
) -> dict[str, dict[float, float]]:
    """Per-endpoint latency quantiles from the aggregated histogram column.

    Returns ``{endpoint: {q: latency_ms}}`` for the rows matching
    ``status``.  Works identically on sampled output: the encoded histogram
    keeps its *shape* under uniform Bernoulli thinning, so the quantile
    estimates stay unbiased even when counts are scaled.
    """
    out: dict[str, dict[float, float]] = {}
    for record in records:
        entries = {label: v for label, v in record.items()}
        hist = entries.get("histogram#time.duration")
        endpoint = entries.get("endpoint")
        if hist is None or endpoint is None:
            continue
        if status is not None:
            row_status = entries.get("status")
            if row_status is not None and int(row_status.value) != status:
                continue
        text = hist.to_string()
        out[endpoint.to_string()] = {
            q: HistogramOp.quantile(text, q) for q in quantiles
        }
    return out


def _main(argv: Optional[Sequence[str]] = None) -> int:  # pragma: no cover
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro.apps.service_sim",
        description="Run the request/response service workload and print "
        "per-endpoint latency percentiles.",
    )
    parser.add_argument("--requests", type=int, default=2000)
    parser.add_argument("--seed", type=int, default=20260808)
    parser.add_argument(
        "--sampling-budget",
        help="run under the adaptive sampler with this per-event budget",
    )
    parser.add_argument("-o", "--output", help="also write the records here")
    args = parser.parse_args(argv)
    overrides: dict[str, Any] = {}
    if args.sampling_budget:
        overrides["sampling.budget"] = args.sampling_budget
    records, _ = run_service(
        ServiceSimConfig(requests=args.requests, seed=args.seed),
        channel_config=overrides or None,
    )
    if args.output:
        from ..io.dataset import write_records

        write_records(args.output, records)
    for endpoint, qs in sorted(latency_quantiles(records).items()):
        cols = "  ".join(f"p{int(q * 100):<2} {ms:8.2f}ms" for q, ms in qs.items())
        print(f"{endpoint:<24} {cols}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(_main())
