"""Fuzz-style randomized workload generator for the regression gate.

Where :mod:`~repro.apps.service_sim` models one realistic program shape,
this module generates *arbitrary* ones: from a seed it derives a random
region call tree (names, nesting, per-region virtual cost, call counts),
runs it through an instrumented runtime, and emits the aggregated profile.
Two runs of the same seed are byte-identical; a ``slowdowns`` mapping
multiplies chosen regions' costs, injecting a known regression.

That pairing is the point — it turns ``repro-query check`` into a
property-testable subject::

    python -m repro.apps.fuzzgen --seed 7 -o base.json
    python -m repro.apps.fuzzgen --seed 7 --slowdown solve.lu=2.0 -o head.json
    repro-query check base.json head.json --threshold 0.1

must flag ``solve.lu`` (and only regions downstream of an injected
slowdown) as degradations, for *every* seed.  The sampling suite uses the
same generator to cross-check count-scaled aggregates against unsampled
ground truth over many random program shapes.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Mapping, Optional, Sequence

from ..common.errors import ReproError
from ..common.record import Record
from ..runtime.clock import VirtualClock
from ..runtime.instrumentation import Caliper

__all__ = [
    "FuzzConfig",
    "FUZZ_SCHEME",
    "generate_tree",
    "run_fuzz",
    "write_pair",
]

#: profile the generated runs aggregate into (one row per region)
FUZZ_SCHEME: str = (
    "AGGREGATE count, sum(time.duration), min(time.duration), "
    "max(time.duration) GROUP BY region"
)

_STEMS = (
    "init", "solve", "remesh", "exchange", "pack", "reduce", "advect",
    "diffuse", "project", "update", "scatter", "gather", "flux", "filter",
)
_LEAVES = ("setup", "kernel", "lu", "qr", "halo", "io", "sum", "apply")


@dataclass
class _Region:
    """One node of the generated call tree."""

    name: str
    cost: float  # virtual time units per visit, before slowdowns
    calls: int  # visits per parent invocation
    children: tuple


@dataclass
class FuzzConfig:
    """Shape parameters of the generated program."""

    seed: int = 0
    #: approximate number of distinct regions in the tree
    regions: int = 12
    #: maximum nesting depth
    depth: int = 3
    #: top-level iterations driving the tree
    iterations: int = 20

    def __post_init__(self) -> None:
        if self.regions < 1:
            raise ReproError(f"regions must be >= 1, got {self.regions}")
        if self.depth < 1:
            raise ReproError(f"depth must be >= 1, got {self.depth}")
        if self.iterations < 1:
            raise ReproError(f"iterations must be >= 1, got {self.iterations}")


def generate_tree(config: FuzzConfig) -> list[_Region]:
    """Derive the random call tree for ``config.seed`` (deterministic)."""
    rng = random.Random(config.seed)
    budget = [config.regions]
    names_taken: set[str] = set()

    def fresh_name(depth: int) -> str:
        pool = _STEMS if depth < config.depth - 1 else _LEAVES
        for _ in range(64):
            parts = [rng.choice(_STEMS)] + [
                rng.choice(pool) for _ in range(min(depth, 1))
            ]
            name = ".".join(parts)
            if name not in names_taken:
                names_taken.add(name)
                return name
        # pathological seed: disambiguate deterministically
        name = f"{rng.choice(_STEMS)}.{len(names_taken)}"
        names_taken.add(name)
        return name

    def build(depth: int) -> list[_Region]:
        nodes: list[_Region] = []
        width = rng.randint(1, 3)
        for _ in range(width):
            if budget[0] <= 0:
                break
            budget[0] -= 1
            children: tuple = ()
            if depth + 1 < config.depth and rng.random() < 0.6:
                children = tuple(build(depth + 1))
            nodes.append(
                _Region(
                    name=fresh_name(depth),
                    cost=rng.uniform(0.5, 20.0),
                    calls=rng.randint(1, 4),
                    children=children,
                )
            )
        return nodes

    roots = build(0)
    while budget[0] > 0:  # spend any leftover budget on more roots
        extra = build(0)
        if not extra:
            break
        roots.extend(extra)
    return roots


def run_fuzz(
    config: FuzzConfig,
    slowdowns: Optional[Mapping[str, float]] = None,
    channel_config: Optional[Mapping[str, Any]] = None,
) -> list[Record]:
    """Run the generated program; returns the aggregated profile records.

    ``slowdowns`` maps region names to cost multipliers — the injected
    regressions a subsequent ``repro-query check`` against the un-slowed
    run must detect.  Unknown region names are rejected, so a test cannot
    silently inject nothing.
    """
    from ..api import instrument

    slowdowns = dict(slowdowns or {})
    tree = generate_tree(config)
    known = set()

    def collect(nodes: Sequence[_Region]) -> None:
        for node in nodes:
            known.add(node.name)
            collect(node.children)

    collect(tree)
    unknown = set(slowdowns) - known
    if unknown:
        raise ReproError(
            f"slowdown region(s) {sorted(unknown)} not in the generated "
            f"tree for seed {config.seed}; regions are {sorted(known)}"
        )

    clock = VirtualClock()
    cali = Caliper(clock=clock)
    profile: dict[str, Any] = {
        "services": ["event", "timer", "aggregate"],
        "aggregate.config": FUZZ_SCHEME,
        "aggregate.rename_count": False,
    }
    if channel_config:
        profile.update(channel_config)
    channel = cali.create_channel("fuzz", profile)
    # jitter RNG is separate from the tree RNG so base/head runs see the
    # same draw sequence: only the injected multipliers differ
    jitter = random.Random(config.seed ^ 0x5EED)

    def visit(node: _Region) -> None:
        factor = slowdowns.get(node.name, 1.0)
        for _ in range(node.calls):
            with instrument.region(node.name, runtime=cali):
                clock.advance(node.cost * factor * jitter.uniform(0.9, 1.1))
                for child in node.children:
                    visit(child)

    for i in range(config.iterations):
        instrument.set("iteration", i, runtime=cali)
        for node in tree:
            visit(node)

    return channel.finish()


def write_pair(
    base_path: str,
    head_path: str,
    config: FuzzConfig,
    slowdowns: Mapping[str, float],
) -> None:
    """Write a (baseline, regressed-head) profile pair for the check gate."""
    from ..io.dataset import write_records

    write_records(base_path, run_fuzz(config))
    write_records(head_path, run_fuzz(config, slowdowns=slowdowns))


def _main(argv: Optional[Sequence[str]] = None) -> int:  # pragma: no cover
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro.apps.fuzzgen",
        description="Generate a randomized instrumented workload profile "
        "(optionally with injected slowdowns) for repro-query check.",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--regions", type=int, default=12)
    parser.add_argument("--depth", type=int, default=3)
    parser.add_argument("--iterations", type=int, default=20)
    parser.add_argument(
        "--slowdown",
        action="append",
        default=[],
        metavar="REGION=FACTOR",
        help="multiply REGION's cost by FACTOR (repeatable)",
    )
    parser.add_argument(
        "--list-regions",
        action="store_true",
        help="print the generated region names and exit",
    )
    parser.add_argument("-o", "--output", help="write the profile here")
    args = parser.parse_args(argv)
    config = FuzzConfig(
        seed=args.seed,
        regions=args.regions,
        depth=args.depth,
        iterations=args.iterations,
    )
    if args.list_regions:
        names: set[str] = set()

        def collect(nodes):
            for node in nodes:
                names.add(node.name)
                collect(node.children)

        collect(generate_tree(config))
        print("\n".join(sorted(names)))
        return 0
    slowdowns: dict[str, float] = {}
    for spec in args.slowdown:
        region, sep, factor = spec.partition("=")
        if not sep:
            parser.error(f"--slowdown must be REGION=FACTOR, got {spec!r}")
        slowdowns[region] = float(factor)
    records = run_fuzz(config, slowdowns=slowdowns or None)
    if args.output:
        from ..io.dataset import write_records

        write_records(args.output, records)
    else:
        for record in records:
            print(record)
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(_main())
