"""ParaDiS-like dataset generator (the Fig. 4 scalability workload).

The paper's scalability study queries a distributed Caliper dataset from
ParaDiS, a dislocation-dynamics production code, collected on 4096 MPI
ranks: one file per rank, each holding a per-process time-series profile —
2174 snapshot records over computational kernels, MPI functions, MPI rank
and main-loop iterations, with visit count and aggregate runtime per unique
region.  The evaluation query computes total CPU time per kernel and MPI
function across ranks, producing 85 output records.

We cannot obtain the proprietary dataset, so this module generates a
synthetic equivalent with the same statistical shape: the same per-file
record count, the same attribute dimensions, region universes sized so the
paper's query yields the same output-record count (60 kernel regions + 24
MPI functions + 1 uninstrumented row = 85), and weak-scaling-friendly
per-rank generation (any rank's file is generated independently and
deterministically from the seed).
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Optional, Sequence, Union

import numpy as np

from ..common.errors import ReproError
from ..common.record import Record
from ..common.variant import ValueType, Variant
from ..io.dataset import write_records

__all__ = [
    "ParaDiSConfig",
    "KERNEL_REGIONS",
    "MPI_FUNCTIONS",
    "TOTAL_TIME_QUERY",
    "generate_rank_records",
    "write_dataset",
]

#: 60 computational-kernel region names: ParaDiS phase / subphase structure.
_PHASES = (
    "force",
    "collision",
    "remesh",
    "integrate",
    "topology",
    "migration",
    "cell-charge",
    "segforce",
    "decomp",
    "output",
)
_SUBPHASES = ("setup", "compute", "comm-pack", "comm-unpack", "reduce", "finalize")

KERNEL_REGIONS: tuple[str, ...] = tuple(
    f"{phase}/{sub}" for phase in _PHASES for sub in _SUBPHASES
)

#: 24 intercepted MPI functions.
MPI_FUNCTIONS: tuple[str, ...] = (
    "MPI_Allreduce",
    "MPI_Barrier",
    "MPI_Isend",
    "MPI_Irecv",
    "MPI_Wait",
    "MPI_Waitall",
    "MPI_Waitany",
    "MPI_Send",
    "MPI_Recv",
    "MPI_Bcast",
    "MPI_Reduce",
    "MPI_Gather",
    "MPI_Gatherv",
    "MPI_Allgather",
    "MPI_Allgatherv",
    "MPI_Alltoall",
    "MPI_Alltoallv",
    "MPI_Scatter",
    "MPI_Scatterv",
    "MPI_Scan",
    "MPI_Probe",
    "MPI_Iprobe",
    "MPI_Sendrecv",
    "MPI_Testall",
)

#: The evaluation query of Section V-C: total CPU time in computational
#: kernels and MPI functions across all ranks.
TOTAL_TIME_QUERY: str = (
    "AGGREGATE sum(sum#time.duration), sum(aggregate.count) "
    "GROUP BY kernel, mpi.function"
)


@dataclass
class ParaDiSConfig:
    """Shape parameters of the synthetic dataset."""

    #: ranks the original dataset was collected on (paper: 4096)
    ranks: int = 4096
    #: main-loop iterations in each per-rank time series (paper-compatible)
    iterations: int = 100
    #: snapshot records per rank file (paper: 2174)
    records_per_rank: int = 2174
    #: regions each rank reports per iteration (derived when None)
    seed: int = 20170406

    def __post_init__(self) -> None:
        if self.ranks < 1:
            raise ReproError(f"ranks must be >= 1, got {self.ranks}")
        if self.iterations < 1:
            raise ReproError(f"iterations must be >= 1, got {self.iterations}")
        if self.records_per_rank < self.iterations:
            raise ReproError(
                "records_per_rank must be at least one per iteration "
                f"(got {self.records_per_rank} for {self.iterations} iterations)"
            )

    @property
    def regions_per_iteration(self) -> int:
        """Regions per rank per iteration, before trimming to the target count."""
        return -(-self.records_per_rank // self.iterations)  # ceil division


_ALL_REGIONS = tuple(
    [("kernel", name) for name in KERNEL_REGIONS]
    + [("mpi.function", name) for name in MPI_FUNCTIONS]
)


def generate_rank_records(config: ParaDiSConfig, rank: int) -> list[Record]:
    """Generate one rank's profile records, deterministically from the seed.

    Every record mimics an on-line aggregation output row: a region
    attribute (``kernel`` or ``mpi.function``), the producing ``mpi.rank``,
    the ``iteration``, plus ``aggregate.count`` and ``sum#time.duration``.
    """
    rng = np.random.default_rng((config.seed, rank))
    # One row per iteration is the "uninstrumented" time outside any region
    # (the 85th group of the paper's query output); the rest are regions.
    per_iter = config.regions_per_iteration
    n_regions = max(1, min(per_iter - 1, len(_ALL_REGIONS)))

    # This rank's region subset: stable across iterations (a process touches
    # the same code regions every timestep).  Rank-dependent choice makes the
    # union across ranks cover the full region universe.
    idx = rng.choice(len(_ALL_REGIONS), size=n_regions, replace=False)
    regions: list[tuple[Optional[str], Optional[str]]] = [
        _ALL_REGIONS[i] for i in sorted(idx)
    ]
    regions.append((None, None))  # the uninstrumented row

    # Region cost profile for this rank (kernel regions heavier than MPI;
    # the uninstrumented row sits in between).
    base_cost = np.where(
        np.array([label == "kernel" for label, _ in regions]),
        rng.uniform(0.8, 3.0, size=len(regions)),
        rng.uniform(0.05, 0.8, size=len(regions)),
    )
    base_cost[-1] = rng.uniform(0.5, 1.5)  # uninstrumented time
    counts = rng.integers(1, 40, size=len(regions))

    records: list[Record] = []
    total_target = config.records_per_rank
    # Per-iteration jitter, drawn in bulk for speed.
    jitter = rng.uniform(0.85, 1.15, size=(config.iterations, len(regions)))
    rank_variant = Variant(ValueType.INT, rank)
    for it in range(config.iterations):
        it_variant = Variant(ValueType.INT, it)
        for j, (label, name) in enumerate(regions):
            if len(records) >= total_target:
                break
            entries = {
                "mpi.rank": rank_variant,
                "iteration": it_variant,
                "aggregate.count": Variant(ValueType.UINT, int(counts[j])),
                "sum#time.duration": Variant(
                    ValueType.DOUBLE, float(base_cost[j] * jitter[it, j])
                ),
            }
            if label is not None:
                entries[label] = Variant.of(name)
            records.append(Record.from_variants(entries))
    return records


def write_dataset(
    config: ParaDiSConfig,
    directory: Union[str, os.PathLike],
    ranks: Optional[Sequence[int]] = None,
    fmt: str = "cali",
) -> list[str]:
    """Write per-rank files (all ranks, or a subset); returns the paths."""
    os.makedirs(directory, exist_ok=True)
    which = list(ranks) if ranks is not None else list(range(config.ranks))
    paths = []
    for rank in which:
        path = os.path.join(os.fspath(directory), f"paradis-{rank:05d}.{fmt}")
        write_records(
            path,
            generate_rank_records(config, rank),
            globals_={"mpi.world.size": config.ranks},
        )
        paths.append(path)
    return paths
