"""Workload applications: CleverLeaf/ParaDiS simulators, a request/response
service, a fuzz-style randomized workload generator, and toy examples.

Submodules load lazily so ``python -m repro.apps.fuzzgen`` (and friends)
runs without the package import pre-registering the module runpy is about
to execute.
"""

from importlib import import_module

from .listing1 import DEFAULT_SCHEME, run_listing1

_SUBMODULES = ("cleverleaf", "fuzzgen", "paradis", "service_sim")
_LAZY_NAMES = {
    "FuzzConfig": "fuzzgen",
    "run_fuzz": "fuzzgen",
    "ServiceSimConfig": "service_sim",
    "run_service": "service_sim",
    "latency_quantiles": "service_sim",
}

__all__ = [
    "cleverleaf",
    "paradis",
    "fuzzgen",
    "service_sim",
    "run_listing1",
    "DEFAULT_SCHEME",
    "FuzzConfig",
    "run_fuzz",
    "ServiceSimConfig",
    "run_service",
    "latency_quantiles",
]


def __getattr__(name: str):
    if name in _SUBMODULES:
        module = import_module(f".{name}", __name__)
        globals()[name] = module
        return module
    if name in _LAZY_NAMES:
        module = import_module(f".{_LAZY_NAMES[name]}", __name__)
        value = getattr(module, name)
        globals()[name] = value
        return value
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def __dir__():
    return sorted(set(globals()) | set(__all__))
