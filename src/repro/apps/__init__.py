"""Workload applications: CleverLeaf and ParaDiS simulators, toy examples."""

from . import cleverleaf, paradis
from .listing1 import DEFAULT_SCHEME, run_listing1

__all__ = ["cleverleaf", "paradis", "run_listing1", "DEFAULT_SCHEME"]
