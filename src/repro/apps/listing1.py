"""The paper's Listing 1 example program.

A loop calling ``foo`` twice and ``bar`` once per iteration, annotated with
``function`` and ``loop.iteration`` attributes — the running example of
Section III-B whose aggregation results the paper prints as a table.  Used
by the quickstart example and by the integration test that checks our
output against the paper's table values.
"""

from __future__ import annotations

from typing import Any, Mapping, Optional

from ..common.record import Record
from ..runtime.clock import VirtualClock
from ..runtime.instrumentation import Caliper

__all__ = ["run_listing1", "DEFAULT_SCHEME"]

#: the first aggregation scheme the paper applies to this program
DEFAULT_SCHEME = "AGGREGATE count, sum(time.duration) GROUP BY function, loop.iteration"


def run_listing1(
    iterations: int = 4,
    channel_config: Optional[Mapping[str, Any]] = None,
    work_unit: float = 10.0,
) -> tuple[list[Record], Caliper]:
    """Run the annotated example; returns (flushed records, runtime).

    ``foo`` and ``bar`` each take one ``work_unit`` of virtual time, so with
    the default scheme the result matches the paper's table: per iteration,
    ``foo`` has count 2 / time 20 and ``bar`` count 1 / time 10.
    """
    clock = VirtualClock()
    cali = Caliper(clock=clock)
    config = dict(channel_config) if channel_config is not None else {
        "services": ["event", "timer", "aggregate"],
        "aggregate.config": DEFAULT_SCHEME,
        "aggregate.rename_count": False,
    }
    channel = cali.create_channel("listing1", config)

    def foo(_i: int) -> None:
        cali.begin("function", "foo")
        clock.advance(work_unit)
        cali.end("function")

    def bar(_i: int) -> None:
        cali.begin("function", "bar")
        clock.advance(work_unit)
        cali.end("function")

    for i in range(iterations):
        cali.begin("loop.iteration", i)
        foo(1)
        foo(2)
        bar(1)
        cali.end("loop.iteration")

    return channel.finish(), cali
