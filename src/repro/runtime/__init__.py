"""The runtime instrumentation layer (the Caliper-equivalent substrate)."""

from .blackboard import Blackboard
from .channel import Channel
from .clock import Clock, VirtualClock, WallClock
from .config import ConfigSet, config_from_env, config_from_file
from .instrumentation import Caliper, default_runtime, set_default_runtime
from .schema import validate_config
from .services import (
    AggregateService,
    EventService,
    RecorderService,
    SamplerService,
    Service,
    ServiceRegistry,
    TimerService,
    TraceService,
    default_service_registry,
)

__all__ = [
    "Blackboard",
    "Channel",
    "Clock",
    "VirtualClock",
    "WallClock",
    "ConfigSet",
    "config_from_env",
    "config_from_file",
    "validate_config",
    "Caliper",
    "default_runtime",
    "set_default_runtime",
    "Service",
    "ServiceRegistry",
    "default_service_registry",
    "AggregateService",
    "EventService",
    "RecorderService",
    "SamplerService",
    "TimerService",
    "TraceService",
]
