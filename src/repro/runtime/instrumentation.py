"""The runtime instrumentation API (the Caliper-equivalent front end).

:class:`Caliper` owns the attribute registry, one blackboard per monitored
thread, and the set of active channels.  Applications annotate themselves
through ``begin``/``end``/``set`` (or the :meth:`region` context manager and
:meth:`profile` decorator); every annotation event is dispatched to each
active channel, whose services may take snapshots, attach measurements, and
aggregate or trace them.

Threading model (paper Section IV-B): each thread has its own blackboard and
snapshots are processed on the thread that triggered them; the aggregation
service keeps one database per thread, so the hot path takes no locks.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from functools import wraps
from typing import Any, Callable, Iterator, Mapping, Optional, Union

from ..common.attribute import AttrProperty, Attribute, AttributeRegistry
from ..common.errors import ChannelError
from ..common.variant import RawValue, ValueType, Variant
from .blackboard import Blackboard
from .channel import Channel
from .clock import Clock, WallClock
from .config import ConfigSet
from .services.base import ServiceRegistry

__all__ = ["Caliper", "default_runtime", "set_default_runtime"]


def _infer_value_type(value: RawValue) -> ValueType:
    if isinstance(value, bool):
        return ValueType.BOOL
    if isinstance(value, int):
        return ValueType.INT
    if isinstance(value, float):
        return ValueType.DOUBLE
    return ValueType.STRING


class Caliper:
    """A performance-introspection runtime instance.

    Library users normally create one instance per experiment (or use the
    process-wide :func:`default_runtime`), add channels with configuration
    profiles, annotate, and collect flushed records::

        cali = Caliper()
        chan = cali.create_channel("profile", {
            "services": ["event", "timer", "aggregate"],
            "aggregate.config": "AGGREGATE count, sum(time.duration) GROUP BY function",
        })
        with cali.region("function", "main"):
            ...
        records = chan.finish()
    """

    def __init__(self, clock: Optional[Clock] = None, enabled: bool = True) -> None:
        self.registry = AttributeRegistry()
        self.clock = clock if clock is not None else WallClock()
        self.enabled = enabled
        self.channels: dict[str, Channel] = {}
        self._tls = threading.local()
        self._active: tuple[Channel, ...] = ()
        self._any_pollers = False
        # Flattened per-event dispatch: the hooks of every active channel's
        # services in one tuple, so begin/end/set skip the channel hop.
        # Inactive channels still suppress in push_snapshot, exactly like
        # the per-channel dispatch did.
        self._begin_handlers: tuple = ()
        self._end_handlers: tuple = ()
        self._set_handlers: tuple = ()

    # -- channels ------------------------------------------------------------

    def create_channel(
        self,
        name: str,
        config: Union[ConfigSet, Mapping[str, Any], None] = None,
        registry: Optional[ServiceRegistry] = None,
    ) -> Channel:
        if name in self.channels:
            raise ChannelError(f"channel {name!r} already exists")
        channel = Channel(name, self, config, registry)
        self.channels[name] = channel
        self._rebuild_active()
        return channel

    def remove_channel(self, name: str) -> None:
        self.channels.pop(name, None)
        self._rebuild_active()

    def _rebuild_active(self) -> None:
        self._active = tuple(c for c in self.channels.values() if c.active)
        self._any_pollers = any(c.has_pollers for c in self._active)
        self._begin_handlers = tuple(
            s.on_begin for c in self._active for s in c._begin_services
        )
        self._end_handlers = tuple(
            s.on_end for c in self._active for s in c._end_services
        )
        self._set_handlers = tuple(
            s.on_set for c in self._active for s in c._set_services
        )

    def finish_channel(self, name: str) -> list:
        """Finish one channel and return its output records."""
        channel = self.channels[name]
        records = channel.finish()
        self._rebuild_active()
        return records

    def flush_all(self) -> dict[str, list]:
        """Flush every active channel (without finishing them)."""
        return {name: ch.flush() for name, ch in self.channels.items() if ch.active}

    # -- blackboard ------------------------------------------------------------

    def blackboard(self) -> Blackboard:
        """The calling thread's blackboard."""
        bb = getattr(self._tls, "blackboard", None)
        if bb is None:
            bb = Blackboard()
            self._tls.blackboard = bb
        return bb

    # -- attribute management -----------------------------------------------------

    def create_attribute(
        self,
        label: str,
        vtype: Union[ValueType, str] = ValueType.STRING,
        properties: AttrProperty = AttrProperty.NONE,
    ) -> Attribute:
        return self.registry.create(label, vtype, properties)

    def _resolve(
        self, key: Union[str, Attribute], value: RawValue | Variant, nested_default: bool
    ) -> Attribute:
        if isinstance(key, Attribute):
            return key
        attr = self.registry.find(key)
        if attr is not None:
            return attr
        if isinstance(value, Variant):
            vtype = value.type
        else:
            vtype = _infer_value_type(value)
        props = AttrProperty.NESTED if nested_default else AttrProperty.NONE
        return self.registry.create(key, vtype, props)

    # -- instrumentation API ---------------------------------------------------------

    def begin(self, key: Union[str, Attribute], value: RawValue | Variant) -> None:
        """Open a region: push ``value`` on the attribute's stack.

        This is the ``mark_begin`` of the paper's Listing 1.  Attributes
        created implicitly by ``begin`` default to NESTED (path semantics).
        """
        if not self.enabled:
            return
        # Sampling deadlines that passed since the last call belong to the
        # *current* blackboard state — poll before any update or event.
        if self._any_pollers:
            self._poll()
        # Fast path for the common case — a string label naming an existing
        # attribute; _resolve handles handles and first-use creation.
        attribute = self.registry._by_label.get(key) if key.__class__ is str else None
        if attribute is None:
            attribute = self._resolve(key, value, nested_default=True)
        v = attribute.check(value)
        if not attribute.skip_events:
            for handler in self._begin_handlers:
                handler(attribute, v)
        bb = getattr(self._tls, "blackboard", None)
        if bb is None:
            bb = self.blackboard()
        bb.begin(attribute, v)

    def end(self, key: Union[str, Attribute], value: RawValue | Variant | None = None) -> None:
        """Close a region: pop the attribute's stack (checking ``value`` if given)."""
        if not self.enabled:
            return
        if self._any_pollers:
            self._poll()
        attribute = self.registry._by_label.get(key) if key.__class__ is str else None
        if attribute is None:
            attribute = self.registry.get(key.label if isinstance(key, Attribute) else key)
        bb = getattr(self._tls, "blackboard", None)
        if bb is None:
            bb = self.blackboard()
        top = bb.get(attribute)
        if not attribute.skip_events:
            for handler in self._end_handlers:
                handler(attribute, top)
        bb.end(attribute, value)

    def set(self, key: Union[str, Attribute], value: RawValue | Variant) -> None:
        """Set the attribute's current value (no event snapshot by default)."""
        if not self.enabled:
            return
        if self._any_pollers:
            self._poll()
        attribute = self._resolve(key, value, nested_default=False)
        v = attribute.check(value)
        if not attribute.skip_events:
            for handler in self._set_handlers:
                handler(attribute, v)
        self.blackboard().set(attribute, v)

    def unset(self, key: Union[str, Attribute]) -> None:
        if not self.enabled:
            return
        attribute = self.registry.get(key.label if isinstance(key, Attribute) else key)
        self.blackboard().unset(attribute)

    def _poll(self) -> None:
        now = self.clock.now()
        for channel in self._active:
            channel.handle_poll(now)

    def sample_point(self) -> None:
        """Give sampling services an explicit opportunity to take snapshots.

        The paper's implementation samples from timer interrupts; a Python
        library cannot interrupt user code asynchronously and async-signal-
        safely, so sampling happens at instrumentation calls and at explicit
        ``sample_point()`` calls in long computational phases.  Workload
        simulators call this after every virtual-time advance, which makes
        the sample stream equivalent to the paper's periodic interrupts.
        """
        if self.enabled and self._any_pollers:
            self._poll()

    def push_snapshot(self, extra: Optional[Mapping[str, RawValue | Variant]] = None) -> None:
        """Trigger an explicit snapshot on every active channel."""
        if not self.enabled:
            return
        entries = (
            {k: Variant.of(v) for k, v in extra.items()} if extra else None
        )
        for channel in self._active:
            channel.push_snapshot(entries)

    # -- convenience helpers ------------------------------------------------------------

    @contextmanager
    def region(self, key: Union[str, Attribute], value: RawValue | Variant) -> Iterator[None]:
        """Context manager for a begin/end pair."""
        self.begin(key, value)
        try:
            yield
        finally:
            self.end(key)

    def profile(
        self, label: Union[str, Callable, None] = None, attribute: str = "function"
    ) -> Callable:
        """Decorator marking a function as a region.

        Usable bare (``@cali.profile``) or with a custom label/attribute
        (``@cali.profile("solve", attribute="kernel")``).
        """

        def decorate(func: Callable, name: Optional[str] = None) -> Callable:
            region_name = name if name is not None else func.__qualname__

            @wraps(func)
            def wrapper(*args: Any, **kwargs: Any) -> Any:
                self.begin(attribute, region_name)
                try:
                    return func(*args, **kwargs)
                finally:
                    self.end(attribute)

            return wrapper

        if callable(label):
            return decorate(label)
        return lambda func: decorate(func, label)


_default: Optional[Caliper] = None
_default_lock = threading.Lock()


def default_runtime() -> Caliper:
    """The process-wide runtime instance (created on first use)."""
    global _default
    if _default is None:
        with _default_lock:
            if _default is None:
                _default = Caliper()
    return _default


def set_default_runtime(runtime: Optional[Caliper]) -> None:
    """Replace the process-wide runtime (tests use this to isolate state)."""
    global _default
    with _default_lock:
        _default = runtime
