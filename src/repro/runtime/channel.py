"""Channels: one configured data-collection pipeline.

A channel bundles a runtime configuration profile with the service instances
it names.  Several channels can be active at once on the same runtime (e.g.
a sampling profile channel next to an event trace channel); each sees every
instrumentation event and processes its own snapshots, exactly the
building-block composition Section IV-A describes.
"""

from __future__ import annotations

import threading
import time
from typing import TYPE_CHECKING, Any, Mapping, Optional, Union

from .. import observe
from ..aggregate.ops import WEIGHT_LABEL as _WEIGHT_LABEL
from ..common.attribute import Attribute
from ..common.errors import ChannelError
from ..common.record import Record
from ..common.variant import Variant
from .config import ConfigSet
from .services.base import Service, ServiceRegistry, default_service_registry

if TYPE_CHECKING:  # pragma: no cover
    from .instrumentation import Caliper

__all__ = ["Channel"]


class Channel:
    """A named, configured collection pipeline over a runtime instance."""

    def __init__(
        self,
        name: str,
        caliper: "Caliper",
        config: Union[ConfigSet, Mapping[str, Any], None] = None,
        registry: Optional[ServiceRegistry] = None,
    ) -> None:
        self.name = name
        self.caliper = caliper
        self.config = config if isinstance(config, ConfigSet) else ConfigSet(config)
        registry = registry or default_service_registry()
        if self.config.get_bool("config_check", True):
            # Validate against the documented schema (repro.runtime.schema):
            # unknown keys raise instead of being silently ignored, and
            # deprecated spellings are folded into their current names.
            from .schema import validate_config

            self.config = ConfigSet(validate_config(self.config.as_dict(), registry))
        self.active = True
        #: snapshot records pushed through this channel (Table I's "Snapshots");
        #: counts only snapshots actually processed — attempts while the
        #: channel is inactive land in :attr:`num_suppressed` instead.
        self.num_snapshots = 0
        #: snapshot attempts suppressed because the channel was inactive
        self.num_suppressed = 0
        #: cumulative wall time spent in :meth:`flush` (Table I's flush cost)
        self.flush_seconds = 0.0
        #: number of completed :meth:`flush` calls (the default ``run.seq``
        #: a caller would stamp on the *next* flush)
        self.num_flushes = 0
        #: global (per-run) metadata records attached at flush
        self.globals: dict[str, Variant] = {}

        self.services: list[Service] = [
            registry.create(service_name, self)
            for service_name in self.config.get_list("services", [])
        ]
        # Dispatch lists, precomputed from which hooks each instance wants
        # (class override + per-instance config, see Service.wants).  Event
        # hooks run in priority order (stable within equal priority), so
        # measurement providers observe an event before snapshot triggers.
        by_priority = sorted(self.services, key=lambda s: s.priority)
        self._begin_services = [s for s in by_priority if s.wants("on_begin")]
        self._end_services = [s for s in by_priority if s.wants("on_end")]
        self._set_services = [s for s in by_priority if s.wants("on_set")]
        self._contributors = [s for s in self.services if s.wants("contribute")]
        self._processors = [s for s in self.services if s.wants("process")]
        self._pollers = [s for s in self.services if s.wants("poll")]
        self._skip_services = [
            s for s in by_priority if s.wants("on_sample_skip")
        ]
        #: snapshots dropped by the sampling gate (weights on kept snapshots
        #: account for them in expectation — see repro.sampling)
        self.num_sampled_out = 0
        self._sampler = self._make_sampler()
        # Zero-copy snapshot fast path: legal when nothing contributes extra
        # entries and every processor folds the record immediately without
        # retaining it.  ``snapshot_fastpath=false`` restores the pre-fast-
        # path snapshot build (a fresh dict rebuilt from the blackboard
        # stacks) so benchmarks can measure the legacy cost.
        self._fold_only = all(s.folds_immediately for s in self._processors)
        self._fastpath_enabled = self.config.get_bool("snapshot_fastpath", True)
        #: snapshots served through the zero-copy fold-only path
        self.num_fast_snapshots = 0
        # Per-thread scratch record for fold-only snapshots that need
        # contributor entries: reused across snapshots, so the assembly
        # allocates nothing.
        self._scratch_tls = threading.local()
        self._finished = False
        if self._fastpath_enabled and self._fold_only:
            # Shadow the method with a closure specialized for this channel's
            # service mix: dispatch lists, blackboard accessor, and scratch
            # storage are bound once instead of re-read per snapshot.
            self.push_snapshot = self._make_fast_push()

    def _make_sampler(self):
        """Build the channel's sampling service from ``sampling.*`` config.

        Returns ``None`` (no gate, zero added cost) unless a budget, a
        budget ratio, or a static probability is configured.
        """
        cfg = self.config
        budget = cfg.get("sampling.budget")
        ratio = cfg.get("sampling.budget_ratio")
        probability = cfg.get("sampling.probability")
        if budget is None and ratio is None and probability is None:
            return None
        from ..sampling import ChannelSampler, OverheadController, SamplingGate
        from ..sampling.budget import parse_budget

        auto = isinstance(budget, str) and budget.strip().lower() == "auto"
        budget_ns = None if budget is None or auto else parse_budget(budget)
        min_p = cfg.get_float("sampling.min_probability", 1.0 / 4096.0)
        controller = OverheadController(
            budget_ns=budget_ns,
            budget_ratio=float(ratio) if ratio is not None else None,
            min_probability=min_p,
            max_step=cfg.get_float("sampling.max_step", 4.0),
            smoothing=cfg.get_float("sampling.smoothing", 0.5),
        )
        seed = cfg.get("sampling.seed")
        gate = SamplingGate(
            attribute=cfg.get("sampling.attribute"),
            initial=float(probability) if probability is not None else 1.0,
            min_probability=min_p,
            seed=int(seed) if seed is not None else None,
        )
        return ChannelSampler(
            gate,
            controller,
            probe_every=cfg.get_int("sampling.probe_every", 64),
            control_interval=cfg.get_int("sampling.control_interval", 1024),
            auto_budget=auto,
        )

    @property
    def sampler(self):
        """The channel's sampling service, or ``None`` when not configured."""
        return self._sampler

    # -- event dispatch (called by the Caliper runtime) ---------------------------

    def handle_begin(self, attribute: Attribute, value: Variant) -> None:
        for service in self._begin_services:
            service.on_begin(attribute, value)

    def handle_end(self, attribute: Attribute, value: Variant) -> None:
        for service in self._end_services:
            service.on_end(attribute, value)

    def handle_set(self, attribute: Attribute, value: Variant) -> None:
        for service in self._set_services:
            service.on_set(attribute, value)

    def handle_poll(self, now: float) -> None:
        for service in self._pollers:
            service.poll(now)

    @property
    def has_pollers(self) -> bool:
        return bool(self._pollers)

    # -- snapshots ----------------------------------------------------------------

    def push_snapshot(
        self,
        extra: Optional[dict[str, Variant]] = None,
        at: Optional[float] = None,
    ) -> None:
        """Take a snapshot: blackboard contents + service measurements.

        ``at`` overrides the snapshot's timestamp (used by the sampler when
        it replays missed sampling deadlines after a large virtual-time
        advance); ``extra`` carries trigger information.
        """
        if not self.active:
            self.num_suppressed += 1
            return
        blackboard = self.caliper.blackboard()
        sampler = self._sampler
        weight = None
        probe = False
        if sampler is not None:
            probe = sampler.tick()
            t0 = time.perf_counter() if probe else 0.0
            weight = sampler.decide(blackboard._entries)
            if weight is False:
                self.num_sampled_out += 1
                for service in self._skip_services:
                    service.on_sample_skip(at)
                if probe:
                    sampler.record_drop_probe(time.perf_counter() - t0)
                return
        if self._fastpath_enabled:
            entries = dict(blackboard.snapshot_entries())
        else:
            # Legacy cost emulation for benchmarking: rebuild the snapshot
            # from the value stacks like the pre-fast-path runtime did.
            entries = blackboard.rebuild_entries()
        for service in self._contributors:
            service.contribute(entries, at)
        if extra:
            entries.update(extra)
        if weight is not None:
            entries[_WEIGHT_LABEL] = weight
        record = Record.from_variants(entries)
        self.num_snapshots += 1
        for service in self._processors:
            service.process(record)
        if probe:
            sampler.record_kept_probe(time.perf_counter() - t0)

    def _make_fast_push(self):
        """Specialized ``push_snapshot`` for fold-only channels.

        Every processor folds the record immediately without retaining it, so
        the snapshot needs no fresh dict and no fresh :class:`Record`:

        * no contributors, no ``extra`` — the blackboard's live record is
          handed to the processors as-is (zero copies, zero allocation);
        * otherwise — entries are assembled into a per-thread scratch record
          reused across snapshots.  Contributors (timer) must not write into
          the shared blackboard dict, because other channels on the same
          thread snapshot it too.
        """
        blackboard_of = self.caliper.blackboard
        contributors = tuple(self._contributors)
        processors = tuple(self._processors)
        scratch_tls = self._scratch_tls

        if self._sampler is not None:
            return self._make_sampling_fast_push()

        def push_snapshot(extra=None, at=None, _ch=self):
            if not _ch.active:
                _ch.num_suppressed += 1
                return
            # One TLS probe fetches everything thread-bound: the scratch
            # record, its entry dict, and the blackboard's live views (the
            # blackboard and its dicts are stable per thread).
            st = getattr(scratch_tls, "st", None)
            if st is None:
                blackboard = blackboard_of()
                scratch_record = Record.from_variants({})
                st = (
                    scratch_record,
                    scratch_record._entries,
                    blackboard._entries,
                    blackboard._record,
                )
                scratch_tls.st = st
            if contributors or extra:
                record, scratch, live_entries, _ = st
                scratch.clear()
                scratch.update(live_entries)
                for service in contributors:
                    service.contribute(scratch, at)
                if extra:
                    scratch.update(extra)
            else:
                record = st[3]
            _ch.num_snapshots += 1
            _ch.num_fast_snapshots += 1
            for service in processors:
                service.process(record)

        return push_snapshot

    def _make_sampling_fast_push(self):
        """The fold-only fast path with the sampling gate spliced in front.

        Differences from the unsampled closure: the gate decides against
        the blackboard's *live* entries before any snapshot work, dropped
        events only pay the decision plus the timer-skip hooks, and kept
        snapshots with a weight always assemble into the scratch record so
        ``sample.weight`` never leaks into the shared blackboard dict.
        Every ``probe_every``-th event is timed end-to-end with
        ``perf_counter`` — those measurements are the controller's feedback
        signal.
        """
        blackboard_of = self.caliper.blackboard
        contributors = tuple(self._contributors)
        processors = tuple(self._processors)
        skip_services = tuple(self._skip_services)
        scratch_tls = self._scratch_tls
        sampler = self._sampler
        tick = sampler.tick
        decide = sampler.decide
        record_kept = sampler.record_kept_probe
        record_drop = sampler.record_drop_probe
        perf_counter = time.perf_counter

        def push_snapshot(extra=None, at=None, _ch=self):
            if not _ch.active:
                _ch.num_suppressed += 1
                return
            st = getattr(scratch_tls, "st", None)
            if st is None:
                blackboard = blackboard_of()
                scratch_record = Record.from_variants({})
                st = (
                    scratch_record,
                    scratch_record._entries,
                    blackboard._entries,
                    blackboard._record,
                )
                scratch_tls.st = st
            probe = tick()
            t0 = perf_counter() if probe else 0.0
            weight = decide(st[2])
            if weight is False:
                _ch.num_sampled_out += 1
                for service in skip_services:
                    service.on_sample_skip(at)
                if probe:
                    record_drop(perf_counter() - t0)
                return
            if weight is not None or contributors or extra:
                record, scratch, live_entries, _ = st
                scratch.clear()
                scratch.update(live_entries)
                for service in contributors:
                    service.contribute(scratch, at)
                if extra:
                    scratch.update(extra)
                if weight is not None:
                    scratch[_WEIGHT_LABEL] = weight
            else:
                record = st[3]
            _ch.num_snapshots += 1
            _ch.num_fast_snapshots += 1
            for service in processors:
                service.process(record)
            if probe:
                record_kept(perf_counter() - t0)

        return push_snapshot

    # -- lifecycle --------------------------------------------------------------

    def set_global(self, label: str, value: object) -> None:
        """Attach run-wide metadata (emitted with flushed output)."""
        self.globals[label] = Variant.of(value)  # type: ignore[arg-type]

    def flush(self, run_seq: Optional[int] = None) -> list[Record]:
        """Collect output records from every service.

        Global metadata entries are added to each output record, which is how
        per-process identity (e.g. rank) survives into multi-file datasets.

        ``run_seq`` stamps a caller-supplied monotonic sequence number onto
        this flush's records as ``run.seq``: a run that flushes several
        times (periodic exports, long services) produces batches whose
        records would otherwise interleave indistinguishably once merged
        into one dataset — ordering by ``run.seq`` restores flush order
        deterministically.  ``None`` (the default) stamps nothing.
        """
        start = time.perf_counter()
        records: list[Record] = []
        for service in self.services:
            records.extend(service.flush())
        extra: dict[str, Variant] = dict(self.globals)
        if run_seq is not None:
            extra["run.seq"] = Variant.of(int(run_seq))
        if extra:
            records = [r.with_entries(extra) for r in records]
        self.num_flushes += 1
        elapsed = time.perf_counter() - start
        self.flush_seconds += elapsed
        observe.timing("channel.flush", elapsed, channel=self.name)
        return records

    def finish(self) -> list[Record]:
        """Flush, tear services down, and deactivate the channel."""
        if self._finished:
            raise ChannelError(f"channel {self.name!r} already finished")
        records = self.flush()
        for service in self.services:
            service.finish()
        self.active = False
        self._finished = True
        return records

    # -- self-profiling ---------------------------------------------------------

    def stats_record(self) -> Record:
        """This channel's runtime statistics as one snapshot record.

        The Table I quantities — snapshots processed, aggregation entries,
        memory footprint, flush time — in the system's own data model, so
        overhead studies run as CalQL queries over channel stats records.
        Services contribute their own numbers through
        :meth:`~repro.runtime.services.base.Service.stats`, prefixed with
        the service name (``observe.aggregate.db.entries``).
        """
        entries: dict[str, Variant] = {
            "observe.kind": Variant.of("channel"),
            "observe.channel": Variant.of(self.name),
            "observe.active": Variant.of(self.active),
            "observe.snapshots": Variant.of(self.num_snapshots),
            "observe.snapshots.fastpath": Variant.of(self.num_fast_snapshots),
            "observe.snapshots.suppressed": Variant.of(self.num_suppressed),
            "observe.flush.time": Variant.of(self.flush_seconds),
        }
        if self._sampler is not None:
            entries["observe.snapshots.sampled_out"] = Variant.of(
                self.num_sampled_out
            )
            for key, value in self._sampler.stats().items():
                entries[f"observe.sampling.{key}"] = Variant.of(value)
        for service in self.services:
            for key, value in service.stats().items():
                entries[f"observe.{service.name}.{key}"] = Variant.of(value)
        return Record.from_variants(entries)

    def service(self, name: str) -> Service:
        """Look up a service instance by name (for tests/introspection)."""
        for s in self.services:
            if s.name == name:
                return s
        raise ChannelError(f"channel {self.name!r} has no service {name!r}")

    def __repr__(self) -> str:
        names = ",".join(s.name for s in self.services)
        return f"Channel({self.name!r}, services=[{names}], snapshots={self.num_snapshots})"
