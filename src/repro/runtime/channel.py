"""Channels: one configured data-collection pipeline.

A channel bundles a runtime configuration profile with the service instances
it names.  Several channels can be active at once on the same runtime (e.g.
a sampling profile channel next to an event trace channel); each sees every
instrumentation event and processes its own snapshots, exactly the
building-block composition Section IV-A describes.
"""

from __future__ import annotations

import threading
import time
from typing import TYPE_CHECKING, Any, Mapping, Optional, Union

from .. import observe
from ..common.attribute import Attribute
from ..common.errors import ChannelError
from ..common.record import Record
from ..common.variant import Variant
from .config import ConfigSet
from .services.base import Service, ServiceRegistry, default_service_registry

if TYPE_CHECKING:  # pragma: no cover
    from .instrumentation import Caliper

__all__ = ["Channel"]


class Channel:
    """A named, configured collection pipeline over a runtime instance."""

    def __init__(
        self,
        name: str,
        caliper: "Caliper",
        config: Union[ConfigSet, Mapping[str, Any], None] = None,
        registry: Optional[ServiceRegistry] = None,
    ) -> None:
        self.name = name
        self.caliper = caliper
        self.config = config if isinstance(config, ConfigSet) else ConfigSet(config)
        registry = registry or default_service_registry()
        if self.config.get_bool("config_check", True):
            # Validate against the documented schema (repro.runtime.schema):
            # unknown keys raise instead of being silently ignored, and
            # deprecated spellings are folded into their current names.
            from .schema import validate_config

            self.config = ConfigSet(validate_config(self.config.as_dict(), registry))
        self.active = True
        #: snapshot records pushed through this channel (Table I's "Snapshots");
        #: counts only snapshots actually processed — attempts while the
        #: channel is inactive land in :attr:`num_suppressed` instead.
        self.num_snapshots = 0
        #: snapshot attempts suppressed because the channel was inactive
        self.num_suppressed = 0
        #: cumulative wall time spent in :meth:`flush` (Table I's flush cost)
        self.flush_seconds = 0.0
        #: number of completed :meth:`flush` calls (the default ``run.seq``
        #: a caller would stamp on the *next* flush)
        self.num_flushes = 0
        #: global (per-run) metadata records attached at flush
        self.globals: dict[str, Variant] = {}

        self.services: list[Service] = [
            registry.create(service_name, self)
            for service_name in self.config.get_list("services", [])
        ]
        # Dispatch lists, precomputed from which hooks each instance wants
        # (class override + per-instance config, see Service.wants).  Event
        # hooks run in priority order (stable within equal priority), so
        # measurement providers observe an event before snapshot triggers.
        by_priority = sorted(self.services, key=lambda s: s.priority)
        self._begin_services = [s for s in by_priority if s.wants("on_begin")]
        self._end_services = [s for s in by_priority if s.wants("on_end")]
        self._set_services = [s for s in by_priority if s.wants("on_set")]
        self._contributors = [s for s in self.services if s.wants("contribute")]
        self._processors = [s for s in self.services if s.wants("process")]
        self._pollers = [s for s in self.services if s.wants("poll")]
        # Zero-copy snapshot fast path: legal when nothing contributes extra
        # entries and every processor folds the record immediately without
        # retaining it.  ``snapshot_fastpath=false`` restores the pre-fast-
        # path snapshot build (a fresh dict rebuilt from the blackboard
        # stacks) so benchmarks can measure the legacy cost.
        self._fold_only = all(s.folds_immediately for s in self._processors)
        self._fastpath_enabled = self.config.get_bool("snapshot_fastpath", True)
        #: snapshots served through the zero-copy fold-only path
        self.num_fast_snapshots = 0
        # Per-thread scratch record for fold-only snapshots that need
        # contributor entries: reused across snapshots, so the assembly
        # allocates nothing.
        self._scratch_tls = threading.local()
        self._finished = False
        if self._fastpath_enabled and self._fold_only:
            # Shadow the method with a closure specialized for this channel's
            # service mix: dispatch lists, blackboard accessor, and scratch
            # storage are bound once instead of re-read per snapshot.
            self.push_snapshot = self._make_fast_push()

    # -- event dispatch (called by the Caliper runtime) ---------------------------

    def handle_begin(self, attribute: Attribute, value: Variant) -> None:
        for service in self._begin_services:
            service.on_begin(attribute, value)

    def handle_end(self, attribute: Attribute, value: Variant) -> None:
        for service in self._end_services:
            service.on_end(attribute, value)

    def handle_set(self, attribute: Attribute, value: Variant) -> None:
        for service in self._set_services:
            service.on_set(attribute, value)

    def handle_poll(self, now: float) -> None:
        for service in self._pollers:
            service.poll(now)

    @property
    def has_pollers(self) -> bool:
        return bool(self._pollers)

    # -- snapshots ----------------------------------------------------------------

    def push_snapshot(
        self,
        extra: Optional[dict[str, Variant]] = None,
        at: Optional[float] = None,
    ) -> None:
        """Take a snapshot: blackboard contents + service measurements.

        ``at`` overrides the snapshot's timestamp (used by the sampler when
        it replays missed sampling deadlines after a large virtual-time
        advance); ``extra`` carries trigger information.
        """
        if not self.active:
            self.num_suppressed += 1
            return
        blackboard = self.caliper.blackboard()
        if self._fastpath_enabled:
            entries = dict(blackboard.snapshot_entries())
        else:
            # Legacy cost emulation for benchmarking: rebuild the snapshot
            # from the value stacks like the pre-fast-path runtime did.
            entries = blackboard.rebuild_entries()
        for service in self._contributors:
            service.contribute(entries, at)
        if extra:
            entries.update(extra)
        record = Record.from_variants(entries)
        self.num_snapshots += 1
        for service in self._processors:
            service.process(record)

    def _make_fast_push(self):
        """Specialized ``push_snapshot`` for fold-only channels.

        Every processor folds the record immediately without retaining it, so
        the snapshot needs no fresh dict and no fresh :class:`Record`:

        * no contributors, no ``extra`` — the blackboard's live record is
          handed to the processors as-is (zero copies, zero allocation);
        * otherwise — entries are assembled into a per-thread scratch record
          reused across snapshots.  Contributors (timer) must not write into
          the shared blackboard dict, because other channels on the same
          thread snapshot it too.
        """
        blackboard_of = self.caliper.blackboard
        contributors = tuple(self._contributors)
        processors = tuple(self._processors)
        scratch_tls = self._scratch_tls

        def push_snapshot(extra=None, at=None, _ch=self):
            if not _ch.active:
                _ch.num_suppressed += 1
                return
            # One TLS probe fetches everything thread-bound: the scratch
            # record, its entry dict, and the blackboard's live views (the
            # blackboard and its dicts are stable per thread).
            st = getattr(scratch_tls, "st", None)
            if st is None:
                blackboard = blackboard_of()
                scratch_record = Record.from_variants({})
                st = (
                    scratch_record,
                    scratch_record._entries,
                    blackboard._entries,
                    blackboard._record,
                )
                scratch_tls.st = st
            if contributors or extra:
                record, scratch, live_entries, _ = st
                scratch.clear()
                scratch.update(live_entries)
                for service in contributors:
                    service.contribute(scratch, at)
                if extra:
                    scratch.update(extra)
            else:
                record = st[3]
            _ch.num_snapshots += 1
            _ch.num_fast_snapshots += 1
            for service in processors:
                service.process(record)

        return push_snapshot

    # -- lifecycle --------------------------------------------------------------

    def set_global(self, label: str, value: object) -> None:
        """Attach run-wide metadata (emitted with flushed output)."""
        self.globals[label] = Variant.of(value)  # type: ignore[arg-type]

    def flush(self, run_seq: Optional[int] = None) -> list[Record]:
        """Collect output records from every service.

        Global metadata entries are added to each output record, which is how
        per-process identity (e.g. rank) survives into multi-file datasets.

        ``run_seq`` stamps a caller-supplied monotonic sequence number onto
        this flush's records as ``run.seq``: a run that flushes several
        times (periodic exports, long services) produces batches whose
        records would otherwise interleave indistinguishably once merged
        into one dataset — ordering by ``run.seq`` restores flush order
        deterministically.  ``None`` (the default) stamps nothing.
        """
        start = time.perf_counter()
        records: list[Record] = []
        for service in self.services:
            records.extend(service.flush())
        extra: dict[str, Variant] = dict(self.globals)
        if run_seq is not None:
            extra["run.seq"] = Variant.of(int(run_seq))
        if extra:
            records = [r.with_entries(extra) for r in records]
        self.num_flushes += 1
        elapsed = time.perf_counter() - start
        self.flush_seconds += elapsed
        observe.timing("channel.flush", elapsed, channel=self.name)
        return records

    def finish(self) -> list[Record]:
        """Flush, tear services down, and deactivate the channel."""
        if self._finished:
            raise ChannelError(f"channel {self.name!r} already finished")
        records = self.flush()
        for service in self.services:
            service.finish()
        self.active = False
        self._finished = True
        return records

    # -- self-profiling ---------------------------------------------------------

    def stats_record(self) -> Record:
        """This channel's runtime statistics as one snapshot record.

        The Table I quantities — snapshots processed, aggregation entries,
        memory footprint, flush time — in the system's own data model, so
        overhead studies run as CalQL queries over channel stats records.
        Services contribute their own numbers through
        :meth:`~repro.runtime.services.base.Service.stats`, prefixed with
        the service name (``observe.aggregate.db.entries``).
        """
        entries: dict[str, Variant] = {
            "observe.kind": Variant.of("channel"),
            "observe.channel": Variant.of(self.name),
            "observe.active": Variant.of(self.active),
            "observe.snapshots": Variant.of(self.num_snapshots),
            "observe.snapshots.fastpath": Variant.of(self.num_fast_snapshots),
            "observe.snapshots.suppressed": Variant.of(self.num_suppressed),
            "observe.flush.time": Variant.of(self.flush_seconds),
        }
        for service in self.services:
            for key, value in service.stats().items():
                entries[f"observe.{service.name}.{key}"] = Variant.of(value)
        return Record.from_variants(entries)

    def service(self, name: str) -> Service:
        """Look up a service instance by name (for tests/introspection)."""
        for s in self.services:
            if s.name == name:
                return s
        raise ChannelError(f"channel {self.name!r} has no service {name!r}")

    def __repr__(self) -> str:
        names = ",".join(s.name for s in self.services)
        return f"Channel({self.name!r}, services=[{names}], snapshots={self.num_snapshots})"
