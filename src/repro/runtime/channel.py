"""Channels: one configured data-collection pipeline.

A channel bundles a runtime configuration profile with the service instances
it names.  Several channels can be active at once on the same runtime (e.g.
a sampling profile channel next to an event trace channel); each sees every
instrumentation event and processes its own snapshots, exactly the
building-block composition Section IV-A describes.
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING, Any, Mapping, Optional, Union

from .. import observe
from ..common.attribute import Attribute
from ..common.errors import ChannelError
from ..common.record import Record
from ..common.variant import Variant
from .config import ConfigSet
from .services.base import Service, ServiceRegistry, default_service_registry

if TYPE_CHECKING:  # pragma: no cover
    from .instrumentation import Caliper

__all__ = ["Channel"]


class Channel:
    """A named, configured collection pipeline over a runtime instance."""

    def __init__(
        self,
        name: str,
        caliper: "Caliper",
        config: Union[ConfigSet, Mapping[str, Any], None] = None,
        registry: Optional[ServiceRegistry] = None,
    ) -> None:
        self.name = name
        self.caliper = caliper
        self.config = config if isinstance(config, ConfigSet) else ConfigSet(config)
        self.active = True
        #: snapshot records pushed through this channel (Table I's "Snapshots");
        #: counts only snapshots actually processed — attempts while the
        #: channel is inactive land in :attr:`num_suppressed` instead.
        self.num_snapshots = 0
        #: snapshot attempts suppressed because the channel was inactive
        self.num_suppressed = 0
        #: cumulative wall time spent in :meth:`flush` (Table I's flush cost)
        self.flush_seconds = 0.0
        #: global (per-run) metadata records attached at flush
        self.globals: dict[str, Variant] = {}

        registry = registry or default_service_registry()
        self.services: list[Service] = [
            registry.create(service_name, self)
            for service_name in self.config.get_list("services", [])
        ]
        # Dispatch lists, precomputed from which hooks each class overrides.
        # Event hooks run in priority order (stable within equal priority),
        # so measurement providers observe an event before snapshot triggers.
        by_priority = sorted(self.services, key=lambda s: s.priority)
        self._begin_services = [s for s in by_priority if type(s).overrides("on_begin")]
        self._end_services = [s for s in by_priority if type(s).overrides("on_end")]
        self._set_services = [s for s in by_priority if type(s).overrides("on_set")]
        self._contributors = [s for s in self.services if type(s).overrides("contribute")]
        self._processors = [s for s in self.services if type(s).overrides("process")]
        self._pollers = [s for s in self.services if type(s).overrides("poll")]
        self._finished = False

    # -- event dispatch (called by the Caliper runtime) ---------------------------

    def handle_begin(self, attribute: Attribute, value: Variant) -> None:
        for service in self._begin_services:
            service.on_begin(attribute, value)

    def handle_end(self, attribute: Attribute, value: Variant) -> None:
        for service in self._end_services:
            service.on_end(attribute, value)

    def handle_set(self, attribute: Attribute, value: Variant) -> None:
        for service in self._set_services:
            service.on_set(attribute, value)

    def handle_poll(self, now: float) -> None:
        for service in self._pollers:
            service.poll(now)

    @property
    def has_pollers(self) -> bool:
        return bool(self._pollers)

    # -- snapshots ----------------------------------------------------------------

    def push_snapshot(
        self,
        extra: Optional[dict[str, Variant]] = None,
        at: Optional[float] = None,
    ) -> None:
        """Take a snapshot: blackboard contents + service measurements.

        ``at`` overrides the snapshot's timestamp (used by the sampler when
        it replays missed sampling deadlines after a large virtual-time
        advance); ``extra`` carries trigger information.
        """
        if not self.active:
            self.num_suppressed += 1
            return
        entries = dict(self.caliper.blackboard().snapshot_entries())
        for service in self._contributors:
            service.contribute(entries, at)
        if extra:
            entries.update(extra)
        record = Record.from_variants(entries)
        self.num_snapshots += 1
        for service in self._processors:
            service.process(record)

    # -- lifecycle --------------------------------------------------------------

    def set_global(self, label: str, value: object) -> None:
        """Attach run-wide metadata (emitted with flushed output)."""
        self.globals[label] = Variant.of(value)  # type: ignore[arg-type]

    def flush(self) -> list[Record]:
        """Collect output records from every service.

        Global metadata entries are added to each output record, which is how
        per-process identity (e.g. rank) survives into multi-file datasets.
        """
        start = time.perf_counter()
        records: list[Record] = []
        for service in self.services:
            records.extend(service.flush())
        if self.globals:
            records = [r.with_entries(self.globals) for r in records]
        elapsed = time.perf_counter() - start
        self.flush_seconds += elapsed
        observe.timing("channel.flush", elapsed, channel=self.name)
        return records

    def finish(self) -> list[Record]:
        """Flush, tear services down, and deactivate the channel."""
        if self._finished:
            raise ChannelError(f"channel {self.name!r} already finished")
        records = self.flush()
        for service in self.services:
            service.finish()
        self.active = False
        self._finished = True
        return records

    # -- self-profiling ---------------------------------------------------------

    def stats_record(self) -> Record:
        """This channel's runtime statistics as one snapshot record.

        The Table I quantities — snapshots processed, aggregation entries,
        memory footprint, flush time — in the system's own data model, so
        overhead studies run as CalQL queries over channel stats records.
        Services contribute their own numbers through
        :meth:`~repro.runtime.services.base.Service.stats`, prefixed with
        the service name (``observe.aggregate.db.entries``).
        """
        entries: dict[str, Variant] = {
            "observe.kind": Variant.of("channel"),
            "observe.channel": Variant.of(self.name),
            "observe.active": Variant.of(self.active),
            "observe.snapshots": Variant.of(self.num_snapshots),
            "observe.snapshots.suppressed": Variant.of(self.num_suppressed),
            "observe.flush.time": Variant.of(self.flush_seconds),
        }
        for service in self.services:
            for key, value in service.stats().items():
                entries[f"observe.{service.name}.{key}"] = Variant.of(value)
        return Record.from_variants(entries)

    def service(self, name: str) -> Service:
        """Look up a service instance by name (for tests/introspection)."""
        for s in self.services:
            if s.name == name:
                return s
        raise ChannelError(f"channel {self.name!r} has no service {name!r}")

    def __repr__(self) -> str:
        names = ",".join(s.name for s in self.services)
        return f"Channel({self.name!r}, services=[{names}], snapshots={self.num_snapshots})"
