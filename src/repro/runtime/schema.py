"""The documented runtime configuration schema.

Every knob a built-in channel/service reads is declared here, in one place.
:func:`validate_config` checks a configuration mapping against the schema at
channel-creation time: unknown keys raise :class:`~repro.common.errors.ConfigError`
(with a close-match suggestion) instead of being silently ignored, and
superseded spellings are folded into their current names with a one-time
:class:`DeprecationWarning`.

Channel-level keys
==================

=====================  ========================================================
``services``           list of service names to instantiate on the channel
``snapshot_fastpath``  bool — zero-copy snapshot fast path (default true)
``config_check``       bool — set false to skip this schema validation
=====================  ========================================================

The ``sampling.*`` keys are also channel-level (the sampling gate sits in
the channel's snapshot path, ahead of every service — see
``docs/sampling.md``):

==============================  ===============================================
``sampling.budget``             per-event snapshot budget (``"200ns"``,
                                ``"1.5us"``, bare ns number) or ``"auto"``
                                to adopt a server-advertised budget
``sampling.budget_ratio``       overhead as a fraction of application wall
                                time per event, in (0, 1)
``sampling.probability``        static keep probability (no feedback loop)
``sampling.attribute``          blackboard label keying per-value
                                probabilities (waterfilled); default global
``sampling.min_probability``    probability floor (default 1/4096)
``sampling.probe_every``        events between cost probes (default 64)
``sampling.control_interval``   events between controller steps (default 1024)
``sampling.max_step``           max probability change factor per step
``sampling.smoothing``          EWMA factor on cost estimates (default 0.5)
``sampling.seed``               RNG seed for reproducible sampling decisions
==============================  ===============================================

Service keys (``<service>.<key>``)
==================================

``aggregate``
    ``config`` (CalQL text), ``scheme`` (pre-parsed scheme object),
    ``key_strategy`` (``tuple``/``string``), ``rename_count`` (bool),
    ``fold_plan`` (``compiled``/``interpreted``), ``key_cache`` (bool)
``event``
    ``trigger`` (attribute list), ``mark`` (bool), ``trigger_set`` (bool)
``netflush``
    ``host``, ``port``, ``stream`` (bool), ``payload``
    (``records``/``states``), ``batch_size``, ``timeout``, ``retries``,
    ``spool_dir``, ``delete_spool`` (bool), ``scheme``, ``failover_after``
``recorder``
    ``filename``, ``directory``
``sampler``
    ``period`` (seconds), ``max_catchup``
``timer``
    ``offset`` (bool), ``inclusive`` (bool), ``trim_hooks`` (bool)
``trace``
    ``buffer_limit``

Keys scoped to a *custom* service registered on the channel's
:class:`~repro.runtime.services.base.ServiceRegistry` are accepted as-is:
the schema only constrains the services it knows about.
"""

from __future__ import annotations

import difflib
import warnings
from typing import Any, Mapping, Optional

from ..common.errors import ConfigError
from .services.base import ServiceRegistry

__all__ = ["ALIASES", "CHANNEL_KEYS", "SERVICE_KEYS", "validate_config"]

#: keys read by the channel itself (not scoped to a service)
CHANNEL_KEYS = frozenset({"services", "snapshot_fastpath", "config_check"})

#: keys read by each built-in service, scoped as ``<service>.<key>``.
#: ``sampling`` is not a service — the gate lives in the channel's push
#: path — but its keys scope and validate the same way.
SERVICE_KEYS: dict[str, frozenset] = {
    "aggregate": frozenset(
        {"config", "scheme", "key_strategy", "rename_count", "fold_plan", "key_cache"}
    ),
    "event": frozenset({"trigger", "mark", "trigger_set"}),
    "netflush": frozenset(
        {
            "host",
            "port",
            "stream",
            "payload",
            "batch_size",
            "timeout",
            "retries",
            "spool_dir",
            "delete_spool",
            "scheme",
            "failover_after",
        }
    ),
    "recorder": frozenset({"filename", "directory"}),
    "sampler": frozenset({"period", "max_catchup"}),
    "sampling": frozenset(
        {
            "budget",
            "budget_ratio",
            "probability",
            "attribute",
            "min_probability",
            "probe_every",
            "control_interval",
            "max_step",
            "smoothing",
            "seed",
        }
    ),
    "timer": frozenset({"offset", "inclusive", "trim_hooks"}),
    "trace": frozenset({"buffer_limit"}),
}

#: superseded spellings — accepted, folded into the current name, and
#: reported once per process with a DeprecationWarning
ALIASES: dict[str, str] = {
    "fastpath": "snapshot_fastpath",
    "aggregate.plan": "aggregate.fold_plan",
    "aggregate.query": "aggregate.config",
    "timer.trim": "timer.trim_hooks",
    "netflush.batch": "netflush.batch_size",
    "netflush.spool": "netflush.spool_dir",
    "sampling.rate": "sampling.probability",
    "sampling.interval": "sampling.control_interval",
    "sampling.overhead_budget": "sampling.budget",
}

_warned_aliases: set = set()


def _warn_alias(old: str, new: str) -> None:
    if old in _warned_aliases:
        return
    _warned_aliases.add(old)
    warnings.warn(
        f"config key {old!r} is deprecated; use {new!r}",
        DeprecationWarning,
        stacklevel=4,
    )


def _suggest(key: str, candidates) -> str:
    matches = difflib.get_close_matches(key, sorted(candidates), n=1)
    return f" (did you mean {matches[0]!r}?)" if matches else ""


def validate_config(
    settings: Mapping[str, Any], registry: Optional[ServiceRegistry] = None
) -> dict[str, Any]:
    """Check ``settings`` against the schema; return the normalized mapping.

    Aliased keys are renamed to their current spelling (emitting a
    once-per-process :class:`DeprecationWarning`); unknown keys raise
    :class:`ConfigError` naming the key and the closest valid spelling.
    Keys scoped to a custom (non-built-in) service known to ``registry``
    pass through unchecked.
    """
    custom = set(registry.known()) - set(SERVICE_KEYS) if registry else set()
    normalized: dict[str, Any] = {}
    for key, value in settings.items():
        target = ALIASES.get(key)
        if target is not None:
            _warn_alias(key, target)
            key = target
        if key in normalized:
            raise ConfigError(
                f"config key {key!r} given twice (directly and via a "
                "deprecated alias)"
            )
        _check_key(key, custom)
        normalized[key] = value
    return normalized


def _check_key(key: str, custom_services: set) -> None:
    if key in CHANNEL_KEYS:
        return
    service, sep, sub = key.partition(".")
    if sep and service in SERVICE_KEYS:
        if sub in SERVICE_KEYS[service]:
            return
        scoped = {f"{service}.{k}" for k in SERVICE_KEYS[service]}
        raise ConfigError(
            f"unknown config key {key!r}: service {service!r} has no "
            f"option {sub!r}{_suggest(key, scoped)}"
        )
    if sep and service in custom_services:
        return  # custom service: its options are its own business
    valid = set(CHANNEL_KEYS)
    for svc, keys in SERVICE_KEYS.items():
        valid.update(f"{svc}.{k}" for k in keys)
    raise ConfigError(
        f"unknown config key {key!r}{_suggest(key, valid)}; "
        "set config_check=false to bypass schema validation"
    )
