"""Runtime configuration profiles.

Caliper configures its runtime through profiles of key=value settings
(environment variables or config files).  :class:`ConfigSet` is that idea as
a small typed-access wrapper over a dict; channels hand each service a view
of it.  Keys are dotted, service-prefixed strings, e.g.::

    {
        "services":         ["event", "timer", "aggregate"],
        "aggregate.config": "AGGREGATE count, sum(time.duration) GROUP BY function",
        "sampler.period":   0.01,
    }

:func:`config_from_env` reads the same keys from environment variables
(``REPRO_SERVICES``, ``REPRO_AGGREGATE_CONFIG``, ...) so scripted runs can
switch profiles without code changes, as the paper describes.
"""

from __future__ import annotations

import os
from typing import Any, Iterable, Mapping, Optional

from ..common.errors import ConfigError

__all__ = ["ConfigSet", "config_from_env", "config_from_file", "ENV_PREFIX"]

ENV_PREFIX = "REPRO_"


class ConfigSet:
    """Typed access to a flat dict of runtime settings."""

    def __init__(self, settings: Optional[Mapping[str, Any]] = None) -> None:
        self._settings: dict[str, Any] = dict(settings or {})

    # -- raw access -----------------------------------------------------------

    def get(self, key: str, default: Any = None) -> Any:
        return self._settings.get(key, default)

    def __contains__(self, key: str) -> bool:
        return key in self._settings

    def keys(self) -> Iterable[str]:
        return self._settings.keys()

    def as_dict(self) -> dict[str, Any]:
        return dict(self._settings)

    # -- typed access ------------------------------------------------------------

    def get_string(self, key: str, default: str = "") -> str:
        value = self._settings.get(key, default)
        if not isinstance(value, str):
            raise ConfigError(f"config key {key!r} must be a string, got {value!r}")
        return value

    def get_bool(self, key: str, default: bool = False) -> bool:
        value = self._settings.get(key, default)
        if isinstance(value, bool):
            return value
        if isinstance(value, str):
            lowered = value.strip().lower()
            if lowered in ("true", "1", "yes", "on"):
                return True
            if lowered in ("false", "0", "no", "off"):
                return False
        raise ConfigError(f"config key {key!r} must be a boolean, got {value!r}")

    def get_int(self, key: str, default: int = 0) -> int:
        value = self._settings.get(key, default)
        try:
            if isinstance(value, bool):
                raise TypeError
            return int(value)
        except (TypeError, ValueError):
            raise ConfigError(f"config key {key!r} must be an integer, got {value!r}") from None

    def get_float(self, key: str, default: float = 0.0) -> float:
        value = self._settings.get(key, default)
        try:
            if isinstance(value, bool):
                raise TypeError
            return float(value)
        except (TypeError, ValueError):
            raise ConfigError(f"config key {key!r} must be a number, got {value!r}") from None

    def get_list(self, key: str, default: Optional[list[str]] = None) -> list[str]:
        """A list value; strings are split on commas."""
        value = self._settings.get(key)
        if value is None:
            return list(default or [])
        if isinstance(value, str):
            return [item.strip() for item in value.split(",") if item.strip()]
        if isinstance(value, (list, tuple)):
            return [str(item) for item in value]
        raise ConfigError(f"config key {key!r} must be a list, got {value!r}")

    def scoped(self, prefix: str) -> "ConfigSet":
        """A view of all ``prefix.``-keys with the prefix stripped."""
        dot = prefix if prefix.endswith(".") else prefix + "."
        return ConfigSet(
            {k[len(dot):]: v for k, v in self._settings.items() if k.startswith(dot)}
        )

    def __repr__(self) -> str:
        return f"ConfigSet({self._settings!r})"


def config_from_file(path: "str | os.PathLike") -> ConfigSet:
    """Read a runtime configuration profile from a text file.

    Caliper-style ``key = value`` lines; ``#`` starts a comment; blank lines
    ignored.  Values stay strings (the typed getters convert on access)::

        # profile: event-mode aggregation
        services         = event, timer, aggregate
        aggregate.config = AGGREGATE count, sum(time.duration) GROUP BY function
    """
    settings: dict[str, Any] = {}
    with open(path, "r", encoding="utf-8") as stream:
        for lineno, line in enumerate(stream, start=1):
            stripped = line.strip()
            if not stripped or stripped.startswith("#"):
                continue
            if "=" not in stripped:
                raise ConfigError(
                    f"{path}:{lineno}: expected 'key = value', got {stripped!r}"
                )
            key, _, value = stripped.partition("=")
            settings[key.strip()] = value.strip()
    return ConfigSet(settings)


def config_from_env(
    environ: Optional[Mapping[str, str]] = None, prefix: str = ENV_PREFIX
) -> ConfigSet:
    """Build a ConfigSet from environment variables.

    ``REPRO_AGGREGATE_CONFIG`` becomes ``aggregate.config``; the first
    underscore after the prefix separates the service name from the setting
    (further underscores are preserved): ``REPRO_SAMPLER_PERIOD`` ->
    ``sampler.period``, ``REPRO_SERVICES`` -> ``services``.
    """
    environ = environ if environ is not None else os.environ
    settings: dict[str, Any] = {}
    for name, value in environ.items():
        if not name.startswith(prefix):
            continue
        rest = name[len(prefix):].lower()
        if "_" in rest:
            head, tail = rest.split("_", 1)
            key = f"{head}.{tail}"
        else:
            key = rest
        settings[key] = value
    return ConfigSet(settings)
