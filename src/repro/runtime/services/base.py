"""Service base class and registry.

Caliper's runtime is a set of independent building blocks ("services")
combined at runtime through a callback API (Section IV-A).  A
:class:`Service` subclass opts into the hooks it needs by overriding them;
the :class:`Channel` inspects which hooks are overridden and only dispatches
to services that actually implement each one, keeping the per-event hot path
short.

Hook call order within one snapshot:

1. ``contribute(entries, at)`` — measurement providers (timer) add entries;
2. ``process(record)`` — consumers (aggregate, trace) receive the finished
   snapshot record.

Lifecycle hooks: ``on_begin``/``on_end``/``on_set`` fire *before* the
blackboard update (so snapshot triggers attribute elapsed time to the state
that was current during the elapsed interval); ``poll`` fires after every
instrumentation call for sampling-style services; ``flush`` returns output
records; ``finish`` releases resources at channel teardown.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from ...common.attribute import Attribute
from ...common.errors import ServiceError
from ...common.record import Record
from ...common.variant import Variant

if TYPE_CHECKING:  # pragma: no cover
    from ..channel import Channel

__all__ = ["Service", "ServiceRegistry", "default_service_registry"]


class Service:
    """Base class; subclasses override the hooks they need."""

    #: service name used in the ``services`` config list
    name: str = ""
    #: dispatch order for the begin/end/set hooks — lower runs earlier.
    #: Measurement providers (timer) use a low priority so their hooks run
    #: before snapshot-triggering services (event) observe the event.
    priority: int = 100
    #: True for processors that fold each snapshot record immediately and
    #: never retain a reference to it (the aggregate service).  When *every*
    #: processor on a channel declares this, ``push_snapshot`` may hand out
    #: the blackboard's live record without copying — services that store
    #: records (trace, recorder, netflush) must leave this False.
    folds_immediately: bool = False

    def __init__(self, channel: "Channel") -> None:
        self.channel = channel
        #: scoped config view, e.g. the aggregate service sees "config" for
        #: the "aggregate.config" key
        self.config = channel.config.scoped(self.name) if self.name else channel.config

    # -- lifecycle hooks (override as needed) -----------------------------------

    def on_begin(self, attribute: Attribute, value: Variant) -> None:
        """Called before a blackboard ``begin`` update."""

    def on_end(self, attribute: Attribute, value: Variant) -> None:
        """Called before a blackboard ``end`` update (value = popped value)."""

    def on_set(self, attribute: Attribute, value: Variant) -> None:
        """Called before a blackboard ``set`` update."""

    def contribute(self, entries: dict[str, Variant], at: Optional[float]) -> None:
        """Add measurement entries to a snapshot being built."""

    def process(self, record: Record) -> None:
        """Consume a finished snapshot record."""

    def poll(self, now: float) -> None:
        """Sampling opportunity; called after every instrumentation call."""

    def on_sample_skip(self, at: Optional[float]) -> None:
        """Called when the channel's sampling gate drops a snapshot.

        Measurement providers that accumulate *between* snapshots (the
        timer) must reset their interval state here: a kept snapshot after
        dropped ones should cover only its own interval, so the weighted
        sums stay unbiased — dropped intervals go uncollected rather than
        silently attributed to the next kept snapshot.
        """

    def flush(self) -> list[Record]:
        """Return this service's output records (may be called repeatedly)."""
        return []

    def finish(self) -> None:
        """Teardown at channel close."""

    def stats(self) -> dict[str, object]:
        """Self-profiling numbers for the channel's stats record.

        Keys are dotted metric names scoped by the channel under
        ``observe.<service>.<key>``; values must be plain scalars.
        """
        return {}

    # -- introspection ------------------------------------------------------------

    @classmethod
    def overrides(cls, hook: str) -> bool:
        """True if this class implements ``hook`` itself (not the base no-op)."""
        return getattr(cls, hook) is not getattr(Service, hook)

    def wants(self, hook: str) -> bool:
        """True if this *instance* needs ``hook`` dispatched to it.

        Defaults to :meth:`overrides`; services whose hook need depends on
        configuration (e.g. the timer's begin/end tracking, only used for
        inclusive time) override this so the channel's per-event dispatch
        lists stay minimal.
        """
        return type(self).overrides(hook)


class ServiceRegistry:
    """Maps service names to classes; channels instantiate from here."""

    def __init__(self) -> None:
        self._classes: dict[str, type[Service]] = {}

    def register(self, cls: type[Service]) -> type[Service]:
        """Register a service class (usable as a decorator)."""
        if not cls.name:
            raise ServiceError(f"service class {cls.__name__} has no name")
        if cls.name in self._classes:
            raise ServiceError(f"service {cls.name!r} is already registered")
        self._classes[cls.name] = cls
        return cls

    def known(self) -> list[str]:
        return sorted(self._classes)

    def __contains__(self, name: str) -> bool:
        return name in self._classes

    def create(self, name: str, channel: "Channel") -> Service:
        cls = self._classes.get(name)
        if cls is None:
            raise ServiceError(
                f"unknown service {name!r}; known services: {', '.join(self.known())}"
            )
        return cls(channel)


_default_registry: Optional[ServiceRegistry] = None


def default_service_registry() -> ServiceRegistry:
    """The registry with all built-in services (lazily populated)."""
    global _default_registry
    if _default_registry is None:
        _default_registry = ServiceRegistry()
        # Import here to avoid a cycle: service modules import Service from us.
        from ...net.service import NetworkFlushService
        from .aggregate import AggregateService
        from .event import EventService
        from .recorder import RecorderService
        from .sampler import SamplerService
        from .timer import TimerService
        from .trace import TraceService

        for cls in (
            AggregateService,
            EventService,
            NetworkFlushService,
            RecorderService,
            SamplerService,
            TimerService,
            TraceService,
        ):
            _default_registry.register(cls)
    return _default_registry
