"""The on-line aggregation service (the paper's Section IV-B).

Receives snapshot records, extracts the aggregation key, and streams the
aggregation attributes into an in-memory :class:`AggregationDB` — input
records are never stored.  One database exists per monitored thread, so the
hot path takes no locks; consequently (and faithfully to the paper) values
are *not* aggregated across threads at runtime: flushed records carry a
``thread.id`` entry when more than one thread contributed, and a
post-processing query merges them.

**Context-key caching.**  The blackboard's contribution to the aggregation
key only changes at ``begin``/``end``/``set``, and the blackboard interns
nested path values, so re-entering a region puts the *identical* ``Variant``
objects back into the snapshot.  The service exploits this: per thread it
memoizes ``id`` tuples of the GROUP BY entry values -> the entry's state
lists, so steady-state snapshots skip key extraction (tuple building,
``Variant`` hashing, table lookup) entirely — mirroring Caliper's
incremental key-node update.  The memo holds strong references to the keyed
variants, which makes the ``id`` comparison sound: a live object's address
cannot be reused.  Invalidation: :attr:`AggregationDB.table_epoch` (bumped
by ``clear()``) drops the memo, and a size cap bounds it under churning
non-interned key values.

Config keys (prefix ``aggregate.``):

``config``
    CalQL text of the aggregation scheme, e.g.
    ``"AGGREGATE count, sum(time.duration) GROUP BY function"``.  A
    pre-built :class:`AggregationScheme` may be passed instead via the
    ``scheme`` key.
``key_strategy``
    ``tuple`` (default) or ``interned`` — see :mod:`repro.aggregate.key`.
``fold_plan``
    ``compiled`` (default) or ``generic`` — the per-record fold strategy,
    see :mod:`repro.aggregate.plan`.
``key_cache``
    Boolean (default true): the per-thread context-key cache described
    above.  Disable to measure or to fall back to plain per-record key
    extraction.
``rename_count``
    When true (default), the flushed ``count`` column is renamed to
    ``aggregate.count``.  This matches Caliper, whose two-stage workflows
    the paper demonstrates as
    ``AGGREGATE sum(aggregate.count) GROUP BY kernel`` over per-process
    profiles produced by ``AGGREGATE count GROUP BY kernel``.
"""

from __future__ import annotations

import threading

from ... import observe
from ...aggregate.db import AggregationDB
from ...aggregate.plan import FOLD_PLANS
from ...aggregate.scheme import AggregationScheme
from ...common.errors import ConfigError
from ...common.record import Record
from ...common.variant import ValueType, Variant
from .base import Service

__all__ = ["AggregateService"]

#: memo size cap per thread — bounds growth when key values churn (e.g.
#: iteration counters as GROUP BY attributes defeat interning)
_KEY_CACHE_LIMIT = 4096


class _ThreadState:
    """Per-thread aggregation state: the DB plus the context-key memo."""

    __slots__ = ("db", "memo", "epoch", "hits", "misses", "update", "lookup")

    def __init__(self, db: AggregationDB) -> None:
        self.db = db
        # id-tuple of GROUP BY entry variants -> (variants, state lists).
        # The variants are stored to keep them alive — that is what makes
        # keying on object identity sound.
        self.memo: dict = {}
        self.epoch = db.table_epoch
        self.hits = 0
        self.misses = 0
        # Bound once: per-record fold entry points.
        self.update = db.plan.update
        self.lookup = db.lookup_states


class AggregateService(Service):
    name = "aggregate"
    #: snapshot records are folded synchronously and never retained, so the
    #: channel may hand this service the blackboard's live record
    folds_immediately = True

    def __init__(self, channel) -> None:
        super().__init__(channel)
        scheme = self.config.get("scheme")
        if scheme is None:
            text = self.config.get_string("config", "")
            if not text:
                raise ConfigError(
                    "aggregate service needs 'aggregate.config' (CalQL text) "
                    "or 'aggregate.scheme' (AggregationScheme object)"
                )
            from ...calql import parse_scheme  # local import: calql builds on aggregate

            scheme = parse_scheme(text, key_strategy=self.config.get_string("key_strategy", "tuple"))
        elif not isinstance(scheme, AggregationScheme):
            raise ConfigError(f"'aggregate.scheme' must be an AggregationScheme, got {scheme!r}")
        self.scheme: AggregationScheme = scheme
        self._rename_count = self.config.get_bool("rename_count", True)
        self._fold_plan = self.config.get_string("fold_plan", "compiled")
        if self._fold_plan not in FOLD_PLANS:
            raise ConfigError(
                f"'aggregate.fold_plan' must be one of {', '.join(FOLD_PLANS)}; "
                f"got {self._fold_plan!r}"
            )
        self._key_cache_enabled = self.config.get_bool("key_cache", True)
        self._key_labels = tuple(scheme.key)
        self._predicate = scheme.predicate
        self._tls = threading.local()
        # Shadow the method with a closure specialized for this service's
        # configuration (key-cache on/off, single vs multi-label key,
        # predicate presence) — the per-snapshot path re-reads none of it.
        self.process = self._make_process()
        # Keyed by a unique per-thread sequence number, NOT the OS thread
        # ident: idents are reused after a thread exits, and keying by them
        # would silently drop a finished thread's aggregation results.
        self._all_dbs: dict[int, AggregationDB] = {}
        self._all_states: dict[int, _ThreadState] = {}
        self._next_thread_seq = 0
        self._dbs_lock = threading.Lock()

    # -- hot path ------------------------------------------------------------

    def _state(self) -> _ThreadState:
        state = getattr(self._tls, "state", None)
        if state is None:
            state = _ThreadState(AggregationDB(self.scheme, fold_plan=self._fold_plan))
            self._tls.state = state
            # Registration takes the lock once per thread lifetime, not per
            # snapshot — the paper's "per-thread DB avoids thread locks".
            with self._dbs_lock:
                self._all_dbs[self._next_thread_seq] = state.db
                self._all_states[self._next_thread_seq] = state
                self._next_thread_seq += 1
        return state

    def _db(self) -> AggregationDB:
        return self._state().db

    def process(self, record: Record) -> None:
        # Class-level fallback; __init__ shadows this with the closure from
        # _make_process, so normal dispatch never lands here.
        self._make_process()(record)

    def _make_process(self):
        """Build the per-record fold entry point for this configuration."""
        tls = self._tls
        make_state = self._state

        if not self._key_cache_enabled:

            def process(record: Record) -> None:
                state = getattr(tls, "state", None)
                if state is None:
                    state = make_state()
                state.db.process(record)

            return process

        predicate = self._predicate
        labels = self._key_labels
        single = labels[0] if len(labels) == 1 else None
        limit = _KEY_CACHE_LIMIT

        def process(record: Record) -> None:
            state = getattr(tls, "state", None)
            if state is None:
                state = make_state()
            db = state.db
            db.num_offered += 1
            if predicate is not None and not predicate(record):
                return
            if state.epoch != db.table_epoch:
                state.memo.clear()
                state.epoch = db.table_epoch
            entries = record._entries
            if single is not None:
                variants = entries.get(single)
                ids = id(variants)
            else:
                variants = tuple(entries.get(lbl) for lbl in labels)
                ids = tuple(map(id, variants))
            memo = state.memo
            hit = memo.get(ids)
            if hit is None:
                states = state.lookup(record)
                if len(memo) >= limit:
                    memo.clear()
                memo[ids] = (variants, states)
                state.misses += 1
            else:
                states = hit[1]
                state.hits += 1
            db.num_processed += 1
            state.update(states, record)

        return process

    # -- flush ----------------------------------------------------------------

    def flush(self) -> list[Record]:
        with self._dbs_lock:
            dbs = dict(self._all_dbs)
            states = list(self._all_states.values())
        observe.gauge(
            "aggregate.keycache.hits",
            sum(s.hits for s in states),
            channel=self.channel.name,
        )
        observe.gauge(
            "aggregate.keycache.misses",
            sum(s.misses for s in states),
            channel=self.channel.name,
        )
        multi = len(dbs) > 1
        out: list[Record] = []
        for tid, db in sorted(dbs.items()):
            for record in db.flush():
                if self._rename_count and "count" in record:
                    entries = record.as_dict()
                    entries["aggregate.count"] = entries.pop("count")
                    record = Record.from_variants(entries)
                if multi:
                    record = record.with_entries(
                        {"thread.id": Variant(ValueType.INT, tid)}
                    )
                out.append(record)
        return out

    def databases(self) -> list[AggregationDB]:
        """The per-thread partial databases (mergeable via ``load_states``)."""
        with self._dbs_lock:
            return [db for _, db in sorted(self._all_dbs.items())]

    # -- introspection -------------------------------------------------------------

    @property
    def num_entries(self) -> int:
        """Unique aggregation keys across all per-thread databases."""
        with self._dbs_lock:
            return sum(db.num_entries for db in self._all_dbs.values())

    @property
    def num_processed(self) -> int:
        with self._dbs_lock:
            return sum(db.num_processed for db in self._all_dbs.values())

    def stats(self) -> dict[str, object]:
        """Per-channel aggregation cost figures (the paper's Table I row).

        Summed across the per-thread databases: unique entries, stream
        counters, state-cell memory footprint, estimated wire size, the
        number of entries whose key was only partially extractable
        (records missing one or more GROUP BY attributes), plus the hot-path
        knobs in effect and the context-key cache hit/miss counters.
        """
        with self._dbs_lock:
            dbs = list(self._all_dbs.values())
            states = list(self._all_states.values())
        return {
            "db.threads": len(dbs),
            "db.entries": sum(db.num_entries for db in dbs),
            "db.offered": sum(db.num_offered for db in dbs),
            "db.processed": sum(db.num_processed for db in dbs),
            "db.memory_footprint": sum(db.memory_footprint() for db in dbs),
            "db.wire_size": sum(db.wire_size() for db in dbs),
            "db.key_misses": sum(db.num_partial_keys for db in dbs),
            "fold_plan": self._fold_plan,
            "keycache.enabled": self._key_cache_enabled,
            "keycache.hits": sum(s.hits for s in states),
            "keycache.misses": sum(s.misses for s in states),
        }
