"""The on-line aggregation service (the paper's Section IV-B).

Receives snapshot records, extracts the aggregation key, and streams the
aggregation attributes into an in-memory :class:`AggregationDB` — input
records are never stored.  One database exists per monitored thread, so the
hot path takes no locks; consequently (and faithfully to the paper) values
are *not* aggregated across threads at runtime: flushed records carry a
``thread.id`` entry when more than one thread contributed, and a
post-processing query merges them.

Config keys (prefix ``aggregate.``):

``config``
    CalQL text of the aggregation scheme, e.g.
    ``"AGGREGATE count, sum(time.duration) GROUP BY function"``.  A
    pre-built :class:`AggregationScheme` may be passed instead via the
    ``scheme`` key.
``key_strategy``
    ``tuple`` (default) or ``interned`` — see :mod:`repro.aggregate.key`.
``rename_count``
    When true (default), the flushed ``count`` column is renamed to
    ``aggregate.count``.  This matches Caliper, whose two-stage workflows
    the paper demonstrates as
    ``AGGREGATE sum(aggregate.count) GROUP BY kernel`` over per-process
    profiles produced by ``AGGREGATE count GROUP BY kernel``.
"""

from __future__ import annotations

import threading

from ...aggregate.db import AggregationDB
from ...aggregate.scheme import AggregationScheme
from ...common.errors import ConfigError
from ...common.record import Record
from ...common.variant import ValueType, Variant
from .base import Service

__all__ = ["AggregateService"]


class AggregateService(Service):
    name = "aggregate"

    def __init__(self, channel) -> None:
        super().__init__(channel)
        scheme = self.config.get("scheme")
        if scheme is None:
            text = self.config.get_string("config", "")
            if not text:
                raise ConfigError(
                    "aggregate service needs 'aggregate.config' (CalQL text) "
                    "or 'aggregate.scheme' (AggregationScheme object)"
                )
            from ...calql import parse_scheme  # local import: calql builds on aggregate

            scheme = parse_scheme(text, key_strategy=self.config.get_string("key_strategy", "tuple"))
        elif not isinstance(scheme, AggregationScheme):
            raise ConfigError(f"'aggregate.scheme' must be an AggregationScheme, got {scheme!r}")
        self.scheme: AggregationScheme = scheme
        self._rename_count = self.config.get_bool("rename_count", True)
        self._tls = threading.local()
        # Keyed by a unique per-thread sequence number, NOT the OS thread
        # ident: idents are reused after a thread exits, and keying by them
        # would silently drop a finished thread's aggregation results.
        self._all_dbs: dict[int, AggregationDB] = {}
        self._next_thread_seq = 0
        self._dbs_lock = threading.Lock()

    # -- hot path ------------------------------------------------------------

    def _db(self) -> AggregationDB:
        db = getattr(self._tls, "db", None)
        if db is None:
            db = AggregationDB(self.scheme)
            self._tls.db = db
            # Registration takes the lock once per thread lifetime, not per
            # snapshot — the paper's "per-thread DB avoids thread locks".
            with self._dbs_lock:
                self._all_dbs[self._next_thread_seq] = db
                self._next_thread_seq += 1
        return db

    def process(self, record: Record) -> None:
        self._db().process(record)

    # -- flush ----------------------------------------------------------------

    def flush(self) -> list[Record]:
        with self._dbs_lock:
            dbs = dict(self._all_dbs)
        multi = len(dbs) > 1
        out: list[Record] = []
        for tid, db in sorted(dbs.items()):
            for record in db.flush():
                if self._rename_count and "count" in record:
                    entries = record.as_dict()
                    entries["aggregate.count"] = entries.pop("count")
                    record = Record.from_variants(entries)
                if multi:
                    record = record.with_entries(
                        {"thread.id": Variant(ValueType.INT, tid)}
                    )
                out.append(record)
        return out

    def databases(self) -> list[AggregationDB]:
        """The per-thread partial databases (mergeable via ``load_states``)."""
        with self._dbs_lock:
            return [db for _, db in sorted(self._all_dbs.items())]

    # -- introspection -------------------------------------------------------------

    @property
    def num_entries(self) -> int:
        """Unique aggregation keys across all per-thread databases."""
        with self._dbs_lock:
            return sum(db.num_entries for db in self._all_dbs.values())

    @property
    def num_processed(self) -> int:
        with self._dbs_lock:
            return sum(db.num_processed for db in self._all_dbs.values())

    def stats(self) -> dict[str, object]:
        """Per-channel aggregation cost figures (the paper's Table I row).

        Summed across the per-thread databases: unique entries, stream
        counters, state-cell memory footprint, estimated wire size, and the
        number of entries whose key was only partially extractable
        (records missing one or more GROUP BY attributes).
        """
        with self._dbs_lock:
            dbs = list(self._all_dbs.values())
        return {
            "db.threads": len(dbs),
            "db.entries": sum(db.num_entries for db in dbs),
            "db.offered": sum(db.num_offered for db in dbs),
            "db.processed": sum(db.num_processed for db in dbs),
            "db.memory_footprint": sum(db.memory_footprint() for db in dbs),
            "db.wire_size": sum(db.wire_size() for db in dbs),
            "db.key_misses": sum(db.num_partial_keys for db in dbs),
        }
