"""Timer service: attaches time measurements to snapshots.

Adds to every snapshot of its channel:

``time.duration``
    Seconds elapsed since the previous snapshot on the same thread.  Because
    event snapshots are taken *before* the blackboard update, the elapsed
    interval is attributed to the region that was active during it; summing
    ``time.duration`` grouped by a region attribute therefore yields
    exclusive time per region — the quantity the paper's case-study figures
    plot.

``time.inclusive.duration`` (optional, ``timer.inclusive = true``)
    On region-end snapshots: seconds since the matching begin, i.e. the
    region's inclusive time (own work plus everything nested inside).

``time.offset`` (optional, ``timer.offset = true``)
    Seconds since channel creation; useful for trace timelines, but it makes
    every snapshot unique, so aggregation profiles leave it off.

The timer registers its begin/end hooks at low priority so it observes each
event before the event service triggers the snapshot.
"""

from __future__ import annotations

import threading
from typing import Optional

from ...common.attribute import Attribute
from ...common.variant import Variant
from .base import Service

__all__ = ["TimerService"]


class TimerService(Service):
    name = "timer"
    priority = 10  # before snapshot-triggering services

    def __init__(self, channel) -> None:
        super().__init__(channel)
        self._with_offset = self.config.get_bool("offset", False)
        self._with_inclusive = self.config.get_bool("inclusive", False)
        # ``timer.trim_hooks = false`` restores the legacy dispatch: begin/end
        # hooks stay registered even without inclusive timing, as per-event
        # no-op calls.  Only the hot-path benchmark's baseline uses this.
        self._trim_hooks = self.config.get_bool("trim_hooks", True)
        # Bound once: three attribute hops per snapshot otherwise.  The clock
        # instance is fixed for the runtime's lifetime.
        self._now = channel.caliper.clock.now
        self._epoch = self._now()
        self._tls = threading.local()

    def wants(self, hook: str) -> bool:
        # The begin/end hooks only feed inclusive-time tracking; without
        # ``timer.inclusive`` they would be per-event no-op calls, so keep
        # them out of the channel's dispatch lists entirely.
        if (
            hook in ("on_begin", "on_end")
            and not self._with_inclusive
            and self._trim_hooks
        ):
            return False
        return super().wants(hook)

    # -- inclusive-time tracking (only active with timer.inclusive) -------------

    def on_begin(self, attribute: Attribute, value: Variant) -> None:
        if not self._with_inclusive:
            return
        stacks = getattr(self._tls, "begin_stacks", None)
        if stacks is None:
            stacks = {}
            self._tls.begin_stacks = stacks
        stacks.setdefault(attribute.id, []).append(self._now())

    def on_end(self, attribute: Attribute, value: Variant) -> None:
        if not self._with_inclusive:
            return
        stacks = getattr(self._tls, "begin_stacks", None)
        stack = stacks.get(attribute.id) if stacks else None
        if stack:
            begin_time = stack.pop()
            # Stashed for the snapshot this end event is about to trigger.
            self._tls.pending_inclusive = self._now() - begin_time

    # -- sampling interaction -------------------------------------------------------

    def on_sample_skip(self, at: Optional[float]) -> None:
        # A dropped snapshot's interval is *uncollected*, not deferred: the
        # next kept snapshot must time only its own interval or weighted
        # time sums would double-count the dropped span (1/p scaling
        # already accounts for it in expectation).
        now = at if at is not None else self._now()
        last = getattr(self._tls, "last", None)
        if last is None or now >= last:
            self._tls.last = now
        if self._with_inclusive:
            self._tls.pending_inclusive = None

    # -- snapshot contribution -----------------------------------------------------

    def contribute(self, entries: dict[str, Variant], at: Optional[float],
                   _double=Variant.double) -> None:
        now = at if at is not None else self._now()
        last = getattr(self._tls, "last", None)
        if last is None:
            last = self._epoch
        duration = now - last
        if duration < 0.0:
            # A sampler replaying a missed deadline after a real-time event
            # snapshot can observe at < last; clamp rather than emit negative
            # durations.
            duration = 0.0
        self._tls.last = now if now >= last else last
        entries["time.duration"] = _double(duration)
        if self._with_inclusive:
            pending = getattr(self._tls, "pending_inclusive", None)
            if pending is not None:
                entries["time.inclusive.duration"] = Variant.double(pending)
                self._tls.pending_inclusive = None
        if self._with_offset:
            entries["time.offset"] = Variant.double(now - self._epoch)
