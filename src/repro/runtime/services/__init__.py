"""Built-in runtime services (independent building blocks, Section IV-A)."""

from .aggregate import AggregateService
from .base import Service, ServiceRegistry, default_service_registry
from .event import EventService
from .recorder import RecorderService
from .sampler import SamplerService
from .timer import TimerService
from .trace import TraceService

__all__ = [
    "Service",
    "ServiceRegistry",
    "default_service_registry",
    "AggregateService",
    "EventService",
    "RecorderService",
    "SamplerService",
    "TimerService",
    "TraceService",
]
