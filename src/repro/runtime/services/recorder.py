"""Recorder service: writes channel output to a file at finish.

The output-stage counterpart of Caliper's ``recorder`` service: when the
channel finishes, the records flushed by the other services (aggregation
results or trace buffers) are serialized to the configured file.

Config keys (prefix ``recorder.``):

``filename``
    Output path.  The extension picks the format: ``.cali`` (compact
    node-deduplicated text), ``.json`` (JSON lines), ``.csv``.
``directory``
    Optional directory prepended to ``filename`` (created if missing).
"""

from __future__ import annotations

import os
from typing import Optional

from ...common.errors import ConfigError
from ...common.record import Record
from .base import Service

__all__ = ["RecorderService"]


class RecorderService(Service):
    name = "recorder"

    def __init__(self, channel) -> None:
        super().__init__(channel)
        self.filename = self.config.get_string("filename", "")
        if not self.filename:
            raise ConfigError("recorder service needs 'recorder.filename'")
        directory = self.config.get_string("directory", "")
        if directory:
            os.makedirs(directory, exist_ok=True)
            self.filename = os.path.join(directory, self.filename)
        self._written: Optional[int] = None

    def finish(self) -> None:
        # Gather output from sibling services; the channel's finish() calls
        # flush() before finish(), but the recorder re-flushes here so it
        # also works when only finish() semantics are desired.
        records: list[Record] = []
        for service in self.channel.services:
            if service is not self:
                records.extend(service.flush())
        if self.channel.globals:
            records = [r.with_entries(self.channel.globals) for r in records]
        from ...io import write_records  # deferred: io sits above runtime

        write_records(self.filename, records)
        self._written = len(records)

    @property
    def num_written(self) -> Optional[int]:
        """Records written at finish, or None if finish hasn't run."""
        return self._written
