"""Sampler service: periodic snapshot triggering.

Emulates the paper's asynchronous sampling mode (snapshots every N
milliseconds from a timer signal).  A Python library cannot deliver truly
asynchronous signals into arbitrary user code, so the sampler *polls*: at
every instrumentation call (and at explicit ``Caliper.sample_point()``
calls) it checks how many sampling deadlines have passed and takes exactly
one snapshot per missed deadline, stamped with the deadline's time.

On a virtual clock this is *exactly* periodic sampling: workload simulators
advance the clock and then yield a sample point, so every 10 ms (say) of
virtual time produces one snapshot regardless of where instrumentation
events fall.  On a wall clock it is sampling with jitter bounded by the gap
between instrumentation calls.

Config keys (prefix ``sampler.``):

``period``
    Sampling period in seconds (default 0.01, i.e. 100 Hz).
``max_catchup``
    Upper bound on snapshots replayed for one large time jump (default
    10000) — a safety valve against pathological clock advances.
"""

from __future__ import annotations

from .base import Service

__all__ = ["SamplerService"]


class SamplerService(Service):
    name = "sampler"

    def __init__(self, channel) -> None:
        super().__init__(channel)
        self.period = self.config.get_float("period", 0.01)
        if self.period <= 0:
            from ...common.errors import ConfigError

            raise ConfigError(f"sampler.period must be positive, got {self.period}")
        self.max_catchup = self.config.get_int("max_catchup", 10_000)
        self._next = channel.caliper.clock.now() + self.period
        #: total snapshots this sampler has triggered
        self.num_samples = 0

    def poll(self, now: float) -> None:
        if now < self._next:
            return
        replayed = 0
        while self._next <= now and replayed < self.max_catchup:
            self.channel.push_snapshot(at=self._next)
            self._next += self.period
            replayed += 1
            self.num_samples += 1
        if self._next <= now:
            # Hit the catch-up bound: drop the remaining deadlines.
            self._next = now + self.period
