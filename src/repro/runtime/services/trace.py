"""Trace service: stores every snapshot record verbatim.

The paper's tracing baseline — "we simply store every snapshot record".
Computationally cheaper per snapshot than aggregation (one list append) but
with output volume linear in the number of snapshots; Table I and Figure 3
quantify exactly this tradeoff.

Config keys (prefix ``trace.``):

``buffer_limit``
    Optional cap on buffered records (0 = unlimited, the default).  When the
    cap is reached, further snapshots are dropped and counted in
    ``num_dropped`` — real tools flush to disk here; for our overhead
    studies the cap keeps pathological configurations bounded.
"""

from __future__ import annotations

from ...common.record import Record
from .base import Service

__all__ = ["TraceService"]


class TraceService(Service):
    name = "trace"

    def __init__(self, channel) -> None:
        super().__init__(channel)
        self.buffer_limit = self.config.get_int("buffer_limit", 0)
        self.num_dropped = 0
        self._buffer: list[Record] = []

    def process(self, record: Record) -> None:
        if self.buffer_limit and len(self._buffer) >= self.buffer_limit:
            self.num_dropped += 1
            return
        self._buffer.append(record)

    def flush(self) -> list[Record]:
        return list(self._buffer)

    def finish(self) -> None:
        self._buffer.clear()

    def __len__(self) -> int:
        return len(self._buffer)
