"""Event service: triggers a snapshot at every annotation event.

This is the synchronous ("event mode") snapshot source of the paper's
evaluation: one snapshot per region begin and one per region end.  Snapshots
fire *before* the blackboard update so the elapsed interval is attributed to
the state that produced it (see :mod:`.timer`).

Config keys (prefix ``event.``):

``trigger``
    Comma-separated attribute labels; when set, only events on these
    attributes trigger snapshots (others still update the blackboard).
``mark``
    When true, add ``event.begin#<label>`` / ``event.end#<label>`` trigger
    entries to each snapshot (off by default: trigger marks multiply the
    number of distinct records an aggregation must hold).
``trigger_set``
    When true, ``set`` updates also trigger snapshots (off by default).
"""

from __future__ import annotations

from typing import Optional

from ...common.attribute import Attribute
from ...common.variant import Variant
from .base import Service

__all__ = ["EventService"]


class EventService(Service):
    name = "event"

    def __init__(self, channel) -> None:
        super().__init__(channel)
        trigger = self.config.get_list("trigger", [])
        self._trigger: Optional[frozenset[str]] = frozenset(trigger) if trigger else None
        self._mark = self.config.get_bool("mark", False)
        self._trigger_set = self.config.get_bool("trigger_set", False)
        if self._trigger is None and not self._mark:
            # Common case — every event triggers a bare snapshot; shadow the
            # hook methods with one closure that skips the trigger/mark
            # bookkeeping.  push_snapshot is re-read per call on purpose: the
            # channel installs its own specialized closure after services are
            # constructed.
            def on_event(attribute: Attribute, value: Variant, _ch=channel) -> None:
                _ch.push_snapshot(None)

            self.on_begin = on_event  # type: ignore[method-assign]
            self.on_end = on_event  # type: ignore[method-assign]

    def _should_trigger(self, attribute: Attribute) -> bool:
        return self._trigger is None or attribute.label in self._trigger

    def on_begin(self, attribute: Attribute, value: Variant) -> None:
        if not self._should_trigger(attribute):
            return
        extra = None
        if self._mark:
            extra = {f"event.begin#{attribute.label}": value}
        self.channel.push_snapshot(extra)

    def on_end(self, attribute: Attribute, value: Variant) -> None:
        if not self._should_trigger(attribute):
            return
        extra = None
        if self._mark:
            extra = {f"event.end#{attribute.label}": value}
        self.channel.push_snapshot(extra)

    def on_set(self, attribute: Attribute, value: Variant) -> None:
        if not self._trigger_set or not self._should_trigger(attribute):
            return
        extra = None
        if self._mark:
            extra = {f"event.set#{attribute.label}": value}
        self.channel.push_snapshot(extra)
