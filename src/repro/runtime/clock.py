"""Clock abstractions for the runtime.

Two implementations of a single ``now()`` interface:

:class:`WallClock`
    Real time (``perf_counter``); used by the overhead benchmarks, where we
    measure what the aggregation machinery actually costs.

:class:`VirtualClock`
    Simulated time advanced explicitly by workload models
    (``clock.advance(cost)``).  The CleverLeaf and ParaDiS workload
    simulators run on virtual time so every figure of the case study is
    deterministic and reproducible — this substitutes for the paper's real
    cluster runs while exercising the identical aggregation code path.
"""

from __future__ import annotations

import time

__all__ = ["Clock", "WallClock", "VirtualClock"]


class Clock:
    """Interface: monotonically non-decreasing time in seconds."""

    def now(self) -> float:
        raise NotImplementedError


class WallClock(Clock):
    """Real monotonic time, zeroed at construction."""

    __slots__ = ("_start",)

    def __init__(self) -> None:
        self._start = time.perf_counter()

    def now(self) -> float:
        return time.perf_counter() - self._start


class VirtualClock(Clock):
    """Explicitly advanced simulated time.

    >>> clk = VirtualClock()
    >>> clk.advance(0.25)
    >>> clk.now()
    0.25
    """

    __slots__ = ("_now",)

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)

    def now(self) -> float:
        return self._now

    def advance(self, dt: float) -> None:
        """Move time forward by ``dt`` seconds (must be non-negative)."""
        if dt < 0:
            raise ValueError(f"cannot advance a clock backwards (dt={dt})")
        self._now += dt

    def set(self, t: float) -> None:
        """Jump to absolute time ``t`` (must not go backwards)."""
        if t < self._now:
            raise ValueError(f"cannot move clock backwards: {t} < {self._now}")
        self._now = t
