"""The blackboard: the runtime's globally visible attribute state.

Caliper keeps the "current" value of every annotation attribute on a
blackboard buffer; snapshots are compressed copies of its contents
(Section IV-A).  Our blackboard stores, per attribute, a begin/end *stack*
of values:

* non-nested attributes snapshot their top-of-stack value;
* ``NESTED`` attributes snapshot the whole stack joined into a path
  (``main/foo``), giving callpath-like semantics.

One blackboard exists per monitored thread (the runtime arranges that), so
no locking happens here — mirroring the paper's lock-free per-thread design.

**Hot-path design.**  The snapshot entry dict is maintained *incrementally*:
every ``begin``/``end``/``set`` updates the one affected label in place, so
taking a snapshot allocates nothing — :meth:`snapshot_entries` returns the
live dict and :meth:`snapshot_record` a stable :class:`Record` wrapping it.
Nested path values are interned per ``(label, parent-path, segment)``, which
makes re-entering the same region return the *identical* ``Variant`` object
— the property the aggregation service's context-key cache keys on (it memos
extracted keys by value identity).  This mirrors Caliper's incremental
context-tree key update.  A :attr:`generation` counter increments on every
mutation for cache invalidation.

The mirror method :meth:`rebuild_entries` recomputes the full dict from the
stacks (the pre-fast-path behaviour); it serves as the differential-testing
oracle for the incremental maintenance and as the benchmark's "legacy path"
emulation.
"""

from __future__ import annotations

from typing import Iterator

from ..common.attribute import Attribute
from ..common.errors import BlackboardError
from ..common.node import PATH_SEPARATOR
from ..common.record import Record
from ..common.variant import RawValue, Variant

__all__ = ["Blackboard"]

#: soft cap on interned nested-path variants; like Caliper's context tree
#: this is bounded by the number of *distinct call paths*, so the cap only
#: triggers for pathological workloads (e.g. unbounded unique region names)
_PATH_INTERN_LIMIT = 65536


class Blackboard:
    """Per-thread stack-of-values store keyed by attribute."""

    __slots__ = (
        "_stacks",
        "_displays",
        "_entries",
        "_record",
        "_path_intern",
        "generation",
    )

    def __init__(self) -> None:
        # attribute -> list of Variants (begin/end stack)
        self._stacks: dict[Attribute, list[Variant]] = {}
        # nested attribute -> parallel stack of display (joined-path) values:
        # _displays[a][i] is the path of _stacks[a][:i+1]
        self._displays: dict[Attribute, list[Variant]] = {}
        # live snapshot view, updated in place on every mutation
        self._entries: dict[str, Variant] = {}
        self._record = Record.from_variants(self._entries)
        # (id(parent), id(segment)) -> (parent, segment, joined path Variant).
        # Parent/segment variants are themselves interned (per-attribute value
        # cache, or an earlier entry here), so identity keys are stable; the
        # value tuple holds strong refs, which is what makes id keys sound.
        self._path_intern: dict[tuple[int, int], tuple[Variant, Variant, Variant]] = {}
        #: bumped on every mutation; snapshot consumers use it to invalidate
        #: caches keyed on blackboard state
        self.generation = 0

    # -- updates ------------------------------------------------------------

    def _joined(self, parent: Variant, value: Variant) -> Variant:
        """The interned path variant for ``parent`` extended by ``value``.

        The joined string depends only on the two variants' text forms, so
        a hit costs two ``id()`` calls and one dict probe — no string
        rendering, no string-tuple hashing.
        """
        key = (id(parent), id(value))
        cached = self._path_intern.get(key)
        if cached is None:
            if len(self._path_intern) >= _PATH_INTERN_LIMIT:
                self._path_intern.clear()
            joined = Variant.of(
                parent.to_string() + PATH_SEPARATOR + value.to_string()
            )
            cached = (parent, value, joined)
            self._path_intern[key] = cached
        return cached[2]

    def begin(self, attribute: Attribute, value: RawValue | Variant) -> None:
        """Push a value onto the attribute's stack.

        ``Variant`` values are trusted as-is — the instrumentation front end
        checks before dispatching, and re-checking per event is measurable.
        Raw values are still coerced through :meth:`Attribute.check`.
        """
        v = value if value.__class__ is Variant else attribute.check(value)
        stack = self._stacks.get(attribute)
        if stack is None:
            self._stacks[attribute] = [v]
            if attribute.is_nested:
                self._displays[attribute] = [v]
            self._entries[attribute.label] = v
        else:
            stack.append(v)
            if attribute.is_nested:
                displays = self._displays[attribute]
                display = self._joined(displays[-1], v)
                displays.append(display)
                self._entries[attribute.label] = display
            else:
                self._entries[attribute.label] = v
        self.generation += 1

    def end(self, attribute: Attribute, value: RawValue | Variant | None = None) -> Variant:
        """Pop the attribute's stack; returns the popped value.

        If ``value`` is given, it must match the top of the stack — this
        catches mismatched begin/end annotation nesting early, the classic
        instrumentation bug.
        """
        stack = self._stacks.get(attribute)
        if not stack:
            raise BlackboardError(f"end({attribute.label!r}) without matching begin")
        top = stack[-1]
        if value is not None:
            expected = attribute.check(value)
            if expected != top:
                raise BlackboardError(
                    f"mismatched end for {attribute.label!r}: expected "
                    f"{top.to_string()!r}, got {expected.to_string()!r}"
                )
        stack.pop()
        if not stack:
            del self._stacks[attribute]
            self._displays.pop(attribute, None)
            self._entries.pop(attribute.label, None)
        elif attribute.is_nested:
            displays = self._displays[attribute]
            displays.pop()
            self._entries[attribute.label] = displays[-1]
        else:
            self._entries[attribute.label] = stack[-1]
        self.generation += 1
        return top

    def set(self, attribute: Attribute, value: RawValue | Variant) -> None:
        """Replace the attribute's top value (or start its stack).

        ``Variant`` values are trusted as-is, like :meth:`begin`.
        """
        v = value if value.__class__ is Variant else attribute.check(value)
        stack = self._stacks.get(attribute)
        if stack:
            stack[-1] = v
            if attribute.is_nested:
                displays = self._displays[attribute]
                if len(displays) > 1:
                    v = self._joined(displays[-2], v)
                displays[-1] = v
            self._entries[attribute.label] = v
        else:
            self._stacks[attribute] = [v]
            if attribute.is_nested:
                self._displays[attribute] = [v]
            self._entries[attribute.label] = v
        self.generation += 1

    def unset(self, attribute: Attribute) -> None:
        """Remove the attribute entirely (all stacked values)."""
        if self._stacks.pop(attribute, None) is not None:
            self._displays.pop(attribute, None)
            self._entries.pop(attribute.label, None)
        self.generation += 1

    # -- reads ---------------------------------------------------------------

    def get(self, attribute: Attribute) -> Variant:
        """Current (top) value, or the empty variant."""
        stack = self._stacks.get(attribute)
        return stack[-1] if stack else Variant.empty()

    def depth(self, attribute: Attribute) -> int:
        stack = self._stacks.get(attribute)
        return len(stack) if stack else 0

    def attributes(self) -> Iterator[Attribute]:
        return iter(self._stacks)

    def __len__(self) -> int:
        return len(self._stacks)

    def __contains__(self, attribute: Attribute) -> bool:
        return attribute in self._stacks

    # -- snapshots --------------------------------------------------------------

    def snapshot_entries(self) -> dict[str, Variant]:
        """The blackboard's contents as snapshot record entries.

        Nested attributes appear as their slash-joined path value.  The
        returned dict is the blackboard's *live* view, maintained in place —
        zero work per snapshot, but subsequent ``begin``/``end``/``set``
        calls mutate it.  Callers that outlive the next update must copy;
        callers that consume immediately (the fold-only aggregation path)
        may read it directly.
        """
        return self._entries

    def snapshot_record(self) -> Record:
        """A stable :class:`Record` view over the live snapshot entries.

        The same object for the blackboard's lifetime (its entry dict is
        mutated in place), so fold-immediately consumers get a record without
        any per-snapshot allocation.
        """
        return self._record

    def rebuild_entries(self) -> dict[str, Variant]:
        """Recompute the snapshot entries from the value stacks (a fresh dict).

        This is the reference implementation the incremental ``_entries``
        maintenance is differentially tested against, and the cost model of
        the pre-fast-path snapshot used by the hot-path benchmark's legacy
        mode.
        """
        entries: dict[str, Variant] = {}
        for attribute, stack in self._stacks.items():
            if attribute.is_nested and len(stack) > 1:
                path = PATH_SEPARATOR.join(v.to_string() for v in stack)
                entries[attribute.label] = Variant.of(path)
            else:
                entries[attribute.label] = stack[-1]
        return entries

    def clear(self) -> None:
        self._stacks.clear()
        self._displays.clear()
        self._entries.clear()
        self.generation += 1

    def __repr__(self) -> str:
        inner = ", ".join(
            f"{a.label}={'/'.join(v.to_string() for v in s)}" for a, s in self._stacks.items()
        )
        return f"Blackboard({inner})"
