"""The blackboard: the runtime's globally visible attribute state.

Caliper keeps the "current" value of every annotation attribute on a
blackboard buffer; snapshots are compressed copies of its contents
(Section IV-A).  Our blackboard stores, per attribute, a begin/end *stack*
of values:

* non-nested attributes snapshot their top-of-stack value;
* ``NESTED`` attributes snapshot the whole stack joined into a path
  (``main/foo``), giving callpath-like semantics.

One blackboard exists per monitored thread (the runtime arranges that), so
no locking happens here — mirroring the paper's lock-free per-thread design.
"""

from __future__ import annotations

from typing import Iterator, Optional

from ..common.attribute import Attribute
from ..common.errors import BlackboardError
from ..common.node import PATH_SEPARATOR
from ..common.variant import RawValue, Variant

__all__ = ["Blackboard"]


class Blackboard:
    """Per-thread stack-of-values store keyed by attribute."""

    __slots__ = ("_stacks", "_snapshot_cache", "_dirty")

    def __init__(self) -> None:
        # attribute -> list of Variants (begin/end stack)
        self._stacks: dict[Attribute, list[Variant]] = {}
        self._snapshot_cache: Optional[dict[str, Variant]] = None
        self._dirty = True

    # -- updates ------------------------------------------------------------

    def begin(self, attribute: Attribute, value: RawValue | Variant) -> None:
        """Push a value onto the attribute's stack."""
        v = attribute.check(value)
        stack = self._stacks.get(attribute)
        if stack is None:
            self._stacks[attribute] = [v]
        else:
            stack.append(v)
        self._dirty = True

    def end(self, attribute: Attribute, value: RawValue | Variant | None = None) -> Variant:
        """Pop the attribute's stack; returns the popped value.

        If ``value`` is given, it must match the top of the stack — this
        catches mismatched begin/end annotation nesting early, the classic
        instrumentation bug.
        """
        stack = self._stacks.get(attribute)
        if not stack:
            raise BlackboardError(f"end({attribute.label!r}) without matching begin")
        top = stack[-1]
        if value is not None:
            expected = attribute.check(value)
            if expected != top:
                raise BlackboardError(
                    f"mismatched end for {attribute.label!r}: expected "
                    f"{top.to_string()!r}, got {expected.to_string()!r}"
                )
        stack.pop()
        if not stack:
            del self._stacks[attribute]
        self._dirty = True
        return top

    def set(self, attribute: Attribute, value: RawValue | Variant) -> None:
        """Replace the attribute's top value (or start its stack)."""
        v = attribute.check(value)
        stack = self._stacks.get(attribute)
        if stack:
            stack[-1] = v
        else:
            self._stacks[attribute] = [v]
        self._dirty = True

    def unset(self, attribute: Attribute) -> None:
        """Remove the attribute entirely (all stacked values)."""
        self._stacks.pop(attribute, None)
        self._dirty = True

    # -- reads ---------------------------------------------------------------

    def get(self, attribute: Attribute) -> Variant:
        """Current (top) value, or the empty variant."""
        stack = self._stacks.get(attribute)
        return stack[-1] if stack else Variant.empty()

    def depth(self, attribute: Attribute) -> int:
        stack = self._stacks.get(attribute)
        return len(stack) if stack else 0

    def attributes(self) -> Iterator[Attribute]:
        return iter(self._stacks)

    def __len__(self) -> int:
        return len(self._stacks)

    def __contains__(self, attribute: Attribute) -> bool:
        return attribute in self._stacks

    # -- snapshots --------------------------------------------------------------

    def snapshot_entries(self) -> dict[str, Variant]:
        """The blackboard's contents as snapshot record entries.

        Nested attributes flatten their stack into a slash-joined path value.
        The result dict is cached until the next update — bursts of snapshots
        between updates (sampling catch-up) reuse it, and callers must treat
        it as read-only.
        """
        if not self._dirty and self._snapshot_cache is not None:
            return self._snapshot_cache
        entries: dict[str, Variant] = {}
        for attribute, stack in self._stacks.items():
            if attribute.is_nested and len(stack) > 1:
                path = PATH_SEPARATOR.join(v.to_string() for v in stack)
                entries[attribute.label] = Variant.of(path)
            else:
                entries[attribute.label] = stack[-1]
        self._snapshot_cache = entries
        self._dirty = False
        return entries

    def clear(self) -> None:
        self._stacks.clear()
        self._dirty = True

    def __repr__(self) -> str:
        inner = ", ".join(
            f"{a.label}={'/'.join(v.to_string() for v in s)}" for a, s in self._stacks.items()
        )
        return f"Blackboard({inner})"
