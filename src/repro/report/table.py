"""Aligned text tables, in the style of the paper's result listings.

String columns are left-aligned, numeric columns right-aligned; floats are
rendered with a configurable precision.  The column order honours a
``preferred`` prefix (the query engine passes key labels first, then
operator outputs, matching the paper's ``function loop.iteration count
sum#time`` layout).
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..common.record import Record
from ..common.variant import ValueType, Variant
from ..io.csvio import collect_columns

__all__ = ["format_table", "TableOptions"]


class TableOptions:
    """Rendering options for :func:`format_table`."""

    def __init__(
        self,
        float_precision: int = 6,
        max_rows: Optional[int] = None,
        missing: str = "",
        separator: str = " ",
    ) -> None:
        self.float_precision = float_precision
        self.max_rows = max_rows
        self.missing = missing
        self.separator = separator

    def render_cell(self, value: Variant) -> str:
        if value.is_empty:
            return self.missing
        if value.type is ValueType.DOUBLE:
            v = value.value
            assert isinstance(v, float)
            if v == int(v) and abs(v) < 1e15:
                return str(int(v))
            return f"{v:.{self.float_precision}g}"
        return value.to_string()


def format_table(
    records: Sequence[Record],
    preferred: Sequence[str] = (),
    options: Optional[TableOptions] = None,
) -> str:
    """Render records as an aligned text table."""
    options = options or TableOptions()
    if not records:
        return "(no records)"
    columns = collect_columns(records, preferred)

    shown = records if options.max_rows is None else records[: options.max_rows]
    cells: list[list[str]] = [
        [options.render_cell(record.get(col)) for col in columns] for record in shown
    ]

    # A column is numeric (right-aligned) when every non-empty value in the
    # *full* record set is numeric.
    numeric = []
    for col in columns:
        is_numeric = True
        seen_any = False
        for record in records:
            v = record.get(col)
            if v.is_empty:
                continue
            seen_any = True
            if not v.is_numeric:
                is_numeric = False
                break
        numeric.append(seen_any and is_numeric)

    widths = [len(col) for col in columns]
    for row in cells:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def render_row(row: Sequence[str]) -> str:
        parts = []
        for i, cell in enumerate(row):
            if numeric[i]:
                parts.append(cell.rjust(widths[i]))
            else:
                parts.append(cell.ljust(widths[i]))
        return options.separator.join(parts).rstrip()

    lines = [render_row(columns)]
    lines.extend(render_row(row) for row in cells)
    if options.max_rows is not None and len(records) > options.max_rows:
        lines.append(f"(... {len(records) - options.max_rows} more rows)")
    return "\n".join(lines)
