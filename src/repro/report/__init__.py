"""Text rendering of profiles: tables, trees, bar charts, series."""

from .barchart import format_barchart, format_distribution, format_grouped_bars
from .series import format_series, pivot_series
from .table import TableOptions, format_table
from .tree import format_tree

__all__ = [
    "format_table",
    "TableOptions",
    "format_tree",
    "format_barchart",
    "format_grouped_bars",
    "format_distribution",
    "format_series",
    "pivot_series",
]
