"""ASCII bar charts and box summaries for figure reproduction.

The paper's case-study figures are bar charts (time per kernel, per MPI
function, per AMR level) and per-rank distributions.  These helpers render
the same shapes in plain text so the benchmark harnesses can print
figure-equivalent output into logs and EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

__all__ = ["format_barchart", "format_grouped_bars", "format_distribution"]

_BAR = "#"


def format_barchart(
    items: Sequence[tuple[str, float]],
    width: int = 50,
    unit: str = "",
    title: str = "",
) -> str:
    """One horizontal bar per (label, value), scaled to the maximum."""
    if not items:
        return "(no data)"
    label_width = max(len(label) for label, _ in items)
    peak = max(value for _, value in items)
    scale = width / peak if peak > 0 else 0.0
    lines = [title] if title else []
    for label, value in items:
        bar = _BAR * max(1 if value > 0 else 0, int(round(value * scale)))
        suffix = f" {value:.4g}{unit}"
        lines.append(f"{label.ljust(label_width)} |{bar}{suffix}")
    return "\n".join(lines)


def format_grouped_bars(
    groups: Sequence[str],
    series: dict[str, Sequence[float]],
    width: int = 40,
    title: str = "",
) -> str:
    """Grouped bars: for each group label, one bar per series.

    Renders the shape of the paper's Figures 8/9 (time per AMR level across
    timesteps / ranks) in text form.
    """
    if not groups or not series:
        return "(no data)"
    peak = max((max(values) if len(values) else 0.0) for values in series.values())
    scale = width / peak if peak > 0 else 0.0
    series_width = max(len(name) for name in series)
    group_width = max(len(g) for g in groups)
    lines = [title] if title else []
    for gi, group in enumerate(groups):
        for si, (name, values) in enumerate(series.items()):
            value = values[gi] if gi < len(values) else 0.0
            bar = _BAR * int(round(value * scale))
            head = group.ljust(group_width) if si == 0 else " " * group_width
            lines.append(f"{head} {name.ljust(series_width)} |{bar} {value:.4g}")
    return "\n".join(lines)


def format_distribution(
    items: Sequence[tuple[str, Sequence[float]]],
    width: int = 50,
    title: str = "",
) -> str:
    """Min/median/max summaries, one line per labelled value collection.

    Text rendering of the paper's Figure 7 box plot: per category, the
    spread of a value across MPI ranks.
    """
    if not items:
        return "(no data)"
    label_width = max(len(label) for label, _ in items)
    lines = [title] if title else []
    peak = max((max(vals) if len(vals) else 0.0) for _, vals in items)
    scale = width / peak if peak > 0 else 0.0
    for label, vals in items:
        if not len(vals):
            lines.append(f"{label.ljust(label_width)} (no values)")
            continue
        arr = np.asarray(vals, dtype=float)
        lo, med, hi = float(arr.min()), float(np.median(arr)), float(arr.max())
        lo_col = int(round(lo * scale))
        med_col = int(round(med * scale))
        hi_col = int(round(hi * scale))
        row = [" "] * (width + 1)
        for col in range(lo_col, hi_col + 1):
            row[col] = "-"
        row[lo_col] = "|"
        row[hi_col] = "|"
        row[med_col] = "o"
        lines.append(
            f"{label.ljust(label_width)} {''.join(row)} "
            f"min={lo:.4g} med={med:.4g} max={hi:.4g}"
        )
    return "\n".join(lines)
