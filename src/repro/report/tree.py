"""Hierarchical (tree) rendering of profile records.

Groups records by the path structure of a NESTED-style attribute (slash
separated values such as ``main/solve/mg``) and prints an indented tree
with metric columns — the classic call-tree profile view.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..common.node import PATH_SEPARATOR
from ..common.record import Record
from .table import TableOptions

__all__ = ["format_tree"]


class _TreeNode:
    __slots__ = ("name", "children", "metrics")

    def __init__(self, name: str) -> None:
        self.name = name
        self.children: dict[str, _TreeNode] = {}
        self.metrics: Optional[Record] = None


def format_tree(
    records: Sequence[Record],
    path_attribute: str,
    metrics: Sequence[str],
    options: Optional[TableOptions] = None,
) -> str:
    """Render records as an indented tree along ``path_attribute``.

    Records without the path attribute are grouped under ``(none)``.
    """
    options = options or TableOptions()
    root = _TreeNode("")
    for record in records:
        path_value = record.get(path_attribute)
        parts = (
            path_value.to_string().split(PATH_SEPARATOR)
            if not path_value.is_empty
            else ["(none)"]
        )
        node = root
        for part in parts:
            child = node.children.get(part)
            if child is None:
                child = _TreeNode(part)
                node.children[part] = child
            node = child
        node.metrics = record

    rows: list[tuple[str, Optional[Record]]] = []

    def walk(node: _TreeNode, depth: int) -> None:
        for name in sorted(node.children):
            child = node.children[name]
            rows.append(("  " * depth + name, child.metrics))
            walk(child, depth + 1)

    walk(root, 0)

    name_width = max([len(path_attribute)] + [len(name) for name, _ in rows])
    metric_cells = [
        [options.render_cell(rec.get(m)) if rec is not None else "" for m in metrics]
        for _, rec in rows
    ]
    widths = [
        max([len(m)] + [cells[i] and len(cells[i]) or 0 for cells in metric_cells])
        for i, m in enumerate(metrics)
    ]

    lines = [
        path_attribute.ljust(name_width)
        + "  "
        + "  ".join(m.rjust(widths[i]) for i, m in enumerate(metrics))
    ]
    for (name, _), cells in zip(rows, metric_cells):
        lines.append(
            name.ljust(name_width)
            + "  "
            + "  ".join(cells[i].rjust(widths[i]) for i in range(len(metrics)))
        )
    return "\n".join(line.rstrip() for line in lines)
