"""Time-series extraction and text rendering.

Helpers to pivot query results into ``x -> {series: value}`` form (e.g.
timestep -> time per AMR level, the shape of the paper's Figure 8) and to
print them as aligned columns.
"""

from __future__ import annotations

from typing import Sequence

from ..common.record import Record

__all__ = ["pivot_series", "format_series"]


def pivot_series(
    records: Sequence[Record],
    x_label: str,
    series_label: str,
    value_label: str,
    fill: float = 0.0,
) -> tuple[list, list[str], dict[str, list[float]]]:
    """Pivot records into aligned series.

    Returns ``(xs, series_names, {series: [value per x]})`` with xs sorted by
    their natural (Variant) order and missing cells filled with ``fill``.
    """
    xs_set = set()
    names_set = set()
    cells: dict[tuple, float] = {}
    for record in records:
        x = record.get(x_label)
        s = record.get(series_label)
        v = record.get(value_label)
        if x.is_empty or s.is_empty or v.is_empty or not v.is_numeric:
            continue
        xs_set.add(x)
        name = s.to_string()
        names_set.add(name)
        cells[(x, name)] = cells.get((x, name), 0.0) + v.to_double()

    xs = sorted(xs_set)
    names = sorted(names_set)
    series = {
        name: [cells.get((x, name), fill) for x in xs] for name in names
    }
    return [x.value for x in xs], names, series


def format_series(
    xs: Sequence,
    series: dict[str, Sequence[float]],
    x_label: str = "x",
    precision: int = 4,
) -> str:
    """Aligned text columns: one row per x, one column per series."""
    names = list(series)
    header = [x_label] + names
    rows = []
    for i, x in enumerate(xs):
        row = [str(x)]
        for name in names:
            vals = series[name]
            row.append(f"{vals[i]:.{precision}g}" if i < len(vals) else "")
        rows.append(row)
    widths = [len(h) for h in header]
    for row in rows:
        for j, cell in enumerate(row):
            widths[j] = max(widths[j], len(cell))
    lines = ["  ".join(h.rjust(widths[j]) for j, h in enumerate(header))]
    for row in rows:
        lines.append("  ".join(cell.rjust(widths[j]) for j, cell in enumerate(row)))
    return "\n".join(lines)
