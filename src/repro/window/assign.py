"""Window assignment: event time extraction and tumbling/sliding assigners.

Windowing turns the unbounded aggregation epoch into per-window groups by
stamping two extra key attributes — ``window.start`` and ``window.end`` —
onto each record before it is folded.  Everything downstream (hash-routed
shards, FORWARD/RETRACT deltas, binary wire encoding, the columnar batch
backend) then works unchanged: a window is just another part of the
aggregation key.

Event time comes from a configurable *time attribute* (default
``time.start``).  Streams that only carry ``time.duration`` — the common
profiling case — fall back to a per-source relative clock: each record's
event time is the running sum of durations seen so far on that source, so
a pure duration stream still has a total event-time order.

Window sizes are wall-clock durations in seconds; the CalQL surface accepts
``30s`` / ``500ms`` / ``2m`` / ``1h`` suffixes via :func:`parse_duration`.
"""

from __future__ import annotations

import math
from typing import Iterable, List, Optional, Tuple

from ..common.errors import ReproError
from ..common.record import Record

__all__ = [
    "WindowError",
    "parse_duration",
    "format_duration",
    "WindowAssigner",
    "TumblingWindows",
    "SlidingWindows",
    "make_assigner",
    "EventClock",
    "WINDOW_START",
    "WINDOW_END",
    "DEFAULT_TIME_ATTRIBUTE",
    "DURATION_ATTRIBUTE",
]

#: Key attributes stamped onto windowed records.
WINDOW_START = "window.start"
WINDOW_END = "window.end"

#: Default event-time attribute; absent it, ``time.duration`` accumulates.
DEFAULT_TIME_ATTRIBUTE = "time.start"
DURATION_ATTRIBUTE = "time.duration"

#: Accepted duration-unit suffixes, in seconds.
_UNITS = {"ms": 1e-3, "s": 1.0, "m": 60.0, "h": 3600.0}


class WindowError(ReproError):
    """Invalid window specification or unwindowable record stream."""


def parse_duration(text: str) -> float:
    """``"30s"`` / ``"500ms"`` / ``"2m"`` / ``"1.5h"`` / ``"30"`` -> seconds."""
    raw = str(text).strip()
    if not raw:
        raise WindowError("empty duration")
    unit = 1.0
    for suffix in sorted(_UNITS, key=len, reverse=True):
        if raw.endswith(suffix):
            unit = _UNITS[suffix]
            raw = raw[: -len(suffix)]
            break
    try:
        value = float(raw)
    except ValueError:
        raise WindowError(f"bad duration {text!r}") from None
    if not math.isfinite(value) or value <= 0:
        raise WindowError(f"duration must be positive and finite, got {text!r}")
    return value * unit


def format_duration(seconds: float) -> str:
    """Seconds back to a compact CalQL duration literal (``90.0`` -> ``90s``)."""
    if seconds <= 0 or not math.isfinite(seconds):
        raise WindowError(f"duration must be positive and finite, got {seconds!r}")
    value = float(seconds)
    if value == int(value):
        return f"{int(value)}s"
    ms = value * 1e3
    if ms == int(ms):
        return f"{int(ms)}ms"
    return f"{value}s"


class WindowAssigner:
    """Maps an event time to the ``(start, end)`` windows containing it."""

    kind = "window"
    size: float

    def assign(self, event_time: float) -> List[Tuple[float, float]]:
        raise NotImplementedError

    def describe(self) -> str:
        raise NotImplementedError

    def __eq__(self, other: object) -> bool:
        return type(self) is type(other) and self.describe() == other.describe()  # type: ignore[union-attr]

    def __hash__(self) -> int:
        return hash(self.describe())

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"<{type(self).__name__} {self.describe()}>"


class TumblingWindows(WindowAssigner):
    """Fixed, gap-free, non-overlapping windows of ``size`` seconds.

    Every event time lands in exactly one window:
    ``[floor(t / size) * size, ... + size)``.
    """

    kind = "tumbling"

    def __init__(self, size: float) -> None:
        if not math.isfinite(size) or size <= 0:
            raise WindowError(f"tumbling window size must be > 0, got {size!r}")
        self.size = float(size)

    def assign(self, event_time: float) -> List[Tuple[float, float]]:
        start = math.floor(event_time / self.size) * self.size
        # float floor can land one slot high when t is epsilon under a
        # boundary; windows are [start, end) so nudge back if needed.
        if start > event_time:
            start -= self.size
        return [(start, start + self.size)]

    def describe(self) -> str:
        return f"tumbling({format_duration(self.size)})"


class SlidingWindows(WindowAssigner):
    """Overlapping windows of ``size`` seconds every ``slide`` seconds.

    Window starts are the multiples of ``slide``; an event at time ``t``
    belongs to every window ``[k*slide, k*slide + size)`` containing it.
    When ``slide`` divides ``size`` that is exactly ``size / slide``
    windows per event.
    """

    kind = "sliding"

    def __init__(self, size: float, slide: float) -> None:
        if not math.isfinite(size) or size <= 0:
            raise WindowError(f"sliding window size must be > 0, got {size!r}")
        if not math.isfinite(slide) or slide <= 0:
            raise WindowError(f"sliding window slide must be > 0, got {slide!r}")
        if slide > size:
            raise WindowError(
                f"slide ({slide!r}) larger than size ({size!r}) would drop events"
            )
        self.size = float(size)
        self.slide = float(slide)

    def assign(self, event_time: float) -> List[Tuple[float, float]]:
        slide = self.slide
        size = self.size
        last = math.floor(event_time / slide) * slide
        if last > event_time:
            last -= slide
        windows: List[Tuple[float, float]] = []
        start = last
        while start + size > event_time:
            windows.append((start, start + size))
            start -= slide
        windows.reverse()
        return windows

    def describe(self) -> str:
        return (
            f"sliding({format_duration(self.size)}, "
            f"{format_duration(self.slide)})"
        )


def make_assigner(spec) -> WindowAssigner:
    """Coerce a window spec to an assigner.

    Accepts an existing :class:`WindowAssigner`, a CalQL
    :class:`~repro.calql.ast.WindowSpec`, or a string like
    ``"tumbling(30s)"`` / ``"sliding(1m, 10s)"``.
    """
    if isinstance(spec, WindowAssigner):
        return spec
    kind = getattr(spec, "kind", None)
    if kind in ("tumbling", "sliding"):
        if kind == "tumbling":
            return TumblingWindows(spec.size)
        return SlidingWindows(spec.size, spec.slide)
    if isinstance(spec, str):
        text = spec.strip()
        head, _, rest = text.partition("(")
        if not rest.endswith(")"):
            raise WindowError(f"bad window spec {spec!r}")
        args = [a.strip() for a in rest[:-1].split(",") if a.strip()]
        head = head.strip().lower()
        if head == "tumbling" and len(args) == 1:
            return TumblingWindows(parse_duration(args[0]))
        if head == "sliding" and len(args) == 2:
            return SlidingWindows(parse_duration(args[0]), parse_duration(args[1]))
        raise WindowError(f"bad window spec {spec!r}")
    raise WindowError(f"cannot build a window assigner from {spec!r}")


class EventClock:
    """Extracts event times, with a duration-relative fallback.

    If a record carries the configured time attribute that value is the
    event time.  Otherwise, if it carries ``time.duration``, the clock
    advances by that duration and the *accumulated* offset is the event
    time — a deterministic total order for pure duration streams.  Records
    with neither attribute are un-timed (``None``).

    One clock is per-source state; keep one per stream.
    """

    __slots__ = ("attribute", "_offset")

    def __init__(self, attribute: str = DEFAULT_TIME_ATTRIBUTE) -> None:
        self.attribute = attribute or DEFAULT_TIME_ATTRIBUTE
        self._offset = 0.0

    def event_time(self, record: Record) -> Optional[float]:
        value = record.get(self.attribute)
        if value and value.is_numeric:
            t = float(value.value)
            if t > self._offset:
                self._offset = t
            return t
        duration = record.get(DURATION_ATTRIBUTE)
        if duration and duration.is_numeric:
            t = self._offset
            self._offset = t + float(duration.value)
            return t
        return None


def stamp_record(
    record: Record,
    event_time: float,
    assigner: WindowAssigner,
) -> List[Record]:
    """Expand ``record`` into one stamped copy per containing window."""
    return [
        record.with_entries({WINDOW_START: start, WINDOW_END: end})
        for start, end in assigner.assign(event_time)
    ]


def stamp_records(
    records: Iterable[Record],
    assigner: WindowAssigner,
    *,
    time_attribute: str = DEFAULT_TIME_ATTRIBUTE,
    clock: Optional[EventClock] = None,
) -> List[Record]:
    """Stamp a whole batch with one shared clock (single logical source).

    Un-timed records (no time attribute, no duration) are dropped — they
    cannot be placed in any window.
    """
    clk = clock if clock is not None else EventClock(time_attribute)
    out: List[Record] = []
    for record in records:
        t = clk.event_time(record)
        if t is None:
            continue
        out.extend(stamp_record(record, t, assigner))
    return out
