"""WindowedAggregationDB: per-window operator state behind the mergeable-op
interface.

Windows are extra key attributes, so one ordinary
:class:`~repro.aggregate.db.AggregationDB` over the *windowized* scheme
holds every open window's state; retirement pops closed windows' entries
out of the table (freeing state) and folds them into a final-results DB
with plain ``combine`` semantics — so a straggler remnant that surfaces
later (e.g. a record that raced a retirement barrier) merges into the same
window exactly instead of duplicating it.

This class is the standalone single-process subsystem; the networked
:class:`~repro.net.server.AggregationServer` composes the same pieces
(assigner, tracker, estimator, ``pop_entries``) across its shards and
forwarded-state DBs.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..aggregate.db import AggregationDB
from ..aggregate.ops import AvgOp, MomentsOp, SumOp
from ..aggregate.scheme import AggregationScheme
from ..common.record import Record
from ..common.variant import Variant
from .assign import (
    DEFAULT_TIME_ATTRIBUTE,
    WINDOW_END,
    WINDOW_START,
    EventClock,
    WindowAssigner,
    make_assigner,
    stamp_record,
)
from .estimate import WindowEstimator
from .watermark import WatermarkTracker

__all__ = [
    "windowize_scheme",
    "dewindowize_scheme",
    "window_end_of",
    "WindowedAggregationDB",
]


def _unwrapped(op):
    return getattr(op, "inner", op)


def windowize_scheme(
    scheme: AggregationScheme, with_moments: bool = True
) -> AggregationScheme:
    """``scheme`` with window key attributes (and hidden moment ops) added.

    Idempotent: an already-windowized scheme comes back unchanged, so a
    relay constructed from its parent's augmented scheme does not stack a
    second window key.
    """
    key = list(scheme.key)
    changed = False
    if WINDOW_START not in key:
        key += [WINDOW_START, WINDOW_END]
        changed = True
    ops = list(scheme.ops)
    if with_moments:
        have = {
            _unwrapped(op).args[0]
            for op in ops
            if type(_unwrapped(op)) is MomentsOp
        }
        for op in scheme.ops:
            target = _unwrapped(op)
            if type(target) in (SumOp, AvgOp) and target.args[0] not in have:
                ops.append(MomentsOp([target.args[0]]))
                have.add(target.args[0])
                changed = True
    if not changed:
        return scheme
    return AggregationScheme(
        ops, key=key, predicate=scheme.predicate, key_strategy=scheme.key_strategy
    )


def dewindowize_scheme(scheme: AggregationScheme) -> AggregationScheme:
    """Strip window key attributes and hidden moment ops (the base scheme)."""
    key = [k for k in scheme.key if k not in (WINDOW_START, WINDOW_END)]
    ops = [op for op in scheme.ops if type(_unwrapped(op)) is not MomentsOp]
    if len(key) == len(scheme.key) and len(ops) == len(scheme.ops):
        return scheme
    return AggregationScheme(
        ops, key=key, predicate=scheme.predicate, key_strategy=scheme.key_strategy
    )


def window_end_of(entries: Dict[str, Variant]) -> Optional[float]:
    """The ``window.end`` of exported key entries, or ``None``."""
    value = entries.get(WINDOW_END)
    if value is not None and value.is_numeric:
        return float(value.value)
    return None


class WindowedAggregationDB:
    """Single-process windowed aggregation with watermarks and estimates.

    >>> wdb = WindowedAggregationDB(scheme, "tumbling(30s)", lateness=5.0)
    >>> wdb.process(record)          # stamps, folds, advances the watermark
    >>> wdb.retire()                 # final records for closed windows
    >>> wdb.estimates()              # partials + CIs for open windows
    """

    def __init__(
        self,
        scheme: AggregationScheme,
        window,
        *,
        lateness: float = 0.0,
        time_attribute: str = DEFAULT_TIME_ATTRIBUTE,
        confidence: float = 0.90,
        fold_plan: str = "compiled",
    ) -> None:
        self.assigner: WindowAssigner = make_assigner(window)
        self.base_scheme = dewindowize_scheme(scheme)
        self.scheme = windowize_scheme(scheme)
        self.time_attribute = time_attribute
        self.db = AggregationDB(self.scheme, fold_plan=fold_plan)
        self._final = AggregationDB(self.scheme, fold_plan="generic")
        self.tracker = WatermarkTracker(lateness)
        self.estimator = WindowEstimator(self.scheme, confidence=confidence)
        self._clocks: Dict[str, EventClock] = {}
        self._retire_floor: Optional[float] = None
        self.num_late = 0
        self.num_untimed = 0

    # -- ingest --------------------------------------------------------------

    def _clock(self, source: str) -> EventClock:
        clock = self._clocks.get(source)
        if clock is None:
            clock = self._clocks[source] = EventClock(self.time_attribute)
        return clock

    def process(self, record: Record, source: str = "local") -> bool:
        """Stamp and fold one record; False when late/un-timed (not folded).

        Lateness is judged against the record's own source stream; stamped
        copies for windows that already retired are dropped regardless (the
        window's final result is immutable once emitted).
        """
        t = self._clock(source).event_time(record)
        if t is None:
            self.num_untimed += 1
            return False
        if self.tracker.is_late(t, source):
            self.num_late += 1
            return False
        self.tracker.observe(source, t)
        floor = self._retire_floor
        folded = False
        for stamped in stamp_record(record, t, self.assigner):
            if floor is not None:
                end = stamped.get(WINDOW_END)
                if end.is_numeric and float(end.value) <= floor:
                    continue
            self.db.process(stamped)
            folded = True
        if not folded:
            self.num_late += 1
        return folded

    def process_all(self, records, source: str = "local") -> int:
        """Fold a record stream; returns how many records were folded."""
        folded = 0
        for record in records:
            if self.process(record, source):
                folded += 1
        return folded

    # -- watermarks and retirement ------------------------------------------

    def watermark(self) -> Optional[float]:
        return self.tracker.watermark()

    def retire(self, watermark: Optional[float] = None) -> List[Record]:
        """Finalize every window closed below the watermark.

        Pops the closed windows' state out of the live table, folds it into
        the final-results DB, and returns the *newly* retired windows'
        output records.  State for retired windows is freed from the live
        table; late arrivals for them are dropped by :meth:`process` (their
        event time is below the watermark by construction).
        """
        mark = self.tracker.watermark() if watermark is None else watermark
        if mark is None:
            return []
        def closed(entries) -> bool:
            end = window_end_of(entries)
            return end is not None and end <= mark

        popped = self.db.pop_entries(closed)
        if self._retire_floor is None or mark > self._retire_floor:
            self._retire_floor = mark
        if not popped:
            return []
        fresh = AggregationDB(self.scheme, fold_plan="generic")
        fresh.load_states([(e, s) for e, s in popped])
        self._final.load_states(fresh.export_states())
        return fresh.flush()

    @property
    def retire_floor(self) -> Optional[float]:
        return self._retire_floor

    # -- results -------------------------------------------------------------

    def retired_results(self) -> List[Record]:
        """Final records for every window retired so far."""
        return self._final.flush()

    def open_groups(self) -> List[Tuple[dict, Sequence[list]]]:
        return self.db.export_states()

    def estimates(self, watermark: Optional[float] = None) -> List[Record]:
        """Partial aggregates + confidence intervals for open windows."""
        mark = self.tracker.watermark() if watermark is None else watermark
        return self.estimator.estimate_records(self.db.export_states(), mark)

    def results(self) -> List[Record]:
        """Every window's current output (open partials + retired finals)."""
        merged = AggregationDB(self.scheme, fold_plan="generic")
        merged.load_states(self.db.export_states())
        merged.load_states(self._final.export_states())
        return merged.flush()

    def __len__(self) -> int:
        return len(self.db)
