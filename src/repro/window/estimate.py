"""PF-OLA-style online estimates for open windows.

While a window is open, its partial operator states are an unbiased sample
of the final answer *in time*: with a watermark ``w`` inside window
``[start, end)``, the fraction ``f = (w - start) / (end - start)`` of the
window's time span has been observed.  Treating arrivals as a homogeneous
stream over the window (the PF-OLA estimator model, with the unseen count
Poisson-distributed around its mean), the partial states extrapolate:

- ``count``:  ``n / f``, variance of the unseen part ``n (1-f) / f``
- ``sum(x)``: ``s / f``, compound-Poisson unseen variance
  ``(n (1-f) / f) * (var_x + mean_x^2)``
- ``avg(x)``: the running mean, plain CLT interval ``± z * sd / sqrt(n)``

Per-value moments come from the hidden ``est_moments`` operator the server
adds when windowing a scheme.  Estimates are emitted as extra columns next
to the partial aggregates:

- ``est#<label>``       point estimate of the final value
- ``est.lo#<label>``    lower confidence bound
- ``est.hi#<label>``    upper confidence bound
- ``est.fraction``      fraction of the window covered by the watermark
- ``est.samples``       records folded into this window group so far
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple

from ..aggregate.ops import (
    AggregateOp,
    AliasedOp,
    AvgOp,
    CountOp,
    MomentsOp,
    SumOp,
)
from ..aggregate.scheme import AggregationScheme
from ..common.record import Record
from ..common.variant import Variant
from .assign import WINDOW_END, WINDOW_START

__all__ = [
    "z_for_confidence",
    "WindowEstimator",
    "FRACTION_LABEL",
    "SAMPLES_LABEL",
]

FRACTION_LABEL = "est.fraction"
SAMPLES_LABEL = "est.samples"

#: Standard-normal quantiles for common two-sided confidence levels.
_Z_TABLE = {0.80: 1.2816, 0.90: 1.6449, 0.95: 1.9600, 0.99: 2.5758}


def z_for_confidence(confidence: float) -> float:
    """Two-sided standard-normal critical value for ``confidence``.

    Exact for the tabulated levels; otherwise a rational approximation of
    the normal quantile (Beasley-Springer-Moro), good to ~1e-4 here.
    """
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence must be in (0, 1), got {confidence!r}")
    for level, z in _Z_TABLE.items():
        if abs(confidence - level) < 1e-9:
            return z
    # upper-tail probability -> quantile via Acklam/BSM approximation
    p = 0.5 + confidence / 2.0
    # coefficients for the central region approximation
    a = (-3.969683028665376e01, 2.209460984245205e02, -2.759285104469687e02,
         1.383577518672690e02, -3.066479806614716e01, 2.506628277459239e00)
    b = (-5.447609879822406e01, 1.615858368580409e02, -1.556989798598866e02,
         6.680131188771972e01, -1.328068155288572e01)
    q = p - 0.5
    if abs(q) <= 0.425:
        r = 0.180625 - q * q
        num = (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5])
        den = ((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0
        return q * num / den
    r = math.sqrt(-math.log(1.0 - p))
    # tail expansion (adequate for the confidence levels queries use)
    return (r - (math.log(r) + math.log(2.0 * math.pi) / 2.0) / (2.0 * r))


def _unwrap(op: AggregateOp) -> AggregateOp:
    return op.inner if isinstance(op, AliasedOp) else op


class WindowEstimator:
    """Turns per-window partial states into estimate records.

    Built once per (windowed) scheme; :meth:`estimate_records` is then a
    pure function of exported state groups and the current watermark.
    """

    def __init__(self, scheme: AggregationScheme, confidence: float = 0.90) -> None:
        self.scheme = scheme
        self.confidence = float(confidence)
        self.z = z_for_confidence(self.confidence)
        #: moment-state index per input attribute
        self._moments: Dict[str, int] = {}
        for i, op in enumerate(scheme.ops):
            target = _unwrap(op)
            if type(target) is MomentsOp:
                self._moments[target.args[0]] = i

    # -- per-operator estimators -------------------------------------------

    def _estimate_count(
        self, n: float, fraction: float
    ) -> Tuple[float, float, float]:
        if fraction >= 1.0:
            return n, n, n
        est = n / fraction
        sd = math.sqrt(max(0.0, n * (1.0 - fraction))) / fraction
        return est, est - self.z * sd, est + self.z * sd

    def _estimate_sum(
        self, s: float, moments: Optional[list], fraction: float
    ) -> Optional[Tuple[float, float, float]]:
        if fraction >= 1.0:
            return s, s, s
        est = s / fraction
        if not moments or moments[0] <= 0:
            return None
        n, ms, ssq = float(moments[0]), float(moments[1]), float(moments[2])
        mean = ms / n
        var = max(0.0, ssq / n - mean * mean)
        # est - truth = s(1-f)/f - S_unseen; with Poisson arrivals both terms
        # have per-event variance (var + mean^2), which telescopes to
        # n (1-f) (var + mean^2) / f^2.
        sd = math.sqrt(n * (1.0 - fraction) * (var + mean * mean)) / fraction
        return est, est - self.z * sd, est + self.z * sd

    def _estimate_avg(
        self, moments: Optional[list]
    ) -> Optional[Tuple[float, float, float]]:
        if not moments or moments[0] <= 0:
            return None
        n, ms, ssq = float(moments[0]), float(moments[1]), float(moments[2])
        mean = ms / n
        var = max(0.0, ssq / n - mean * mean)
        sd = math.sqrt(var / n)
        return mean, mean - self.z * sd, mean + self.z * sd

    # -- group-level API ----------------------------------------------------

    def estimate_entries(
        self,
        states: Sequence[list],
        fraction: float,
    ) -> List[Tuple[str, Variant]]:
        """Estimate columns for one group's operator states."""
        out: List[Tuple[str, Variant]] = []
        samples = 0
        f = min(max(fraction, 0.0), 1.0)
        for i, op in enumerate(self.scheme.ops):
            target = _unwrap(op)
            state = states[i]
            if type(target) is MomentsOp:
                samples = max(samples, int(state[0]))
                continue
            labels = op.output_labels()
            if not labels:
                continue
            label = labels[0]
            triple: Optional[Tuple[float, float, float]] = None
            if type(target) is CountOp:
                n = float(state[0])
                samples = max(samples, int(state[0]))
                if f > 0.0:
                    triple = self._estimate_count(n, f)
            elif type(target) is SumOp:
                count, total = state
                samples = max(samples, int(count))
                if count and f > 0.0:
                    mom = self._moments.get(target.args[0])
                    triple = self._estimate_sum(
                        float(total), states[mom] if mom is not None else None, f
                    )
            elif type(target) is AvgOp:
                count, _total = state
                samples = max(samples, int(count))
                if count:
                    mom = self._moments.get(target.args[0])
                    triple = self._estimate_avg(
                        states[mom] if mom is not None else None
                    )
            if triple is not None:
                est, lo, hi = triple
                out.append((f"est#{label}", Variant.of(float(est))))
                out.append((f"est.lo#{label}", Variant.of(float(lo))))
                out.append((f"est.hi#{label}", Variant.of(float(hi))))
        out.append((FRACTION_LABEL, Variant.of(float(f))))
        out.append((SAMPLES_LABEL, Variant.of(int(samples))))
        return out

    def estimate_records(
        self,
        groups: Sequence[Tuple[dict, Sequence[list]]],
        watermark: Optional[float],
    ) -> List[Record]:
        """Partial results + estimate columns for exported state groups.

        ``groups`` is ``[(key_entries, states), ...]`` as produced by
        ``AggregationDB.export_states`` on a windowized scheme; every key
        carries ``window.start`` / ``window.end``.
        """
        out: List[Record] = []
        for entries, states in groups:
            data = dict(entries)
            start_v = data.get(WINDOW_START)
            end_v = data.get(WINDOW_END)
            fraction = 0.0
            if (
                watermark is not None
                and start_v is not None
                and end_v is not None
                and start_v.is_numeric
                and end_v.is_numeric
            ):
                start = float(start_v.value)
                end = float(end_v.value)
                span = end - start
                if span > 0:
                    fraction = (watermark - start) / span
            # partial aggregate columns first, estimates after
            for op, state in zip(self.scheme.ops, states):
                for label, value in op.results(state):
                    data[label] = value
            for label, value in self.estimate_entries(states, fraction):
                data[label] = value
            out.append(Record.from_variants(data))
        return out
