"""Windowed streaming aggregation: assignment, watermarks, estimates.

The window subsystem turns the unbounded aggregation epoch into event-time
windows (``GROUP BY ... WINDOW tumbling(30s)``):

- :mod:`repro.window.assign` — event-time extraction and tumbling/sliding
  window assigners; windows become ``window.start`` / ``window.end`` key
  attributes, so every downstream layer (shards, relays, wire format,
  columnar batch backend) is reused unchanged.
- :mod:`repro.window.watermark` — bounded-lateness watermark tracking over
  many sources with monotone emission.
- :mod:`repro.window.estimate` — PF-OLA-style online estimates: partial
  aggregates plus CLT confidence intervals for open windows.
- :mod:`repro.window.db` — :class:`WindowedAggregationDB`, the
  single-process composition; windowized/dewindowized scheme helpers for
  the networked server.

See ``docs/streaming.md`` for semantics and guarantees.
"""

from .assign import (
    DEFAULT_TIME_ATTRIBUTE,
    WINDOW_END,
    WINDOW_START,
    EventClock,
    SlidingWindows,
    TumblingWindows,
    WindowAssigner,
    WindowError,
    format_duration,
    make_assigner,
    parse_duration,
    stamp_record,
    stamp_records,
)
from .db import (
    WindowedAggregationDB,
    dewindowize_scheme,
    window_end_of,
    windowize_scheme,
)
from .estimate import FRACTION_LABEL, SAMPLES_LABEL, WindowEstimator, z_for_confidence
from .watermark import WatermarkTracker

__all__ = [
    "WINDOW_START",
    "WINDOW_END",
    "DEFAULT_TIME_ATTRIBUTE",
    "WindowError",
    "parse_duration",
    "format_duration",
    "WindowAssigner",
    "TumblingWindows",
    "SlidingWindows",
    "make_assigner",
    "EventClock",
    "stamp_record",
    "stamp_records",
    "WatermarkTracker",
    "WindowEstimator",
    "z_for_confidence",
    "FRACTION_LABEL",
    "SAMPLES_LABEL",
    "WindowedAggregationDB",
    "windowize_scheme",
    "dewindowize_scheme",
    "window_end_of",
]
