"""Bounded-lateness watermarks over many sources.

A *watermark* is the promise "no further record with event time below this
will be folded".  Each source contributes ``max_event_time - lateness``;
the tracker's watermark is the minimum over live sources, made monotone so
a source that reconnects and replays history (grandparent failover) cannot
drag the global watermark backwards and un-retire windows.

Sources are opaque ids — client ids for record streams, sender ids for
relay FORWARDs (which report their own aggregated watermark downstream).
"""

from __future__ import annotations

from typing import Dict, Optional

__all__ = ["WatermarkTracker"]


class WatermarkTracker:
    """Per-source event-time high marks folded into one monotone watermark.

    Not thread-safe; callers serialize access (the server guards it with
    its window lock).
    """

    __slots__ = ("lateness", "_sources", "_emitted")

    def __init__(self, lateness: float = 0.0) -> None:
        if lateness < 0:
            raise ValueError(f"lateness must be >= 0, got {lateness!r}")
        self.lateness = float(lateness)
        #: source id -> watermark contributed (max event time - lateness,
        #: or a directly reported downstream watermark).
        self._sources: Dict[str, float] = {}
        self._emitted: Optional[float] = None

    def observe(self, source: str, event_time: float) -> None:
        """Fold one record's event time from ``source``."""
        mark = event_time - self.lateness
        current = self._sources.get(source)
        if current is None or mark > current:
            self._sources[source] = mark

    def update(self, source: str, watermark: float) -> None:
        """Fold a directly reported watermark (relay FORWARD piggyback)."""
        current = self._sources.get(source)
        if current is None or watermark > current:
            self._sources[source] = watermark

    def remove(self, source: str) -> None:
        """Drop a fenced/disconnected source's contribution."""
        self._sources.pop(source, None)

    def source_watermark(self, source: str) -> Optional[float]:
        return self._sources.get(source)

    @property
    def sources(self) -> Dict[str, float]:
        return dict(self._sources)

    def watermark(self) -> Optional[float]:
        """Monotone min-over-sources watermark; ``None`` before any event."""
        if self._sources:
            low = min(self._sources.values())
            if self._emitted is None or low > self._emitted:
                self._emitted = low
        return self._emitted

    def is_late(self, event_time: float, source: Optional[str] = None) -> bool:
        """True when ``event_time`` falls more than ``lateness`` behind.

        With ``source`` given, lateness is judged against that source's own
        stream front rather than the global watermark.  This matters for
        exactness under failover: a re-parented client replaying its spool
        appears as a *fresh* source whose history must fold (its records
        were never late within their own stream), while a continuing source
        emitting genuinely stale events still sees them dropped.  Windows
        already retired are guarded separately by the retire floor.
        """
        mark = self._sources.get(source) if source is not None else self.watermark()
        return mark is not None and event_time < mark
