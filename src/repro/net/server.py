"""The sharded on-line aggregation server.

:class:`AggregationServer` is the paper's on-line aggregation service
(Section IV-B) turned into a long-running TCP daemon: producer processes
stream snapshot-record batches (or pre-aggregated partial states) over the
:mod:`~repro.net.protocol` framing, and the server folds them into N
*shards* — one :class:`~repro.aggregate.db.AggregationDB` plus one worker
thread each, so the per-record hot path takes no locks (the same design
that gives the runtime its per-thread databases, applied across the
network).

Data flow::

    client conn ──decode──► hash-route by key ──► shard queue ──► shard DB
                                                 (bounded: backpressure)

* **Routing** — each record's GROUP BY values are hashed with the
  process-stable FNV hash; identical keys always land in the same shard,
  so shard databases partition the key space and merge without overlap.
* **Backpressure** — shard queues are bounded; a connection handler that
  cannot enqueue blocks before acknowledging, which TCP propagates to the
  client as a stalled send.  A fast client cannot outrun aggregation by
  more than ``shards × queue_depth`` batches.
* **Live queries** — a consistent merged snapshot is taken *without
  stopping ingestion*: an export barrier is enqueued on every shard, each
  worker exports its per-key states when it reaches the barrier (i.e.
  after everything acknowledged before the query), and the small state
  sets merge through :meth:`AggregationDB.load_states` into a throwaway
  DB whose flushed output the CalQL engine queries.
* **Exactly-once** — batches carry client-assigned sequence numbers; the
  server remembers the highest sequence folded per client *within this
  epoch* and acknowledges-but-skips duplicates, so a client replaying
  after a lost ACK cannot double-count.  Each server start draws a fresh
  random epoch id; a reconnecting client that sees a new epoch knows all
  previously acknowledged state is gone and replays its spool.
* **Relay mode** (``upstream=``) — the server becomes one interior node of
  a reduction tree (the paper's Fig. 6 MPI tree, over TCP): it folds
  incoming records and states into its shards exactly as above, but
  periodically exports the accumulated *delta*, clears the shards, and
  forwards the per-key partial states to its parent through a
  :class:`~repro.net.client.FlushClient` (write-ahead spooled, replayed,
  exactly-once).  FORWARD deltas from downstream relays are kept
  segregated per ``(sender, origin)`` and passed through with their
  origin intact, which is what makes *retraction* possible: when a relay
  dies, its children re-parent to this server (their grandparent),
  announce the dead incarnation, and this server drops everything that
  incarnation forwarded — the children's spool replay re-delivers all of
  it first-hand, so root totals stay exact through mid-tree failures.

* **Async core** (``core="async"``, the default) — a single event loop
  owns accept/read/write for *every* connection: frames are parsed
  incrementally off the stream buffer, no thread per socket, so the
  network plane scales to 10k+ concurrent clients while the shard fold
  workers stay a (lock-free) thread pool fed through the same bounded
  queues.  Blocking request paths (QUERY/DRAIN/STATS, relay folds) hop to
  a small executor so the loop never stalls.  ``core="threaded"`` keeps
  the original thread-per-connection plane for comparison benchmarks.
* **Multi-tenancy** (``tenants=``) — per-tenant namespaces keyed by an
  auth token presented in HELLO.  Each tenant folds into its own
  per-shard :class:`~repro.aggregate.db.AggregationDB`, so cross-tenant
  queries can never observe each other's records; per-tenant quotas
  bound connections, queued batches, and DB entries.
* **Admission control** — when shard queues back up (or a tenant is over
  its queued-batch quota) the async core answers ``BUSY`` with a
  ``retry_after`` instead of blocking the event loop; the batch is *not*
  folded and not dedup-marked, so the client's write-ahead spool replays
  it later — exactly-once semantics survive shedding.

Telemetry: the server keeps its own always-on
:class:`~repro.observe.MetricsRegistry` (connections, batches, bytes,
shard depths, merge times) and renders it as CalQL-queryable ``observe.*``
records — the same dogfooding contract as the runtime's ``--stats``.
"""

from __future__ import annotations

import asyncio
import os
import queue
import socket
import threading
import time
import uuid
from concurrent.futures import ThreadPoolExecutor
from typing import Optional, Union

from ..aggregate.db import AggregationDB
from ..aggregate.scheme import AggregationScheme
from ..common.errors import ReproError
from ..common.record import Record
from ..common.util import stable_hash64
from ..common.variant import Variant
from ..observe import MetricsRegistry, to_records as _metrics_to_records
from .protocol import (
    CAP_BINARY,
    FLAG_BINARY,
    HEADER,
    MAX_PAYLOAD,
    MessageType,
    ProtocolError,
    Truncated,
    busy_body,
    decode_binary_body,
    error_body,
    message_bytes,
    origin_from_wire,
    origins_from_wire,
    parse_body,
    parse_frame_header,
    read_frame_ex,
    records_from_binary,
    records_from_wire,
    records_to_wire,
    require,
    states_from_binary,
    states_from_wire,
    states_to_wire,
    write_message,
)

__all__ = ["AggregationServer", "TenantQuota", "DEFAULT_TENANT"]

_KEY_SEP = "\x1f"

#: the implicit namespace for token-less clients (quota-free by default)
DEFAULT_TENANT = "default"


class _Refused(ProtocolError):
    """A request refused by policy (auth / quota), not by malformed bytes.

    Carries a machine-readable ``code`` so the ERROR frame tells the client
    *why* — ``auth`` means fix your token, ``quota`` means this tenant hit a
    hard limit and retrying without intervention is pointless.
    """

    def __init__(self, message: str, code: str = "refused") -> None:
        super().__init__(message)
        self.code = code


class TenantQuota:
    """Per-tenant admission limits; ``0``/``None`` means unlimited."""

    __slots__ = ("max_connections", "max_queued", "max_entries")

    def __init__(
        self,
        max_connections: int = 0,
        max_queued: int = 0,
        max_entries: int = 0,
    ) -> None:
        self.max_connections = int(max_connections or 0)
        self.max_queued = int(max_queued or 0)
        self.max_entries = int(max_entries or 0)

    @classmethod
    def from_spec(cls, spec) -> tuple[str, "TenantQuota"]:
        """Accept ``"name"`` or ``{"name": ..., "max_queued": ...}`` specs.

        Dict specs take ``max_connections``, ``max_queued`` (alias
        ``max_queued_batches``), and ``max_entries`` (alias
        ``max_db_entries``).
        """
        if isinstance(spec, str):
            return spec, cls()
        if isinstance(spec, dict):
            name = spec.get("name")
            if not isinstance(name, str) or not name:
                raise ValueError(f"tenant spec needs a non-empty name: {spec!r}")
            return name, cls(
                max_connections=spec.get("max_connections", 0),
                max_queued=spec.get("max_queued", spec.get("max_queued_batches", 0)),
                max_entries=spec.get("max_entries", spec.get("max_db_entries", 0)),
            )
        raise ValueError(f"tenant spec must be a name or a dict, got {spec!r}")


class _TenantState:
    """Live counters for one tenant, guarded by the server's tenant lock."""

    __slots__ = ("name", "quota", "connections", "queued", "shed", "_lock")

    def __init__(self, name: str, quota: TenantQuota, lock: threading.Lock) -> None:
        self.name = name
        self.quota = quota
        self.connections = 0
        self.queued = 0
        self.shed = 0
        self._lock = lock

    def over_queue_quota(self) -> bool:
        limit = self.quota.max_queued
        return bool(limit) and self.queued >= limit

    def add_queued(self) -> None:
        with self._lock:
            self.queued += 1

    def release_batch(self) -> None:
        """Called by a shard worker once a queued batch has been folded."""
        with self._lock:
            if self.queued > 0:
                self.queued -= 1


def _window_closed(floor: float):
    """Predicate over exported key entries: window closed below ``floor``."""
    from ..window.db import window_end_of

    def closed(entries) -> bool:
        end = window_end_of(entries)
        return end is not None and end <= floor

    return closed


class _Shard:
    """One aggregation shard: a bounded queue feeding a worker thread.

    Only the worker thread ever touches ``db`` while the server runs, so
    aggregation itself is lock-free; cross-shard reads happen exclusively
    through export barriers processed in queue order.
    """

    def __init__(
        self, index: int, scheme: AggregationScheme, depth: int, metrics: MetricsRegistry
    ) -> None:
        self.index = index
        self.scheme = scheme
        #: tenant name -> that tenant's partition of this shard's key space.
        #: Only the worker thread creates or folds into these while the
        #: server runs (dict get/setdefault are GIL-atomic, so racy reads
        #: from quota checks and quiescent drains stay safe).
        self.dbs: dict[str, AggregationDB] = {DEFAULT_TENANT: AggregationDB(scheme)}
        self.queue: queue.Queue = queue.Queue(maxsize=depth)
        self.thread: Optional[threading.Thread] = None
        self.metrics = metrics
        self.num_batches = 0

    @property
    def db(self) -> AggregationDB:
        """The default tenant's DB — the whole shard for token-less servers."""
        return self.dbs[DEFAULT_TENANT]

    def db_for(self, tenant: str) -> AggregationDB:
        db = self.dbs.get(tenant)
        if db is None:
            db = self.dbs.setdefault(tenant, AggregationDB(self.scheme))
        return db

    def run(self) -> None:
        while True:
            item = self.queue.get()
            kind = item[0]
            try:
                if kind == "records":
                    _, tname, records, _tstate = item
                    db = self.db_for(tname)
                    for record in records:
                        db.process(record)
                    self.num_batches += 1
                elif kind == "states":
                    _, tname, groups, offered, processed, _tstate = item
                    self.db_for(tname).load_states(
                        groups, offered=offered, processed=processed
                    )
                    self.num_batches += 1
                elif kind == "export":
                    _, event, slot, tname = item
                    # export_states returns the live state lists; this
                    # worker resumes folding the moment the event is set,
                    # so hand the barrier deep copies or query-side reads
                    # tear against concurrent updates.
                    db = self.dbs.get(tname)
                    if db is None:
                        slot["states"], slot["offered"], slot["processed"] = [], 0, 0
                    else:
                        slot["states"] = [
                            (entries, [list(s) for s in states])
                            for entries, states in db.export_states()
                        ]
                        slot["offered"] = db.num_offered
                        slot["processed"] = db.num_processed
                    event.set()
                elif kind == "stall":
                    # Fault-injection hook: park this worker until the test
                    # sets the event, so backpressure (full queue -> BUSY
                    # shedding) can be provoked deterministically.
                    item[1].wait()
                elif kind == "export_clear":
                    # Relay-mode delta capture: hand over everything folded
                    # since the last cycle and reset to empty, so the same
                    # partial state is never forwarded twice.  Runs on the
                    # worker thread in queue order — batches acknowledged
                    # before the barrier are in this delta, later ones in
                    # the next.
                    _, event, slot = item
                    slot["states"] = [
                        (entries, [list(s) for s in states])
                        for entries, states in self.db.export_states()
                    ]
                    slot["offered"] = self.db.num_offered
                    slot["processed"] = self.db.num_processed
                    self.db.clear()
                    self.db.num_offered = 0
                    self.db.num_processed = 0
                    event.set()
                elif kind == "retire":
                    # Windowed retirement barrier: pop every entry whose
                    # window closed below the floor.  Runs on the worker
                    # thread in queue order, so every batch acknowledged
                    # before the barrier is inside the popped state.
                    _, event, slot, floor = item
                    slot["groups"] = self.db.pop_entries(_window_closed(floor))
                    event.set()
                elif kind == "stop":
                    item[1].set()
                    return
            except Exception:
                # A poisoned batch must never take the shard worker down:
                # the handler-side decoders validate shapes, but defence in
                # depth keeps one bad item from stalling every connection.
                self.metrics.count("net.errors", stage="shard")
                if kind in ("export", "export_clear", "retire"):
                    item[1].set()
            finally:
                if kind in ("records", "states"):
                    tstate = item[-1]
                    if tstate is not None:
                        tstate.release_batch()


class AggregationServer:
    """A threaded TCP daemon aggregating streamed snapshot records.

    >>> server = AggregationServer("AGGREGATE count GROUP BY kernel")
    >>> server.start()                                    # doctest: +SKIP
    >>> server.address                                    # doctest: +SKIP
    ('127.0.0.1', 49231)
    """

    def __init__(
        self,
        scheme: Union[AggregationScheme, str],
        host: str = "127.0.0.1",
        port: int = 0,
        shards: int = 4,
        queue_depth: int = 128,
        max_payload: int = MAX_PAYLOAD,
        upstream: Union[tuple[str, int], str, None] = None,
        forward_interval: float = 0.5,
        failover_after: Optional[float] = None,
        relay_id: Optional[str] = None,
        level: Optional[int] = None,
        forward_spool_dir: Optional[str] = None,
        binary: bool = True,
        window=None,
        lateness: float = 0.0,
        time_attribute: Optional[str] = None,
        retire_interval: float = 0.0,
        confidence: float = 0.90,
        core: str = "async",
        tenants: Optional[dict] = None,
        require_token: bool = False,
        admission_timeout: float = 1.0,
        busy_retry_after: float = 0.25,
        dedup_ttl: float = 900.0,
        backlog: int = 512,
        sampling_budget: Union[str, float, None] = None,
    ) -> None:
        window_spec = window
        if core not in ("async", "threaded"):
            raise ValueError(f"core must be 'async' or 'threaded', got {core!r}")
        #: advertised per-event overhead budget (ns): producers whose channel
        #: runs with ``sampling.budget=auto`` adopt it from the HELLO_ACK, so
        #: one serve-side flag tunes a whole fleet of clients.
        self.sampling_budget_ns: Optional[float] = None
        if sampling_budget is not None:
            from ..sampling.budget import parse_budget

            self.sampling_budget_ns = parse_budget(sampling_budget)
        if isinstance(scheme, str):
            from ..calql import parse_query  # deferred: calql builds on aggregate
            from ..calql.semantics import build_scheme

            query = parse_query(scheme)
            if window_spec is None and query.window is not None:
                # "GROUP BY k WINDOW tumbling(30s)" turns the server into a
                # windowed streaming aggregator directly from the scheme text.
                window_spec = query.window
            scheme = build_scheme(query)
        if shards < 1:
            raise ValueError(f"need at least one shard, got {shards}")

        # -- windowed streaming mode ------------------------------------------
        self.window_assigner = None
        self.windowed = False
        if window_spec is not None:
            from ..window import (
                DEFAULT_TIME_ATTRIBUTE,
                WatermarkTracker,
                WindowEstimator,
                make_assigner,
            )
            from ..window.db import dewindowize_scheme, windowize_scheme

            self.window_assigner = make_assigner(window_spec)
            self.windowed = True
            # The shards aggregate the *windowized* scheme: window.start/end
            # join the key, and hidden est_moments ops accumulate the
            # second moments the online estimator needs.  Producers may
            # still HELLO with the plain base scheme — they stream raw
            # records and this server stamps them.
            scheme = windowize_scheme(scheme)
            self._base_scheme_text = dewindowize_scheme(scheme).describe()
            self.window_lateness = float(lateness)
            self.window_time_attribute = time_attribute or DEFAULT_TIME_ATTRIBUTE
            self.window_confidence = float(confidence)
            self.retire_interval = retire_interval
            #: guards the tracker, per-source clocks, retired DB, and floor.
            #: Lock order: _forward_lock before _window_lock, never reversed.
            self._window_lock = threading.Lock()
            self._window_tracker = WatermarkTracker(self.window_lateness)
            self._window_clocks: dict[str, object] = {}
            self._window_estimator = WindowEstimator(
                scheme, confidence=self.window_confidence
            )
            #: retired windows' merged final states — combine semantics, so a
            #: straggler that raced a retirement barrier merges exactly into
            #: its window instead of duplicating it
            self._retired_db = AggregationDB(scheme, fold_plan="generic")
            self._retire_floor: Optional[float] = None
            self._window_late = 0
            self._retire_thread: Optional[threading.Thread] = None
        self.scheme = scheme
        self.host = host
        self.port = port
        self.max_payload = max_payload
        #: accept (and advertise) the zero-copy binary columnar payload encoding
        self.binary = binary
        #: cap on *decoded* binary payload size — the envelope may compress,
        #: so the frame-length check alone cannot bound allocation
        self.max_decoded = 4 * max_payload
        #: fresh random identity per start(); clients use it to detect restarts
        self.epoch = os.urandom(8).hex()
        self.metrics = MetricsRegistry()
        self._shards = [
            _Shard(i, scheme, queue_depth, self.metrics) for i in range(shards)
        ]
        self._key_labels = scheme.key
        self._listener: Optional[socket.socket] = None
        self._accept_thread: Optional[threading.Thread] = None
        self._conn_lock = threading.Lock()
        self._conns: set[socket.socket] = set()
        self._handlers: list[threading.Thread] = []
        self._seq_lock = threading.Lock()
        self._max_seq: dict[str, int] = {}
        #: dedup key -> monotonic time of last frame; idle entries past
        #: ``dedup_ttl`` are pruned so unclean disconnects (no BYE) cannot
        #: grow the map forever under client churn
        self._seq_touched: dict[str, float] = {}
        self._seq_swept = time.monotonic()
        self.dedup_ttl = float(dedup_ttl)
        self._stopping = threading.Event()
        self._started = False

        # -- network core / multi-tenancy / admission control -------------------
        self.core = core
        self.backlog = int(backlog)
        self.admission_timeout = float(admission_timeout)
        self.busy_retry_after = float(busy_retry_after)
        self.require_token = bool(require_token)
        self._tenant_lock = threading.Lock()
        #: auth token -> tenant state (token-keyed: what HELLO presents)
        self._tenants_by_token: dict[str, _TenantState] = {}
        #: tenant name -> tenant state (name-keyed: what queries scope by)
        self._tenants: dict[str, _TenantState] = {}
        default_state = _TenantState(DEFAULT_TENANT, TenantQuota(), self._tenant_lock)
        self._tenants[DEFAULT_TENANT] = default_state
        if tenants:
            if upstream is not None:
                raise ValueError("tenants are not supported in relay mode")
            if window_spec is not None:
                raise ValueError("tenants are not supported on windowed servers")
            for token, spec in tenants.items():
                if not isinstance(token, str) or not token:
                    raise ValueError(f"tenant token must be a non-empty string: {token!r}")
                name, quota = TenantQuota.from_spec(spec)
                state = self._tenants.get(name)
                if state is None:
                    state = _TenantState(name, quota, self._tenant_lock)
                    self._tenants[name] = state
                else:
                    state.quota = quota
                self._tenants_by_token[token] = state
        # asyncio core plumbing (populated by start() when core == "async")
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._loop_thread: Optional[threading.Thread] = None
        self._async_server: Optional[asyncio.base_events.Server] = None
        self._async_tasks: set = set()
        self._async_writers: set = set()
        self._executor: Optional[ThreadPoolExecutor] = None

        # -- reduction-tree state (relay mode when upstream is set) -------------
        self.upstream = _parse_upstream(upstream)
        self.is_relay = self.upstream is not None
        #: stable node identity across the tree (also the forward client id)
        self.forward_id = relay_id or f"node-{uuid.uuid4().hex[:10]}"
        #: depth in the tree, root = 0; -1 = unknown until the parent says
        self.level = level if level is not None else (0 if not self.is_relay else -1)
        self._level_explicit = level is not None
        self.forward_interval = forward_interval
        self.failover_after = failover_after
        self._forward_spool_dir = forward_spool_dir
        self._forward_client = None  # type: Optional[object]
        self._forward_thread: Optional[threading.Thread] = None
        #: guards every structure below — handlers and the forwarder race
        self._forward_lock = threading.Lock()
        #: (sender, origin) -> segregated pass-through DB; sender/origin are
        #: (id, epoch) pairs.  Segregation per origin is what lets a relay
        #: retract exactly one dead subtree's contribution later.
        self._forwarded: dict[tuple, AggregationDB] = {}
        #: sender -> every origin it ever forwarded (for retraction)
        self._origins_by_sender: dict[tuple[str, str], set] = {}
        #: sender incarnations declared dead — late deltas are ACKed but dropped
        self._fenced: set = set()
        #: origins whose retraction must ride ahead of the next forward cycle
        self._pending_retracts: set = set()
        #: node id -> latest telemetry summary heard from the subtree
        self._tree_stats: dict[str, dict] = {}
        self._combine_seconds = 0.0
        self._forwards_received = 0

    # -- lifecycle -------------------------------------------------------------

    def start(self) -> "AggregationServer":
        """Bind, listen, and spawn the shard and accept threads."""
        if self._started:
            raise ReproError("server already started")
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((self.host, self.port))
        self._listener = listener
        self.port = listener.getsockname()[1]
        for shard in self._shards:
            shard.thread = threading.Thread(
                target=shard.run, name=f"repro-net-shard-{shard.index}", daemon=True
            )
            shard.thread.start()
        if self.core == "async":
            # The event loop owns the listener: asyncio.start_server calls
            # listen() itself with our backlog.
            self._executor = ThreadPoolExecutor(
                max_workers=4, thread_name_prefix="repro-net-blocking"
            )
            ready = threading.Event()
            boot: dict = {}
            self._loop_thread = threading.Thread(
                target=self._loop_main,
                args=(ready, boot),
                name="repro-net-loop",
                daemon=True,
            )
            self._loop_thread.start()
            ready.wait(timeout=10.0)
            if "error" in boot:
                self._started = True  # let stop() tear down what came up
                self.stop()
                raise boot["error"]
        else:
            listener.listen(self.backlog)
            self._accept_thread = threading.Thread(
                target=self._accept_loop, name="repro-net-accept", daemon=True
            )
            self._accept_thread.start()
        self._started = True
        self.metrics.gauge("net.shards", len(self._shards))
        if self.is_relay:
            from .client import FlushClient  # deferred: client imports protocol only

            self._forward_client = FlushClient(
                self.upstream[0],
                self.upstream[1],
                scheme=self.scheme.describe(),
                client_id=self.forward_id,
                spool_dir=self._forward_spool_dir,
                failover_after=self.failover_after,
                retries=1,
                backoff=0.05,
                backoff_max=0.5,
                binary=self.binary,
            )
            if self.forward_interval and self.forward_interval > 0:
                self._forward_thread = threading.Thread(
                    target=self._forward_loop, name="repro-net-forward", daemon=True
                )
                self._forward_thread.start()
        if (
            self.windowed
            and not self.is_relay
            and self.retire_interval
            and self.retire_interval > 0
        ):
            # Only the root retires: relays clear their shards every forward
            # cycle, so closed-window state never accumulates there.
            self._retire_thread = threading.Thread(
                target=self._retire_loop, name="repro-net-retire", daemon=True
            )
            self._retire_thread.start()
        return self

    @property
    def address(self) -> tuple[str, int]:
        """``(host, port)`` — the port is concrete once started (0 = ephemeral)."""
        return (self.host, self.port)

    def __enter__(self) -> "AggregationServer":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()

    def stop(self, timeout: float = 10.0) -> None:
        """Graceful drain: stop accepting, finish queued work, join workers.

        Open connections are closed (clients see an orderly EOF and spool
        anything unacknowledged); every batch already enqueued is folded
        before the shard threads exit, so a subsequent
        :meth:`drain_results` observes all acknowledged data.
        """
        self._stopping.set()
        if self.core == "async":
            self._shutdown_loop(graceful=True, timeout=timeout)
        else:
            self._close_listener()
            with self._conn_lock:
                conns = list(self._conns)
            for conn in conns:
                _close_quietly(conn)
            for thread in list(self._handlers):
                thread.join(timeout=timeout)
        done = []
        for shard in self._shards:
            event = threading.Event()
            shard.queue.put(("stop", event))
            done.append(event)
        for event in done:
            event.wait(timeout=timeout)
        if self._forward_thread is not None:
            self._forward_thread.join(timeout=timeout)
            self._forward_thread = None
        if self.windowed and self._retire_thread is not None:
            self._retire_thread.join(timeout=timeout)
            self._retire_thread = None
        if self.is_relay and self._forward_client is not None:
            # Final forward: the shards are quiescent now, so this ships the
            # residue (and any pending retraction) upstream before goodbye.
            try:
                self.forward_now(final=True)
            except ReproError:
                pass  # parent unreachable: the forward spool keeps the delta
            self._forward_client.close()

    def kill(self) -> None:
        """Abrupt shutdown for fault-injection tests: drop every socket now.

        No drain, no goodbye frames — clients observe a reset mid-stream,
        exactly like a crashed server process.  Shard state is abandoned.
        """
        self._stopping.set()
        if self.core == "async":
            self._shutdown_loop(graceful=False, timeout=5.0)
        else:
            self._close_listener()
            with self._conn_lock:
                conns = list(self._conns)
            for conn in conns:
                _close_quietly(conn)
        for shard in self._shards:
            try:
                shard.queue.put_nowait(("stop", threading.Event()))
            except queue.Full:
                pass  # daemon thread; abandoned with the rest of the state
        if self._forward_client is not None:
            # A killed relay never flushes upstream: drop the connection and
            # poison the client so a racing forwarder thread cannot revive it.
            self._forward_client.abort()

    def _close_listener(self) -> None:
        listener, self._listener = self._listener, None
        if listener is not None:
            _close_quietly(listener)
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=5.0)
            self._accept_thread = None

    # -- asyncio network core ----------------------------------------------------

    def _loop_main(self, ready: threading.Event, boot: dict) -> None:
        """Body of the event-loop thread: one loop owns every connection."""
        loop = asyncio.new_event_loop()
        self._loop = loop
        asyncio.set_event_loop(loop)

        async def _boot() -> None:
            self._listener.setblocking(False)
            # start_server calls listen() on the pre-bound socket itself,
            # honoring our backlog — the port was fixed at bind time so
            # ``address`` is already concrete for callers.
            self._async_server = await asyncio.start_server(
                self._client_connected, sock=self._listener, backlog=self.backlog
            )

        try:
            loop.run_until_complete(_boot())
        except Exception as exc:
            boot["error"] = exc
        finally:
            ready.set()
        if "error" not in boot:
            interval = max(0.05, min(self.dedup_ttl / 4.0, 30.0)) if self.dedup_ttl else 30.0
            self._housekeeping_task = loop.create_task(self._housekeeping(interval))
            loop.run_forever()
        try:
            loop.run_until_complete(loop.shutdown_asyncgens())
        except Exception:
            pass
        loop.close()

    async def _housekeeping(self, interval: float) -> None:
        """Periodic event-loop chores: prune idle dedup state."""
        try:
            while not self._stopping.is_set():
                await asyncio.sleep(interval)
                self._prune_dedup()
        except asyncio.CancelledError:
            pass

    async def _client_connected(self, reader, writer) -> None:
        task = asyncio.current_task()
        self._async_tasks.add(task)
        self._async_writers.add(writer)
        self.metrics.count("net.connections")
        try:
            await self._serve_connection_async(reader, writer)
        except asyncio.CancelledError:
            pass  # kill() or shutdown cancelled us mid-frame
        except (Truncated, OSError, ValueError, ConnectionError):
            # Peer vanished (or our own shutdown closed the socket):
            # nothing to report to — drop the connection.
            self.metrics.count("net.disconnects", reason="io")
        except ProtocolError as exc:
            self.metrics.count("net.errors", stage="protocol")
            await self._send_error_async(writer, exc)
        except ReproError as exc:
            self.metrics.count("net.errors", stage="request")
            await self._send_error_async(writer, exc, code="request")
        finally:
            self._async_writers.discard(writer)
            self._async_tasks.discard(task)
            try:
                writer.close()
            except Exception:
                pass

    async def _send_error_async(self, writer, exc, code: Optional[str] = None) -> None:
        code = code or getattr(exc, "code", None) or "protocol"
        try:
            writer.write(
                message_bytes(MessageType.ERROR, error_body(str(exc), code=code))
            )
            await writer.drain()
        except (OSError, ConnectionError):
            pass

    async def _read_async(self, reader) -> tuple[MessageType, dict, dict]:
        """Incremental frame parse off the stream buffer (no thread, no poll)."""
        try:
            header = await reader.readexactly(HEADER.size)
        except asyncio.IncompleteReadError as exc:
            if exc.partial:
                raise Truncated("connection closed mid-frame") from None
            raise Truncated("connection closed") from None
        mtype, flags, length = parse_frame_header(header, self.max_payload)
        payload = b""
        if length:
            try:
                payload = await reader.readexactly(length)
            except asyncio.IncompleteReadError:
                raise Truncated("connection closed mid-frame") from None
        nbytes = HEADER.size + len(payload)
        self.metrics.count("net.bytes.rx", nbytes)
        if mtype is MessageType.FORWARD:
            self.metrics.count("net.forward.bytes.rx", nbytes)
        if flags & FLAG_BINARY:
            if not self.binary:
                raise ProtocolError(
                    "binary payload received but this server only speaks JSON"
                )
            body, sections = decode_binary_body(payload, max_decoded=self.max_decoded)
            return mtype, body, sections
        return mtype, parse_body(mtype, payload), {}

    async def _write_async(self, writer, mtype: MessageType, body: dict) -> None:
        data = message_bytes(mtype, body)
        writer.write(data)
        await writer.drain()
        self.metrics.count("net.bytes.tx", len(data))

    async def _serve_connection_async(self, reader, writer) -> None:
        mtype, body, _ = await self._read_async(reader)
        if mtype is not MessageType.HELLO:
            raise ProtocolError(f"expected HELLO, got {mtype.name}")
        client_id, tenant, ack = self._handshake(body)
        try:
            await self._write_async(writer, MessageType.HELLO_ACK, ack)
            loop = asyncio.get_running_loop()
            while True:
                mtype, body, sections = await self._read_async(reader)
                if mtype is MessageType.BYE:
                    self._forget_client(tenant, client_id)
                    self.metrics.count("net.disconnects", reason="bye")
                    return
                if mtype is MessageType.RECORDS:
                    resp = await self._fold_records_async(
                        tenant, client_id, body, sections
                    )
                elif mtype is MessageType.STATES:
                    resp = await self._fold_states_async(
                        tenant, client_id, body, sections
                    )
                elif mtype is MessageType.FORWARD:
                    # Folding a relay delta contends on _forward_lock; queries
                    # and drains run export barriers.  All of them hop to the
                    # executor so the loop keeps absorbing reads meanwhile.
                    resp = await loop.run_in_executor(
                        self._executor, self._fold_forward, client_id, body, sections
                    )
                elif mtype is MessageType.RETRACT:
                    resp = await loop.run_in_executor(
                        self._executor, self._fold_retract, client_id, body
                    )
                elif mtype is MessageType.QUERY:
                    resp = await loop.run_in_executor(
                        self._executor, self._query_response, body, tenant
                    )
                elif mtype is MessageType.STATS:
                    resp = await loop.run_in_executor(
                        self._executor, self._stats_response
                    )
                elif mtype is MessageType.DRAIN:
                    resp = await loop.run_in_executor(
                        self._executor, self._drain_response, tenant
                    )
                else:
                    raise ProtocolError(f"unexpected {mtype.name} frame")
                await self._write_async(writer, *resp)
        finally:
            self._release_conn(tenant)

    def _shutdown_loop(self, graceful: bool, timeout: float) -> None:
        """Tear down the asyncio plane from the caller's (non-loop) thread."""
        loop, thread = self._loop, self._loop_thread
        if loop is None or thread is None:
            # start() never brought the loop up: just close the bare socket.
            listener, self._listener = self._listener, None
            if listener is not None:
                _close_quietly(listener)
            return
        if loop.is_running():
            try:
                fut = asyncio.run_coroutine_threadsafe(
                    self._shutdown_async(graceful, timeout), loop
                )
                fut.result(timeout=timeout + 5.0)
            except Exception:
                pass
            loop.call_soon_threadsafe(loop.stop)
        thread.join(timeout=timeout + 5.0)
        self._loop_thread = None
        self._loop = None
        self._listener = None
        executor, self._executor = self._executor, None
        if executor is not None:
            executor.shutdown(wait=graceful)

    async def _shutdown_async(self, graceful: bool, timeout: float) -> None:
        current = asyncio.current_task()
        task = getattr(self, "_housekeeping_task", None)
        if task is not None:
            task.cancel()
        server, self._async_server = self._async_server, None
        if server is not None:
            server.close()
        for writer in list(self._async_writers):
            try:
                if graceful:
                    # Orderly EOF: clients observe the close and spool
                    # anything unacknowledged for replay.
                    writer.close()
                else:
                    transport = writer.transport
                    if transport is not None:
                        transport.abort()
            except Exception:
                pass
        tasks = [t for t in self._async_tasks if t is not current and not t.done()]
        if graceful and tasks:
            _, pending = await asyncio.wait(tasks, timeout=min(timeout, 5.0))
            tasks = list(pending)
        for t in tasks:
            t.cancel()
        if tasks:
            await asyncio.wait(tasks, timeout=2.0)
        if server is not None:
            try:
                await asyncio.wait_for(server.wait_closed(), timeout=2.0)
            except Exception:
                pass

    # -- routing ----------------------------------------------------------------

    def _shard_of_key(self, key_text: str) -> int:
        return stable_hash64(key_text.encode("utf-8")) % len(self._shards)

    def _record_key(self, record: Record) -> str:
        get = record.get
        return _KEY_SEP.join(get(label).to_string() for label in self._key_labels)

    def _bucket_records(self, records: list[Record]) -> list[tuple[_Shard, list[Record]]]:
        n = len(self._shards)
        if n == 1:
            return [(self._shards[0], records)]
        buckets: list[list[Record]] = [[] for _ in range(n)]
        for record in records:
            buckets[self._shard_of_key(self._record_key(record))].append(record)
        return [(s, b) for s, b in zip(self._shards, buckets) if b]

    def _bucket_states(
        self, groups: list[tuple[dict[str, Variant], list[list]]], offered: int, processed: int
    ) -> list[tuple[_Shard, list, int, int]]:
        n = len(self._shards)
        if n == 1:
            return [(self._shards[0], groups, offered, processed)]
        buckets: list[list] = [[] for _ in range(n)]
        for entries, cells in groups:
            key_text = _KEY_SEP.join(
                entries.get(label, Variant.empty()).to_string()
                for label in self._key_labels
            )
            buckets[self._shard_of_key(key_text)].append((entries, cells))
        # Stream counters are global, not per-key; attribute them to the
        # first non-empty bucket so totals stay exact after merging.
        out: list[tuple[_Shard, list, int, int]] = []
        counted = False
        for shard, bucket in zip(self._shards, buckets):
            if bucket:
                out.append(
                    (shard, bucket, 0 if counted else offered, 0 if counted else processed)
                )
                counted = True
        if not counted and (offered or processed):
            out.append((self._shards[0], [], offered, processed))
        return out

    def _route_records(self, tenant: _TenantState, records: list[Record]) -> None:
        for shard, bucket in self._bucket_records(records):
            self._enqueue_counted(tenant, shard, ("records", tenant.name, bucket, tenant))

    def _route_states(
        self,
        tenant: _TenantState,
        groups: list[tuple[dict[str, Variant], list[list]]],
        offered: int,
        processed: int,
    ) -> None:
        for shard, bucket, off, proc in self._bucket_states(groups, offered, processed):
            self._enqueue_counted(
                tenant, shard, ("states", tenant.name, bucket, off, proc, tenant)
            )

    def _enqueue(self, shard: _Shard, item: tuple) -> None:
        # Bounded put = backpressure.  Wake up periodically so a connection
        # blocked on a full queue still notices server shutdown.
        while True:
            try:
                shard.queue.put(item, timeout=0.2)
                return
            except queue.Full:
                if self._stopping.is_set():
                    raise ReproError("server is shutting down") from None

    def _enqueue_counted(self, tenant: _TenantState, shard: _Shard, item: tuple) -> None:
        """Blocking enqueue (threaded core) with tenant queue accounting."""
        self._enqueue(shard, item)
        tenant.add_queued()

    async def _route_records_async(
        self, tenant: _TenantState, records: list[Record], shed: bool = True
    ) -> bool:
        puts = [
            (shard, ("records", tenant.name, bucket, tenant))
            for shard, bucket in self._bucket_records(records)
        ]
        return await self._put_async(tenant, puts, shed)

    async def _route_states_async(
        self, tenant: _TenantState, groups: list, offered: int, processed: int
    ) -> bool:
        puts = [
            (shard, ("states", tenant.name, bucket, off, proc, tenant))
            for shard, bucket, off, proc in self._bucket_states(groups, offered, processed)
        ]
        return await self._put_async(tenant, puts, shed=True)

    async def _put_async(self, tenant: _TenantState, puts: list, shed: bool) -> bool:
        """Admission-controlled enqueue on the event loop: never blocks it.

        Returns False (-> BUSY) when a full shard queue outlasts
        ``admission_timeout`` — but only while *nothing* from this batch has
        committed.  Once any bucket is queued the batch must complete: a
        half-folded batch answered BUSY would double-count on redelivery
        (the seq is only marked after the last bucket lands).
        """
        loop = asyncio.get_running_loop()
        deadline = loop.time() + self.admission_timeout
        committed = False
        for shard, item in puts:
            while True:
                try:
                    shard.queue.put_nowait(item)
                except queue.Full:
                    if self._stopping.is_set():
                        raise ReproError("server is shutting down")
                    if shed and not committed and loop.time() >= deadline:
                        return False
                    await asyncio.sleep(0.002)
                    continue
                tenant.add_queued()
                committed = True
                break
        return True

    # -- reduction tree: sending side ---------------------------------------------

    def _forward_loop(self) -> None:
        while not self._stopping.wait(timeout=self.forward_interval):
            try:
                self.forward_now()
            except ReproError:
                # Closed client during shutdown, or a parent that answered
                # with a hard refusal: either way the spool has the delta
                # and hammering the parent helps nobody this cycle.
                self.metrics.count("net.errors", stage="forward")
                if self._stopping.is_set():
                    return

    def _retire_loop(self) -> None:
        while not self._stopping.wait(timeout=self.retire_interval):
            try:
                self.retire_now()
            except ReproError:
                self.metrics.count("net.errors", stage="retire")
                if self._stopping.is_set():
                    return

    def forward_now(self, final: bool = False) -> bool:
        """Run one forward cycle: retracts first, then every pending delta.

        Exports-and-clears each shard (our own contribution since the last
        cycle), detaches the segregated pass-through DBs, and ships
        everything upstream tagged with its origin.  Returns True when the
        parent acknowledged everything; False leaves the deltas in the
        forward client's write-ahead spool for the next cycle's replay.
        Public so tests and drains can force a deterministic cycle.
        """
        if not self.is_relay:
            raise ReproError("forward_now() requires relay mode (upstream=)")
        client = self._forward_client
        watermark = None
        if self.windowed:
            # Captured *before* the export barrier: every record that
            # advanced the tracker to this mark was folded before the
            # barrier, so the delta carrying the mark also carries all data
            # below it — the invariant root-side retirement relies on.
            with self._window_lock:
                watermark = self._window_tracker.watermark()
        with self._forward_lock:
            retracts = sorted(self._pending_retracts)
            self._pending_retracts.clear()
            detached, self._forwarded = self._forwarded, {}
        ok = True
        if retracts:
            # Must precede any re-forwarded data; both ride the client's
            # sequence stream, so spooled ordering survives parent outages.
            ok = client.send_retract(retracts, from_epoch=self.epoch) and ok
        own_groups: list = []
        own_offered = 0
        own_processed = 0
        for slot in self._collect_shard_deltas(final=final):
            own_groups.extend(states_to_wire(slot["states"]))
            own_offered += slot["offered"]
            own_processed += slot["processed"]
        for (sender, origin), db in sorted(detached.items()):
            if not (db.num_entries or db.num_offered or db.num_processed):
                continue
            ok = (
                client.send_forward(
                    states_to_wire(db.export_states()),
                    origin=origin,
                    from_epoch=self.epoch,
                    level=self.level,
                    offered=db.num_offered,
                    processed=db.num_processed,
                )
                and ok
            )
        if own_groups or own_offered or own_processed or final or watermark is not None:
            # Sent last so the piggybacked telemetry already counts this
            # cycle's pass-through traffic (it can never include itself).
            # A windowed relay forwards even an empty cycle: the piggybacked
            # watermark is what lets the root retire windows.
            ok = (
                client.send_forward(
                    own_groups,
                    origin=(self.forward_id, self.epoch),
                    from_epoch=self.epoch,
                    level=self.level,
                    offered=own_offered,
                    processed=own_processed,
                    telemetry=self._tree_telemetry(),
                    watermark=watermark,
                )
                and ok
            )
        if client.num_spooled:
            # Nothing new may be pending this cycle, but earlier deltas can
            # still sit in the spool behind a dead parent: every cycle must
            # retry them, because redelivery is also what drives the
            # failure window towards re-parenting.
            ok = client.flush() and ok
        self._refresh_level()
        self.metrics.gauge("net.forward.spooled", client.num_spooled)
        return ok

    def _collect_shard_deltas(self, final: bool = False) -> list[dict]:
        """Export-and-clear barrier on every shard (direct when quiescent)."""
        pending: list[tuple[Optional[threading.Event], dict, "_Shard"]] = []
        for shard in self._shards:
            if shard.thread is None or not shard.thread.is_alive():
                slot = {
                    "states": shard.db.export_states(),
                    "offered": shard.db.num_offered,
                    "processed": shard.db.num_processed,
                }
                shard.db.clear()
                shard.db.num_offered = 0
                shard.db.num_processed = 0
                pending.append((None, slot, shard))
                continue
            event = threading.Event()
            slot = {}
            self._enqueue(shard, ("export_clear", event, slot))
            pending.append((event, slot, shard))
        slots = []
        for event, slot, shard in pending:
            if event is not None:
                while not event.wait(timeout=0.2):
                    if shard.thread is None or not shard.thread.is_alive():
                        # Worker exited with the barrier still queued (server
                        # stopping): the DB is quiescent, take it directly.
                        slot = {
                            "states": shard.db.export_states(),
                            "offered": shard.db.num_offered,
                            "processed": shard.db.num_processed,
                        }
                        shard.db.clear()
                        shard.db.num_offered = 0
                        shard.db.num_processed = 0
                        break
            slots.append(slot if slot else {"states": [], "offered": 0, "processed": 0})
        return slots

    def _refresh_level(self) -> None:
        """Derive our depth from the parent's advertised level (root = 0)."""
        if self._level_explicit or self._forward_client is None:
            return
        parent_level = self._forward_client.server_info.get("level")
        if isinstance(parent_level, int) and parent_level >= 0:
            self.level = parent_level + 1

    def _tree_summary(self) -> dict:
        """This node's own line of per-level tree telemetry."""
        counters = self._forward_client.counters if self._forward_client else {}
        return {
            "node": self.forward_id,
            "level": self.level,
            "forwarded_batches": counters.get("batches", 0),
            "forwarded_bytes": counters.get("wire_bytes", 0),
            "combine_seconds": self._combine_seconds,
            "forwards_received": self._forwards_received,
            "failovers": counters.get("failovers", 0),
        }

    def _tree_telemetry(self) -> list[dict]:
        """Everything we know about the subtree, ourselves included.

        Piggybacks on the own-origin FORWARD each cycle so the root can
        answer per-level CalQL queries (levels, forwarded wire bytes,
        combine time) without a separate telemetry channel.
        """
        with self._forward_lock:
            downstream = [dict(summary) for summary in self._tree_stats.values()]
        return [self._tree_summary()] + downstream

    # -- merged views ------------------------------------------------------------

    def _snapshot_states(
        self, timeout: float = 30.0, tenant: str = DEFAULT_TENANT
    ) -> list[dict]:
        """Export barrier on every shard: a consistent cross-shard snapshot.

        Scoped to one tenant's namespace — the barrier only ever exports
        that tenant's per-shard DB, which is what makes cross-tenant reads
        structurally impossible rather than merely filtered.
        """

        def _quiescent(shard: _Shard) -> dict:
            db = shard.dbs.get(tenant)
            if db is None:
                return {"states": [], "offered": 0, "processed": 0}
            return {
                "states": db.export_states(),
                "offered": db.num_offered,
                "processed": db.num_processed,
            }

        pending: list[tuple[Optional[threading.Event], dict]] = []
        for shard in self._shards:
            if shard.thread is None or not shard.thread.is_alive():
                # Quiescent shard (drained by stop()): its worker is gone and
                # nothing mutates the DB anymore, so read it directly.
                pending.append((None, _quiescent(shard)))
                continue
            event = threading.Event()
            slot: dict = {}
            self._enqueue(shard, ("export", event, slot, tenant))
            pending.append((event, slot))
        slots = []
        for shard, (event, slot) in zip(self._shards, pending):
            if event is not None:
                deadline = time.monotonic() + timeout
                while not event.wait(timeout=0.2):
                    if shard.thread is None or not shard.thread.is_alive():
                        # Worker exited between enqueue and barrier (server
                        # stopping): the DB is quiescent, read it directly.
                        slot = _quiescent(shard)
                        break
                    if time.monotonic() > deadline:
                        raise ReproError("timed out waiting for a shard snapshot")
            slots.append(slot)
        # Forwarded (reduction-tree) partial DBs live outside the shards so
        # they stay retractable per origin; a consistent merged view must
        # include them.  Deep-copy under the lock — FORWARD handlers fold
        # into these DBs concurrently.  Relay mode forbids tenants, so the
        # forwarded DBs belong to the default namespace only.
        if tenant == DEFAULT_TENANT:
            with self._forward_lock:
                for db in self._forwarded.values():
                    slots.append(
                        {
                            "states": [
                                (entries, [list(s) for s in states])
                                for entries, states in db.export_states()
                            ],
                            "offered": db.num_offered,
                            "processed": db.num_processed,
                        }
                    )
        return slots

    def merged_db(self, tenant: str = DEFAULT_TENANT) -> AggregationDB:
        """A consistent merge of all shards (ingestion keeps running)."""
        start = time.perf_counter()
        db = AggregationDB(self.scheme)
        for slot in self._snapshot_states(tenant=tenant):
            db.load_states(
                slot["states"], offered=slot["offered"], processed=slot["processed"]
            )
        if self.windowed:
            # Retired windows were popped out of the shards; totals must
            # still include them.
            with self._window_lock:
                retired = [
                    (entries, [list(s) for s in states])
                    for entries, states in self._retired_db.export_states()
                ]
            db.load_states(retired)
        self.metrics.timing("net.merge", time.perf_counter() - start)
        return db

    def drain_results(self, tenant: str = DEFAULT_TENANT) -> list[Record]:
        """Flushed output records over everything ingested so far."""
        return self.merged_db(tenant=tenant).flush()

    # -- windowed streaming: watermarks, retirement, estimates --------------------

    def watermark(self) -> Optional[float]:
        """The current global event-time watermark (None before any event)."""
        if not self.windowed:
            return None
        with self._window_lock:
            return self._window_tracker.watermark()

    def retire_now(self) -> list[Record]:
        """Finalize every window closed below the current watermark.

        Pops closed windows' state out of the shards and the forwarded
        per-origin DBs, merges it into the retired-results DB, and returns
        the newly retired windows' final records.  Only meaningful at the
        tree root: relays clear their shards every forward cycle, so their
        windows retire upstream.

        Exactness across retirement: a window retires only once the
        min-over-active-senders watermark passes its end, which (with the
        forward cycle's capture-then-export ordering and the per-sender FIFO
        spool) means every record below that end has been folded here.  Any
        record for a retired window that shows up later — a genuinely late
        event, or a spool replay after a mid-tree failover whose data is
        already inside the retired result — has an event time below the
        watermark and is dropped as late by :meth:`_window_stamp` /
        :meth:`_on_forward`.
        """
        if not self.windowed:
            raise ReproError("retire_now() requires a windowed server")
        if self.is_relay:
            raise ReproError("relays do not retire windows; query the root")
        with self._window_lock:
            mark = self._window_tracker.watermark()
        if mark is None:
            return []
        popped: list = []
        pending: list[tuple[Optional[threading.Event], dict, "_Shard"]] = []
        closed = _window_closed(mark)
        for shard in self._shards:
            if shard.thread is None or not shard.thread.is_alive():
                pending.append((None, {"groups": shard.db.pop_entries(closed)}, shard))
                continue
            event = threading.Event()
            slot: dict = {}
            self._enqueue(shard, ("retire", event, slot, mark))
            pending.append((event, slot, shard))
        for event, slot, shard in pending:
            if event is not None:
                while not event.wait(timeout=0.2):
                    if shard.thread is None or not shard.thread.is_alive():
                        slot["groups"] = shard.db.pop_entries(closed)
                        break
            popped.extend(slot.get("groups", ()))
        with self._forward_lock:
            for db in self._forwarded.values():
                popped.extend(db.pop_entries(closed))
        with self._window_lock:
            if self._retire_floor is None or mark > self._retire_floor:
                self._retire_floor = mark
        if not popped:
            return []
        fresh = AggregationDB(self.scheme, fold_plan="generic")
        fresh.load_states(popped)
        with self._window_lock:
            self._retired_db.load_states(
                [
                    (entries, [list(s) for s in states])
                    for entries, states in fresh.export_states()
                ]
            )
        records = fresh.flush()
        windows = {
            (r.get("window.start").value, r.get("window.end").value) for r in records
        }
        self.metrics.count("window.retired", len(windows))
        return records

    def retired_results(self) -> list[Record]:
        """Final records for every window retired so far."""
        if not self.windowed:
            raise ReproError("retired_results() requires a windowed server")
        with self._window_lock:
            return self._retired_db.flush()

    def estimate_results(self) -> list[Record]:
        """Open windows' partial aggregates plus confidence intervals.

        A consistent snapshot of the open-window state (shards + forwarded
        DBs, *excluding* retired windows) rendered through the PF-OLA
        estimator: every record carries ``est#...``/``est.lo#...``/
        ``est.hi#...`` columns plus ``est.fraction`` and ``est.samples``.
        """
        if not self.windowed:
            raise ReproError("estimate_results() requires a windowed server")
        db = AggregationDB(self.scheme, fold_plan="generic")
        for slot in self._snapshot_states():
            db.load_states(slot["states"])
        with self._window_lock:
            mark = self._window_tracker.watermark()
        return self._window_estimator.estimate_records(db.export_states(), mark)

    def run_query(
        self, text: str, target: str = "aggregate", tenant: str = DEFAULT_TENANT
    ):
        """Run CalQL against the live merged state (or the telemetry).

        ``target="aggregate"`` queries the flushed output of a consistent
        merged snapshot — the two-stage workflow of Section VI-B with the
        first stage still running.  ``target="telemetry"`` queries the
        server's own ``observe.*`` metric records instead.  Windowed servers
        add ``target="estimate"`` (open windows with confidence intervals)
        and ``target="retired"`` (finalized windows only).
        """
        from ..query.engine import QueryEngine  # deferred: query sits above net

        start = time.perf_counter()
        if target == "telemetry":
            records = self.stats_records()
        elif target == "aggregate":
            records = self.drain_results(tenant=tenant)
        elif target == "estimate":
            records = self.estimate_results()
        elif target == "retired":
            records = self.retired_results()
        else:
            raise ProtocolError(f"unknown query target {target!r}")
        result = QueryEngine(text).run(records)
        self.metrics.timing("net.query", time.perf_counter() - start, target=target)
        self.metrics.count("net.queries", target=target)
        return result

    # -- telemetry ---------------------------------------------------------------

    def stats_records(self) -> list[Record]:
        """Server telemetry as CalQL-queryable ``observe.*`` records."""
        for shard in self._shards:
            self.metrics.gauge(
                "net.shard.depth", shard.queue.qsize(), shard=shard.index
            )
            self.metrics.gauge(
                "net.shard.entries", shard.db.num_entries, shard=shard.index
            )
        with self._tenant_lock:
            tenant_rows = [
                (t.name, t.connections, t.queued, t.shed)
                for t in self._tenants.values()
            ]
        if len(tenant_rows) > 1:
            for name, conns, queued, shed in tenant_rows:
                self.metrics.gauge("net.tenant.connections", conns, tenant=name)
                self.metrics.gauge("net.tenant.queued", queued, tenant=name)
                self.metrics.gauge("net.tenant.shed", shed, tenant=name)
                self.metrics.gauge(
                    "net.tenant.entries",
                    sum(
                        shard.dbs[name].num_entries
                        for shard in self._shards
                        if name in shard.dbs
                    ),
                    tenant=name,
                )
        records = _metrics_to_records(self.metrics)
        summary = {
            "observe.kind": Variant.of("server"),
            "observe.epoch": Variant.of(self.epoch),
            "observe.core": Variant.of(self.core),
            "observe.shards": Variant.of(len(self._shards)),
            "observe.scheme": Variant.of(self.scheme.describe()),
            "observe.entries": Variant.of(
                sum(shard.db.num_entries for shard in self._shards)
            ),
            "observe.batches": Variant.of(
                sum(shard.num_batches for shard in self._shards)
            ),
        }
        if self.windowed:
            with self._window_lock:
                mark = self._window_tracker.watermark()
                late = self._window_late
                retired = self._retired_db.num_entries
            summary["observe.window.late"] = Variant.of(late)
            summary["observe.window.retired"] = Variant.of(retired)
            if mark is not None:
                summary["observe.window.watermark"] = Variant.of(mark)
        records.append(Record.from_variants(summary))
        with self._forward_lock:
            tree_nodes = [self._tree_summary()] + [
                dict(s) for s in self._tree_stats.values()
            ]
        if self.is_relay or len(tree_nodes) > 1:
            # One record per known tree node — per-level combine time and
            # forwarded wire bytes become ordinary CalQL-queryable facts
            # (``... WHERE observe.kind = tree GROUP BY observe.level``).
            for node in tree_nodes:
                records.append(
                    Record.from_variants(
                        {
                            "observe.kind": Variant.of("tree"),
                            "observe.node": Variant.of(str(node.get("node", ""))),
                            "observe.level": Variant.of(int(node.get("level", -1))),
                            "observe.forward.batches": Variant.of(
                                int(node.get("forwarded_batches", 0))
                            ),
                            "observe.forward.bytes": Variant.of(
                                int(node.get("forwarded_bytes", 0))
                            ),
                            "observe.combine.seconds": Variant.of(
                                float(node.get("combine_seconds", 0.0))
                            ),
                            "observe.forwards": Variant.of(
                                int(node.get("forwards_received", 0))
                            ),
                            "observe.failovers": Variant.of(
                                int(node.get("failovers", 0))
                            ),
                        }
                    )
                )
        return records

    # -- connection handling -------------------------------------------------------

    def _accept_loop(self) -> None:
        listener = self._listener
        while not self._stopping.is_set():
            try:
                conn, addr = listener.accept()
            except OSError:
                return  # listener closed
            with self._conn_lock:
                if self._stopping.is_set():
                    _close_quietly(conn)
                    return
                self._conns.add(conn)
            self.metrics.count("net.connections")
            self._handlers = [t for t in self._handlers if t.is_alive()]
            thread = threading.Thread(
                target=self._handle_connection,
                args=(conn,),
                name=f"repro-net-conn-{addr[1]}",
                daemon=True,
            )
            self._handlers.append(thread)
            thread.start()

    def _handle_connection(self, conn: socket.socket) -> None:
        rfile = conn.makefile("rb")
        wfile = conn.makefile("wb")
        try:
            self._serve_connection(rfile, wfile)
        except (Truncated, OSError, ValueError):
            # Peer vanished (or our own shutdown closed the socket):
            # nothing to report to — drop the connection.
            self.metrics.count("net.disconnects", reason="io")
        except ProtocolError as exc:
            self.metrics.count("net.errors", stage="protocol")
            try:
                self._write(
                    wfile,
                    MessageType.ERROR,
                    error_body(str(exc), code=getattr(exc, "code", "protocol")),
                )
            except (OSError, ValueError):
                pass
        except ReproError as exc:
            self.metrics.count("net.errors", stage="request")
            try:
                self._write(
                    wfile, MessageType.ERROR, error_body(str(exc), code="request")
                )
            except (OSError, ValueError):
                pass
        finally:
            _close_quietly(conn)
            with self._conn_lock:
                self._conns.discard(conn)

    def _read(self, rfile) -> tuple[MessageType, dict, dict]:
        mtype, flags, payload = read_frame_ex(rfile, self.max_payload)
        nbytes = HEADER.size + len(payload)
        self.metrics.count("net.bytes.rx", nbytes)
        if mtype is MessageType.FORWARD:
            # Tree telemetry: wire bytes arriving as relayed partial states
            # (the Fig. 8 quantity — payload shrinks as levels combine).
            self.metrics.count("net.forward.bytes.rx", nbytes)
        if flags & FLAG_BINARY:
            if not self.binary:
                raise ProtocolError(
                    "binary payload received but this server only speaks JSON"
                )
            body, sections = decode_binary_body(payload, max_decoded=self.max_decoded)
            return mtype, body, sections
        return mtype, parse_body(mtype, payload), {}

    def _write(self, wfile, mtype: MessageType, body: dict) -> None:
        self.metrics.count("net.bytes.tx", write_message(wfile, mtype, body))

    def _serve_connection(self, rfile, wfile) -> None:
        mtype, body, _ = self._read(rfile)
        if mtype is not MessageType.HELLO:
            raise ProtocolError(f"expected HELLO, got {mtype.name}")
        client_id, tenant, ack = self._handshake(body)
        try:
            self._write(wfile, MessageType.HELLO_ACK, ack)
            while True:
                mtype, body, sections = self._read(rfile)
                if mtype is MessageType.BYE:
                    # The client session is over and its replay window with
                    # it: drop its dedup entry so unbounded client churn
                    # (one-shot producers, live_query probes) cannot grow
                    # the map forever.
                    self._forget_client(tenant, client_id)
                    self.metrics.count("net.disconnects", reason="bye")
                    return
                if mtype is MessageType.RECORDS:
                    resp = self._fold_records(tenant, client_id, body, sections)
                elif mtype is MessageType.STATES:
                    resp = self._fold_states(tenant, client_id, body, sections)
                elif mtype is MessageType.FORWARD:
                    resp = self._fold_forward(client_id, body, sections)
                elif mtype is MessageType.RETRACT:
                    resp = self._fold_retract(client_id, body)
                elif mtype is MessageType.QUERY:
                    resp = self._query_response(body, tenant)
                elif mtype is MessageType.STATS:
                    resp = self._stats_response()
                elif mtype is MessageType.DRAIN:
                    resp = self._drain_response(tenant)
                else:
                    raise ProtocolError(f"unexpected {mtype.name} frame")
                self._write(wfile, *resp)
        finally:
            self._release_conn(tenant)

    # -- handshake, tenancy, and dedup state --------------------------------------

    def _resolve_tenant(self, body: dict) -> _TenantState:
        token = body.get("token")
        if token is not None and not isinstance(token, str):
            raise ProtocolError("HELLO token must be a string")
        if token:
            state = self._tenants_by_token.get(token)
            if state is None:
                raise _Refused("unknown auth token", code="auth")
            return state
        if self.require_token:
            raise _Refused("this server requires an auth token", code="auth")
        return self._tenants[DEFAULT_TENANT]

    def _handshake(self, body: dict) -> tuple[str, _TenantState, dict]:
        """Shared HELLO processing: auth, quota admission, capability ack.

        On success the tenant's connection count is already incremented —
        the caller owns the matching :meth:`_release_conn`.
        """
        client_id = str(require(body, "client", (str,)))
        tenant = self._resolve_tenant(body)
        with self._tenant_lock:
            limit = tenant.quota.max_connections
            if limit and tenant.connections >= limit:
                raise _Refused(
                    f"tenant {tenant.name!r} is at its connection quota ({limit})",
                    code="quota",
                )
            tenant.connections += 1
        try:
            client_scheme = body.get("scheme")
            if client_scheme is not None:
                self._check_scheme(str(client_scheme))
            failover_from = body.get("failover_from")
            if failover_from is not None:
                # The client re-parented here after its relay died: fence
                # that incarnation and drop everything it forwarded — the
                # client's spool replay is about to re-deliver all of it
                # first-hand.
                self._retract_sender(origin_from_wire(failover_from))
            ack = {
                "epoch": self.epoch,
                "shards": len(self._shards),
                "scheme": self.scheme.describe(),
                "level": self.level,
            }
            if tenant.name != DEFAULT_TENANT:
                ack["tenant"] = tenant.name
            if self.sampling_budget_ns is not None:
                ack["sampling_budget_ns"] = self.sampling_budget_ns
            client_caps = body.get("caps")
            if (
                self.binary
                and isinstance(client_caps, list)
                and CAP_BINARY in client_caps
            ):
                # Capability negotiation: echo only what both sides speak,
                # so a new client against an old (caps-blind) server falls
                # back to JSON and an old client never sees an unknown flag.
                ack["caps"] = [CAP_BINARY]
            if self.is_relay:
                # Advertise our own parent so children can re-parent to
                # their grandparent if we die (the root advertises nothing:
                # there is no level above it to fail over to).
                ack["relay_id"] = self.forward_id
                ack["upstream"] = [self.upstream[0], self.upstream[1]]
        except BaseException:
            self._release_conn(tenant)
            raise
        return client_id, tenant, ack

    def _release_conn(self, tenant: _TenantState) -> None:
        with self._tenant_lock:
            if tenant.connections > 0:
                tenant.connections -= 1

    def _check_entries_quota(self, tenant: _TenantState) -> None:
        limit = tenant.quota.max_entries
        if not limit:
            return
        total = 0
        for shard in self._shards:
            db = shard.dbs.get(tenant.name)
            if db is not None:
                total += db.num_entries
        if total >= limit:
            # Entries never drain on their own (unlike queue depth), so a
            # BUSY retry loop would spin forever: refuse hard instead.
            raise _Refused(
                f"tenant {tenant.name!r} is at its entry quota ({limit})",
                code="quota",
            )

    def _busy(self, tenant: _TenantState, seq: int) -> tuple[MessageType, dict]:
        with self._tenant_lock:
            tenant.shed += 1
        self.metrics.count("net.shed", tenant=tenant.name)
        return (MessageType.BUSY, busy_body(seq, self.busy_retry_after))

    def _forget_client(self, tenant: _TenantState, client_id: str) -> None:
        key = self._dedup_key(tenant, client_id)
        with self._seq_lock:
            self._max_seq.pop(key, None)
            self._seq_touched.pop(key, None)

    def _check_scheme(self, text: str) -> None:
        from ..calql import parse_scheme

        try:
            theirs = parse_scheme(text)
        except ReproError as exc:
            raise ProtocolError(f"unparseable client scheme {text!r}: {exc}") from exc
        ours = {self.scheme.describe()}
        if self.windowed:
            # Record producers speak the base (un-windowized) scheme; the
            # window keys and moments op are a server-side augmentation.
            ours.add(self._base_scheme_text)
        if theirs.describe() not in ours:
            raise ProtocolError(
                f"scheme mismatch: server aggregates {self.scheme.describe()!r}, "
                f"client sent {theirs.describe()!r}"
            )

    def _dedup_key(self, tenant: _TenantState, client_id: str) -> str:
        # The default namespace keeps bare client ids (wire/debug/test
        # compatibility); named tenants prefix theirs so two tenants' "node-1"
        # clients can never collide in the replay-dedup map.
        if tenant.name == DEFAULT_TENANT:
            return client_id
        return f"{tenant.name}{_KEY_SEP}{client_id}"

    def _dedup_peek(self, key: str, seq: int) -> bool:
        """True if this batch was already folded (ACK but skip).

        Peek only — the seq is *marked* separately after the batch commits,
        so a shed (BUSY) or a failed route leaves no trace and the client's
        redelivery folds normally.
        """
        now = time.monotonic()
        with self._seq_lock:
            self._seq_touched[key] = now
            sweep_due = bool(self.dedup_ttl) and (
                now - self._seq_swept > max(self.dedup_ttl / 2.0, 0.05)
            )
            last = self._max_seq.get(key, -1)
        if sweep_due:
            # Opportunistic sweep keeps the threaded core bounded too; the
            # async core additionally prunes from its housekeeping task so
            # an idle server still forgets dead clients.
            self._prune_dedup()
        return seq <= last

    def _dedup_mark(self, key: str, seq: int) -> None:
        with self._seq_lock:
            if seq > self._max_seq.get(key, -1):
                self._max_seq[key] = seq

    def _prune_dedup(self) -> None:
        """Drop dedup/seq state for clients idle past ``dedup_ttl``.

        Unclean disconnects (no BYE) would otherwise pin their replay
        window forever; under client churn that is an unbounded leak.  A
        pruned client that replays after sitting idle longer than the TTL
        re-folds — the TTL is the documented replay-window bound.
        """
        if not self.dedup_ttl:
            return
        now = time.monotonic()
        with self._seq_lock:
            self._seq_swept = now
            stale = [
                key
                for key, touched in self._seq_touched.items()
                if now - touched > self.dedup_ttl
            ]
            for key in stale:
                self._seq_touched.pop(key, None)
                self._max_seq.pop(key, None)
        if stale:
            self.metrics.count("net.dedup.pruned", len(stale))

    def _window_stamp(self, source: str, records: list[Record]) -> list[Record]:
        """Assign incoming records to windows, advancing *source*'s watermark.

        Lateness is judged per source (more than ``lateness`` behind that
        source's own stream front) so a re-parented client replaying its
        spool after a failover folds its history exactly; stamped copies
        for windows already retired are dropped regardless — their final
        results are immutable, and the replayed data is already inside
        them.  Late and un-timed records are counted, never folded.
        """
        from ..window.assign import WINDOW_END, EventClock, stamp_record

        stamped: list[Record] = []
        late = untimed = 0
        with self._window_lock:
            clock = self._window_clocks.get(source)
            if clock is None:
                clock = EventClock(self.window_time_attribute)
                self._window_clocks[source] = clock
            tracker = self._window_tracker
            floor = self._retire_floor
            for record in records:
                t = clock.event_time(record)
                if t is None:
                    untimed += 1
                    continue
                if tracker.is_late(t, source):
                    late += 1
                    continue
                tracker.observe(source, t)
                folded = False
                for copy in stamp_record(record, t, self.window_assigner):
                    if floor is not None:
                        end = copy.get(WINDOW_END)
                        if end.is_numeric and float(end.value) <= floor:
                            continue
                    stamped.append(copy)
                    folded = True
                if not folded:
                    late += 1
            self._window_late += late
        if late:
            self.metrics.count("window.late", late, what="records")
        if untimed:
            self.metrics.count("window.untimed", untimed)
        return stamped

    def _parse_records(self, body: dict, sections: Optional[dict]) -> tuple[int, list]:
        seq = int(require(body, "seq", (int,)))
        if sections and "records" in sections:
            records = records_from_binary(sections["records"], self.max_decoded)
        else:
            records = records_from_wire(require(body, "records", (list,)))
        return seq, records

    def _fold_records(
        self, tenant: _TenantState, client_id: str, body: dict, sections: Optional[dict]
    ) -> tuple[MessageType, dict]:
        """Threaded-core RECORDS handler: blocking backpressure, no shedding."""
        seq, records = self._parse_records(body, sections)
        key = self._dedup_key(tenant, client_id)
        duplicate = self._dedup_peek(key, seq)
        if not duplicate:
            self._check_entries_quota(tenant)
            routed = (
                self._window_stamp(client_id, records) if self.windowed else records
            )
            if routed:
                self._route_records(tenant, routed)
            self._dedup_mark(key, seq)
            self.metrics.count("net.batches", kind="records")
            self.metrics.count("net.records", len(records))
        else:
            self.metrics.count("net.duplicates")
        return (
            MessageType.ACK,
            {"seq": seq, "count": len(records), "duplicate": duplicate},
        )

    async def _fold_records_async(
        self, tenant: _TenantState, client_id: str, body: dict, sections: Optional[dict]
    ) -> tuple[MessageType, dict]:
        """Async-core RECORDS handler: admission control instead of blocking."""
        seq, records = self._parse_records(body, sections)
        key = self._dedup_key(tenant, client_id)
        if self._dedup_peek(key, seq):
            self.metrics.count("net.duplicates")
            return (
                MessageType.ACK,
                {"seq": seq, "count": len(records), "duplicate": True},
            )
        self._check_entries_quota(tenant)
        if tenant.over_queue_quota():
            return self._busy(tenant, seq)
        routed = self._window_stamp(client_id, records) if self.windowed else records
        if routed:
            # Windowed stamping already advanced the watermark, so a windowed
            # batch can no longer be shed — it waits for queue space instead.
            ok = await self._route_records_async(
                tenant, routed, shed=not self.windowed
            )
            if not ok:
                return self._busy(tenant, seq)
        self._dedup_mark(key, seq)
        self.metrics.count("net.batches", kind="records")
        self.metrics.count("net.records", len(records))
        return (
            MessageType.ACK,
            {"seq": seq, "count": len(records), "duplicate": False},
        )

    def _validate_states(self, groups) -> None:
        """Shape-check incoming states against the scheme's operators.

        Exported states are positional; a malformed batch must be refused
        here, at the connection boundary, rather than crash a shard worker.
        """
        widths = [op.state_width() for op in self.scheme.ops]
        for entries, cells in groups:
            if len(cells) != len(widths):
                raise ProtocolError(
                    f"state group has {len(cells)} operator states, "
                    f"scheme has {len(widths)} operators"
                )
            for op_state, width in zip(cells, widths):
                if len(op_state) != width:
                    raise ProtocolError(
                        f"operator state has {len(op_state)} cells, expected {width}"
                    )

    def _parse_states(
        self, body: dict, sections: Optional[dict]
    ) -> tuple[int, list, int, int]:
        seq = int(require(body, "seq", (int,)))
        groups = self._groups_from(body, sections)
        scheme_text = require(body, "scheme", (str,))
        self._check_scheme(str(scheme_text))
        self._validate_states(groups)
        offered = int(body.get("offered", 0))
        processed = int(body.get("processed", 0))
        return seq, groups, offered, processed

    def _fold_states(
        self, tenant: _TenantState, client_id: str, body: dict, sections: Optional[dict]
    ) -> tuple[MessageType, dict]:
        """Threaded-core STATES handler: blocking backpressure, no shedding."""
        seq, groups, offered, processed = self._parse_states(body, sections)
        key = self._dedup_key(tenant, client_id)
        duplicate = self._dedup_peek(key, seq)
        if not duplicate:
            self._check_entries_quota(tenant)
            self._route_states(tenant, groups, offered, processed)
            self._dedup_mark(key, seq)
            self.metrics.count("net.batches", kind="states")
            self.metrics.count("net.groups", len(groups))
        else:
            self.metrics.count("net.duplicates")
        return (
            MessageType.ACK,
            {"seq": seq, "count": len(groups), "duplicate": duplicate},
        )

    async def _fold_states_async(
        self, tenant: _TenantState, client_id: str, body: dict, sections: Optional[dict]
    ) -> tuple[MessageType, dict]:
        """Async-core STATES handler: admission control instead of blocking."""
        seq, groups, offered, processed = self._parse_states(body, sections)
        key = self._dedup_key(tenant, client_id)
        if self._dedup_peek(key, seq):
            self.metrics.count("net.duplicates")
            return (
                MessageType.ACK,
                {"seq": seq, "count": len(groups), "duplicate": True},
            )
        self._check_entries_quota(tenant)
        if tenant.over_queue_quota():
            return self._busy(tenant, seq)
        ok = await self._route_states_async(tenant, groups, offered, processed)
        if not ok:
            return self._busy(tenant, seq)
        self._dedup_mark(key, seq)
        self.metrics.count("net.batches", kind="states")
        self.metrics.count("net.groups", len(groups))
        return (
            MessageType.ACK,
            {"seq": seq, "count": len(groups), "duplicate": False},
        )

    # -- reduction tree: receiving side -------------------------------------------

    def _groups_from(self, body: dict, sections: Optional[dict]) -> list:
        """Decode exported states from a binary section or the JSON body."""
        if sections and "groups" in sections:
            return states_from_binary(sections["groups"], self.max_decoded)
        return states_from_wire(require(body, "groups", (list,)))

    def _fold_forward(
        self, client_id: str, body: dict, sections: Optional[dict] = None
    ) -> tuple[MessageType, dict]:
        """Fold a downstream relay's delta, segregated per (sender, origin).

        Tree traffic always lives in the default namespace (relay mode
        forbids tenants) and is never shed — dropping a relay delta would
        stall the whole subtree behind the spool's redelivery cadence.
        """
        seq = int(require(body, "seq", (int,)))
        from_epoch = str(require(body, "from_epoch", (str,)))
        origin = origin_from_wire(require(body, "origin", (list,)))
        groups = self._groups_from(body, sections)
        self._check_scheme(str(require(body, "scheme", (str,))))
        self._validate_states(groups)
        offered = int(body.get("offered", 0))
        processed = int(body.get("processed", 0))
        watermark = body.get("watermark")
        if not isinstance(watermark, (int, float)) or isinstance(watermark, bool):
            watermark = None
        sender = (client_id, from_epoch)
        duplicate = self._dedup_peek(client_id, seq)
        fenced = False
        if not duplicate:
            if self.windowed:
                # States for already-retired windows (a spool replay after a
                # mid-tree failover re-delivers data that is inside the
                # retired result) must not fold twice: drop them as late.
                # Lock order: _window_lock is taken and released *before*
                # _forward_lock, never nested inside it.
                with self._window_lock:
                    floor = self._retire_floor
                if floor is not None:
                    closed = _window_closed(floor)
                    kept = [g for g in groups if not closed(g[0])]
                    dropped = len(groups) - len(kept)
                    if dropped:
                        groups = kept
                        self.metrics.count("window.late", dropped, what="states")
            start = time.perf_counter()
            with self._forward_lock:
                if sender in self._fenced:
                    # A zombie: this incarnation was declared dead and its
                    # data retracted.  ACK (so a stuck spool drains) but
                    # drop — the children's replay owns this data now.
                    fenced = True
                else:
                    db = self._forwarded.get((sender, origin))
                    if db is None:
                        db = AggregationDB(self.scheme)
                        self._forwarded[(sender, origin)] = db
                    db.load_states(
                        groups,
                        offered=offered,
                        processed=processed,
                        source=(client_id, from_epoch, seq),
                    )
                    self._origins_by_sender.setdefault(sender, set()).add(origin)
                    self._cache_telemetry(body.get("telemetry"))
            elapsed = time.perf_counter() - start
            self._combine_seconds += elapsed
            self._forwards_received += 1
            self.metrics.timing("net.forward.combine", elapsed)
            if fenced:
                self.metrics.count("net.fenced")
            else:
                self.metrics.count("net.batches", kind="forward")
                self.metrics.count("net.groups", len(groups))
                if self.windowed and watermark is not None:
                    # The delta carrying mark w was exported after w was
                    # captured downstream, so it contains everything below w
                    # from that subtree — safe to advance our view of it.
                    with self._window_lock:
                        self._window_tracker.update(client_id, float(watermark))
            self._dedup_mark(client_id, seq)
        else:
            self.metrics.count("net.duplicates")
        return (
            MessageType.ACK,
            {"seq": seq, "count": len(groups), "duplicate": duplicate},
        )

    def _fold_retract(self, client_id: str, body: dict) -> tuple[MessageType, dict]:
        """Drop forwarded origins a downstream relay declared dead."""
        seq = int(require(body, "seq", (int,)))
        from_epoch = str(require(body, "from_epoch", (str,)))
        origins = origins_from_wire(require(body, "origins", (list,)))
        sender = (client_id, from_epoch)
        duplicate = self._dedup_peek(client_id, seq)
        if not duplicate:
            with self._forward_lock:
                if sender not in self._fenced:
                    self._drop_origins(origins)
            self._dedup_mark(client_id, seq)
            self.metrics.count("net.retracts", len(origins))
        else:
            self.metrics.count("net.duplicates")
        return (
            MessageType.ACK,
            {"seq": seq, "count": len(origins), "duplicate": duplicate},
        )

    def _drop_origins(self, origins) -> None:
        """Remove every segregated DB holding these origins (lock held).

        If we are a relay ourselves, queue the retraction for the next
        forward cycle — it must reach our parent before any of the
        re-delivered data does, which the cycle's retract-first ordering and
        the forward client's sequence stream guarantee.
        """
        doomed = set(origins)
        for key in [k for k in self._forwarded if k[1] in doomed]:
            del self._forwarded[key]
        for sender_origins in self._origins_by_sender.values():
            sender_origins -= doomed
        if self.is_relay:
            self._pending_retracts |= doomed

    def _retract_sender(self, dead: tuple[str, str]) -> None:
        """Fence a dead relay incarnation and retract its contribution.

        Called when one of its children shows up here with
        ``failover_from``.  Everything the dead incarnation forwarded —
        its own partial aggregates *and* deltas it passed through for its
        descendants — is dropped; the re-parented children replay their
        spools and re-deliver all of it directly.
        """
        with self._forward_lock:
            if dead in self._fenced:
                return  # a sibling already announced this death
            self._fenced.add(dead)
            origins = set(self._origins_by_sender.pop(dead, set()))
            origins.add(dead)  # its own origin, even if it never got a cycle out
            self._drop_origins(origins)
        if self.windowed:
            # A dead sender must stop holding the global watermark back; its
            # re-parented children report their own marks directly.
            with self._window_lock:
                self._window_tracker.remove(dead[0])
                self._window_clocks.pop(dead[0], None)
        self.metrics.count("net.failover.retractions")

    def _cache_telemetry(self, summaries) -> None:
        """Keep the latest per-node tree telemetry heard from downstream."""
        if not isinstance(summaries, list):
            return
        for summary in summaries:
            if not isinstance(summary, dict):
                continue
            node = summary.get("node")
            if not isinstance(node, str) or not node:
                continue
            clean = {"node": node}
            for field in (
                "level",
                "forwarded_batches",
                "forwarded_bytes",
                "combine_seconds",
                "forwards_received",
                "failovers",
            ):
                value = summary.get(field)
                if isinstance(value, (int, float)) and not isinstance(value, bool):
                    clean[field] = value
            self._tree_stats[node] = clean

    def _query_response(
        self, body: dict, tenant: _TenantState
    ) -> tuple[MessageType, dict]:
        text = str(require(body, "q", (str,)))
        target = str(body.get("target", "aggregate"))
        result = self.run_query(text, target, tenant=tenant.name)
        return self._result_frame(
            result.records, result.preferred_columns, result.format
        )

    def _stats_response(self) -> tuple[MessageType, dict]:
        return self._result_frame(self.stats_records(), [], None)

    def _drain_response(self, tenant: _TenantState) -> tuple[MessageType, dict]:
        return self._result_frame(
            self.drain_results(tenant=tenant.name),
            list(self.scheme.output_labels),
            None,
        )

    def _result_frame(self, records, columns, fmt) -> tuple[MessageType, dict]:
        return (
            MessageType.RESULT,
            {
                "records": records_to_wire(records),
                "columns": list(columns),
                "format": fmt,
            },
        )

    def __repr__(self) -> str:
        return (
            f"AggregationServer({self.scheme.describe()!r}, "
            f"addr={self.address}, shards={len(self._shards)})"
        )


def _parse_upstream(
    upstream: Union[tuple[str, int], str, None],
) -> Optional[tuple[str, int]]:
    """Accept ``(host, port)`` or ``"host:port"`` parent addresses."""
    if upstream is None:
        return None
    if isinstance(upstream, str):
        host, sep, port = upstream.rpartition(":")
        if not sep or not host:
            raise ValueError(f"upstream must be host:port, got {upstream!r}")
        return (host, int(port))
    host, port = upstream
    return (str(host), int(port))


def _close_quietly(sock: socket.socket) -> None:
    try:
        sock.shutdown(socket.SHUT_RDWR)
    except OSError:
        pass
    try:
        sock.close()
    except OSError:
        pass
