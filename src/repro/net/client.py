"""The streaming flush client.

:class:`FlushClient` is the producer-side transport: it batches snapshot
records, ships them to an :class:`~repro.net.server.AggregationServer`
over the framing protocol, and — crucially — keeps working when the
server does not:

* **Write-ahead spool** — every batch is written to a binary columnar
  ``.rcf`` spool segment (:mod:`repro.io.colfile`) *before* the first
  send attempt, so a batch in flight when the connection dies is never
  lost (legacy ``.cali`` spool segments still replay).
* **Retry with exponential backoff** — each delivery makes up to
  ``retries + 1`` attempts with exponentially growing, capped sleeps;
  when they are exhausted the batch simply stays spooled and the client
  returns to the caller (profiling must never block the application).
* **Replay on reconnect** — pending spool files are replayed in sequence
  order (one batch in memory at a time) before new data is sent, and the
  ``.rcf`` round-trip is byte-exact.
* **Exactly-once** — batches carry monotonically increasing sequence
  numbers.  Within one server epoch the server skips sequences it has
  already folded, so a replay after a lost ACK cannot double-count.  When
  a reconnect reveals a *new* epoch (the server was restarted and its
  state died), every previously acknowledged batch is put back on the
  pending list and replayed from the spool — no update is lost to a
  crash, and none is duplicated.

The spool therefore acts as a write-ahead log for the whole session.
:meth:`close` deletes the spool files of *acknowledged* batches
(``delete_spool=False`` keeps even those for inspection); batches the
server never acknowledged always stay on disk, so data that could not be
delivered survives application exit.  The memory cost is bounded (one
batch), the disk cost is proportional to the records streamed since the
client was opened — the price of exactly-once delivery against a
crash-restartable server; see ``docs/service.md`` for the trade-off
discussion.

Clients sharing one configured ``spool_dir`` (several channels, several
processes) each spool into a per-``client_id`` subdirectory, so their
write-ahead batches never collide.

**Failover (reduction trees).**  A relay server advertises its own parent
in ``HELLO_ACK`` (``upstream``/``relay_id``).  When ``failover_after`` is
set and the current server has been unreachable for at least that many
seconds, the client *re-parents*: it switches to the advertised upstream
address (the grandparent in the tree), announces the dead relay's
identity in its ``HELLO`` (``failover_from``) so the grandparent can
retract that relay's already-forwarded partial aggregates, and — because
the grandparent's epoch differs — replays its entire write-ahead spool.
Nothing is lost and, thanks to the retraction, nothing double-counts.

All public methods are thread-safe: in stream mode the runtime calls
:meth:`push` from every instrumented application thread, and a single
internal lock serialises buffering, delivery, and the socket protocol.
"""

from __future__ import annotations

import json
import os
import random
import socket
import tempfile
import threading
import time
import uuid
from typing import TYPE_CHECKING, Callable, Iterable, Optional, Union

from ..aggregate.db import AggregationDB
from ..aggregate.scheme import AggregationScheme
from ..common.errors import ReproError
from ..common.record import Record
from ..io.calformat import iter_records
from ..io.colfile import read_colfile, write_colfile
from .protocol import (
    CAP_BINARY,
    FLAG_BINARY,
    MAX_PAYLOAD,
    MessageType,
    ProtocolError,
    Truncated,
    encode_binary_body,
    read_message,
    records_to_binary,
    records_to_wire,
    states_from_wire,
    states_to_binary,
    states_to_wire,
    write_frame,
    write_message,
)

if TYPE_CHECKING:  # pragma: no cover
    from ..query.engine import QueryResult

__all__ = ["FlushClient", "live_query"]


class _Fatal(ReproError):
    """A server refusal that retrying cannot fix (e.g. scheme mismatch)."""


class _Busy(ReproError):
    """The server shed a batch under admission control (BUSY frame).

    The batch was *not* folded and *not* dedup-marked, so redelivering the
    spooled copy after ``retry_after`` seconds is exactly-once safe.
    """

    def __init__(self, seq: int, retry_after: float) -> None:
        super().__init__(
            f"server busy: batch {seq} shed, retry after {retry_after:.3g}s"
        )
        self.seq = seq
        self.retry_after = retry_after


class FlushClient:
    """Batching, spooling, replaying transport to an aggregation server.

    >>> client = FlushClient("127.0.0.1", 9100, batch_size=500)  # doctest: +SKIP
    >>> for record in snapshots:                                  # doctest: +SKIP
    ...     client.push(record)
    >>> client.flush(); client.close()                            # doctest: +SKIP
    """

    def __init__(
        self,
        host: str,
        port: int,
        scheme: Union[AggregationScheme, str, None] = None,
        client_id: Optional[str] = None,
        batch_size: int = 256,
        timeout: float = 5.0,
        retries: int = 3,
        backoff: float = 0.05,
        backoff_max: float = 2.0,
        spool_dir: Optional[str] = None,
        max_payload: int = MAX_PAYLOAD,
        failover_after: Optional[float] = None,
        binary: bool = True,
        token: Optional[str] = None,
        busy_retries: int = 10,
        on_server_info: Optional[Callable[[dict], None]] = None,
    ) -> None:
        if batch_size < 1:
            raise ValueError(f"batch_size must be positive, got {batch_size}")
        self.host = host
        self.port = port
        self.scheme_text = (
            scheme.describe() if isinstance(scheme, AggregationScheme) else scheme
        )
        self.client_id = client_id or uuid.uuid4().hex
        self.batch_size = batch_size
        self.timeout = timeout
        self.retries = max(0, retries)
        self.backoff = backoff
        self.backoff_max = backoff_max
        #: consecutive BUSY (shed) replies tolerated before giving up a
        #: delivery pass and leaving the batches spooled; resets on any ACK
        self.busy_retries = max(0, busy_retries)
        #: tenant auth token presented in HELLO (multi-tenant servers)
        self.token = token
        self.max_payload = max_payload
        #: full-jitter backoff draws from here; per-client so thousands of
        #: clients reconnecting after one server restart fan out instead of
        #: thundering back in lock-step
        self._rng = random.Random()
        if spool_dir is None:
            self.spool_dir = tempfile.mkdtemp(prefix="repro-spool-")
        else:
            # Shared spool dirs are namespaced per client: batch files are
            # keyed only by this client's sequence counter and would
            # otherwise overwrite another client's write-ahead batches.
            self.spool_dir = os.path.join(spool_dir, self.client_id)
        os.makedirs(self.spool_dir, exist_ok=True)

        #: serialises buffering, delivery, and the socket protocol — stream
        #: mode pushes from every instrumented application thread.
        self._lock = threading.RLock()
        self._buffer: list[Record] = []
        self._next_seq = 0
        #: seq -> (kind, spool path); not yet acknowledged in the current epoch
        self._pending: dict[int, tuple[str, str]] = {}
        #: seq -> (kind, spool path); acknowledged by the current epoch
        self._acked: dict[int, tuple[str, str]] = {}
        self._sock: Optional[socket.socket] = None
        self._rfile = None
        self._wfile = None
        self._epoch: Optional[str] = None
        self._closed = False

        #: offer the binary columnar payload encoding in the handshake
        self.binary_enabled = binary
        #: True once the current server acknowledged CAP_BINARY
        self._binary = False

        #: seconds of continuous unreachability before re-parenting to the
        #: server's advertised upstream (None = never fail over)
        self.failover_after = failover_after
        #: the most recent HELLO_ACK body (epoch, shards, level, upstream…)
        self.server_info: dict = {}
        #: invoked with the HELLO_ACK body after every (re)connect — the
        #: network flush service uses it to adopt a server-advertised
        #: sampling budget (``sampling_budget_ns``) into the local channel
        self.on_server_info = on_server_info
        self._failover_target: Optional[tuple[str, int]] = None
        self._failover_source: Optional[tuple[str, str]] = None
        self._announce_failover: Optional[tuple[str, str]] = None
        self._down_since: Optional[float] = None

        #: delivery counters (batches spooled / acked / replayed, reconnects…)
        self.counters = {
            "records": 0,
            "batches": 0,
            "acked": 0,
            "spilled": 0,
            "replayed": 0,
            "reconnects": 0,
            "epoch_changes": 0,
            "failovers": 0,
            "wire_bytes": 0,
            "busy": 0,
        }

    def _retry_delay(self, attempt: int, retry_after: Optional[float] = None) -> float:
        """Full-jitter backoff (AWS-style): uniform over [0, capped exp).

        Plain exponential backoff synchronises every client that observed
        the same failure — after a server restart thousands reconnect in
        the same few milliseconds, knocking it over again.  Drawing the
        whole delay uniformly spreads the herd across the window.  When the
        server named a ``retry_after`` (BUSY shed), that is the floor and
        the jitter rides on top.
        """
        cap = min(self.backoff * (2 ** max(attempt - 1, 0)), self.backoff_max)
        jitter = self._rng.uniform(0.0, cap)
        if retry_after is not None:
            return float(retry_after) + jitter
        return jitter

    # -- streaming interface ------------------------------------------------------

    def push(self, record: Record) -> None:
        """Buffer one record; ships automatically at ``batch_size``."""
        with self._lock:
            self._check_open()
            self._buffer.append(record)
            if len(self._buffer) >= self.batch_size:
                self._ship_buffer()

    def push_all(self, records: Iterable[Record]) -> None:
        for record in records:
            self.push(record)

    def send_records(self, records: Iterable[Record]) -> bool:
        """Buffer and ship ``records``; True if nothing is left spooled."""
        self.push_all(records)
        return self.flush()

    def flush(self) -> bool:
        """Ship the partial buffer and retry everything spooled.

        Returns True when every batch so far has been acknowledged by the
        current server epoch — False means data is safely spooled but the
        server is (still) unreachable.
        """
        with self._lock:
            self._check_open()
            if self._buffer:
                self._ship_buffer()
            else:
                self._deliver_pending()
            if not self._pending:
                self._probe_epoch()
            return not self._pending

    def _probe_epoch(self) -> None:
        """Verify acknowledged batches still live in the current server epoch.

        With nothing pending, delivery alone never touches the network — a
        server that crashed *after* acknowledging everything would go
        unnoticed and its state silently lost.  So when there are acked
        batches, make one cheap round-trip; a dead socket (or a fresh
        handshake finding a new epoch) re-pends the acked batches, which are
        then redelivered from the write-ahead spool.
        """
        if not self._acked:
            return
        try:
            if self._sock is not None:
                write_message(self._wfile, MessageType.STATS, {})
                reply, _body = read_message(self._rfile, self.max_payload)
                if reply is MessageType.RESULT:
                    return
                raise ProtocolError(f"expected RESULT, got {reply.name}")
            self._ensure_connected()  # handshake performs the epoch check
        except (OSError, EOFError, ProtocolError, ReproError):
            self._disconnect()
            try:
                self._ensure_connected()
            except (OSError, EOFError, ProtocolError, ReproError):
                return  # still unreachable; the spool keeps everything
        if self._pending:
            self._deliver_pending()

    def send_states(self, db: AggregationDB) -> bool:
        """Ship a pre-aggregated partial database (groups, not records).

        The wire unit of PF-OLA-style distributed aggregation: payload size
        is proportional to the number of *keys* in ``db``, not the records
        folded into it.  The database is exported as-is; the caller decides
        when to :meth:`AggregationDB.clear` it.
        """
        wire = {
            "scheme": db.scheme.describe(),
            "groups": states_to_wire(db.export_states()),
            "offered": db.num_offered,
            "processed": db.num_processed,
        }
        return self._spool_and_deliver("states", wire)

    def send_forward(
        self,
        groups: list,
        *,
        origin: tuple[str, str],
        from_epoch: str,
        level: int = -1,
        offered: int = 0,
        processed: int = 0,
        telemetry: Optional[list[dict]] = None,
        scheme: Optional[str] = None,
        watermark: Optional[float] = None,
    ) -> bool:
        """Ship a reduction-tree FORWARD delta (already wire-encoded groups).

        The relay-to-parent transport unit: ``groups`` is
        :func:`~repro.net.protocol.states_to_wire` output, ``origin``
        identifies whose partial aggregates these are (``(id, epoch)`` of
        the server incarnation that first aggregated them — preserved
        unchanged when a mid-tree relay passes a descendant's delta
        through), and ``from_epoch`` is the *sending* server's epoch so a
        parent can fence deltas from an incarnation it has declared dead.
        Spooled, retried, and replayed exactly like any other batch.
        """
        body = {
            "scheme": scheme or self.scheme_text,
            "groups": groups,
            "origin": list(origin),
            "from_epoch": from_epoch,
            "level": level,
            "offered": offered,
            "processed": processed,
        }
        if telemetry:
            body["telemetry"] = telemetry
        if watermark is not None:
            # Windowed streaming: the sender's event-time watermark rides the
            # delta that contains every record below it (see forward_now).
            body["watermark"] = float(watermark)
        return self._spool_and_deliver("forward", body)

    def send_retract(
        self, origins: Iterable[tuple[str, str]], *, from_epoch: str
    ) -> bool:
        """Tell the parent to drop previously forwarded origins.

        Sent when a downstream relay has been declared dead and its
        children re-parented here: everything that relay's incarnation ever
        forwarded is being re-delivered first-hand, so the parent must
        retract its copies (and propagate the retraction further up) before
        the re-forwarded data arrives.  Ordering is guaranteed by the
        sequence stream: the retract takes a sequence number now, ahead of
        any subsequently forwarded batch.
        """
        body = {
            "origins": [list(o) for o in origins],
            "from_epoch": from_epoch,
        }
        return self._spool_and_deliver("retract", body)

    def _spool_and_deliver(self, kind: str, body: dict) -> bool:
        """Write-ahead spool a JSON-bodied batch and try to deliver it."""
        with self._lock:
            self._check_open()
            seq = self._next_seq
            self._next_seq += 1
            path = os.path.join(self.spool_dir, f"batch-{seq:08d}.{kind}.json")
            with open(path, "w", encoding="utf-8") as stream:
                json.dump(body, stream, separators=(",", ":"))
            self._pending[seq] = (kind, path)
            self.counters["batches"] += 1
            self._deliver_pending()
            return not self._pending

    @property
    def num_spooled(self) -> int:
        """Batches currently awaiting (re)delivery."""
        return len(self._pending)

    # -- batch lifecycle ---------------------------------------------------------

    def _ship_buffer(self) -> None:
        records, self._buffer = self._buffer, []
        seq = self._next_seq
        self._next_seq += 1
        path = os.path.join(self.spool_dir, f"batch-{seq:08d}.rcf")
        # Write-ahead: the batch is on disk before the first send attempt.
        # The spool segment is binary columnar (.rcf): cheaper to write on
        # the hot path than .cali text, and replay is byte-exact.
        write_colfile(path, records)
        self._pending[seq] = ("records", path)
        self.counters["records"] += len(records)
        self.counters["batches"] += 1
        self._deliver_pending()

    def _deliver_pending(self) -> bool:
        """Try to deliver every pending batch, oldest first."""
        if not self._pending:
            return True
        attempt = 0
        busy_left = self.busy_retries
        while True:
            try:
                self._ensure_connected()
                for seq in sorted(self._pending):
                    kind, path = self._pending[seq]
                    self._send_one(seq, kind, path)
                    self._acked[seq] = self._pending.pop(seq)
                    self.counters["acked"] += 1
                    busy_left = self.busy_retries
                return True
            except _Busy as busy:
                # Admission control: the server shed this batch (not folded,
                # not dedup-marked).  The connection is healthy — stay on
                # it, honor the server's retry-after (plus jitter so a
                # shedding server is not re-stormed), redeliver from the
                # spool.  A persistently busy server eventually exhausts
                # the budget and the batches stay safely spooled.
                self.counters["busy"] += 1
                busy_left -= 1
                if busy_left < 0:
                    self.counters["spilled"] += len(self._pending)
                    return False
                time.sleep(self._retry_delay(1, retry_after=busy.retry_after))
            except _Fatal:
                raise
            except (OSError, EOFError, Truncated):
                # Connection refused / reset / closed mid-frame: back off,
                # retry, and finally leave the batches spooled.
                self._disconnect()
                if self._down_since is None:
                    self._down_since = time.monotonic()
                attempt += 1
                if attempt > self.retries:
                    if self._maybe_failover():
                        attempt = 0
                        continue
                    self.counters["spilled"] += len(self._pending)
                    return False
                time.sleep(self._retry_delay(attempt))
            except (ProtocolError, ReproError):
                # The server answered but refused — don't hammer it.
                self._disconnect()
                raise

    # -- failover (tree re-parenting) ---------------------------------------------

    def _maybe_failover(self) -> bool:
        """Re-parent to the advertised upstream if the failure window expired.

        Returns True when the client switched targets (the caller should
        retry delivery against the new parent).
        """
        if (
            self.failover_after is None
            or self._failover_target is None
            or self._down_since is None
            or time.monotonic() - self._down_since < self.failover_after
        ):
            return False
        host, port = self._failover_target
        if (host, port) == (self.host, self.port):
            return False
        # Announce the dead relay in the next HELLO so the new parent can
        # retract what that incarnation already forwarded; our own spool
        # replay (triggered by the epoch change) re-delivers everything.
        self._announce_failover = self._failover_source
        self.host, self.port = host, port
        self._failover_target = None
        self._failover_source = None
        self._down_since = None
        self.counters["failovers"] += 1
        return True

    _BATCH_TYPES = {
        "states": MessageType.STATES,
        "forward": MessageType.FORWARD,
        "retract": MessageType.RETRACT,
    }

    def _send_one(self, seq: int, kind: str, path: str) -> None:
        sections: Optional[dict[str, bytes]] = None
        if kind == "records":
            if path.endswith(".cali"):
                # Legacy text spool segment (pre-.rcf spool directories):
                # stream it; memory stays bounded by one batch.
                records = list(iter_records(path))
            else:
                records, _globals = read_colfile(path)
            if self._binary:
                body = {"seq": seq, "count": len(records)}
                sections = {"records": records_to_binary(records)}
            else:
                body = {"seq": seq, "records": records_to_wire(records)}
            mtype = MessageType.RECORDS
        else:
            with open(path, "r", encoding="utf-8") as stream:
                body = json.load(stream)
            body["seq"] = seq
            mtype = self._BATCH_TYPES[kind]
            if self._binary and kind in ("states", "forward") and "groups" in body:
                groups = states_from_wire(body.pop("groups"))
                sections = {"groups": states_to_binary(groups)}
        if sections is not None:
            payload = encode_binary_body(body, sections)
            self.counters["wire_bytes"] += write_frame(
                self._wfile, mtype, payload, flags=FLAG_BINARY
            )
        else:
            self.counters["wire_bytes"] += write_message(self._wfile, mtype, body)
        reply, ack = read_message(self._rfile, self.max_payload)
        if reply is MessageType.ERROR:
            raise _Fatal(f"server refused batch {seq}: {ack.get('reason')}")
        if reply is MessageType.BUSY:
            raise _Busy(seq, float(ack.get("retry_after", 0.0) or 0.0))
        if reply is not MessageType.ACK or ack.get("seq") != seq:
            raise ProtocolError(f"expected ACK for seq {seq}, got {reply.name} {ack}")
        if ack.get("duplicate"):
            self.counters["replayed"] += 1

    # -- connection management ----------------------------------------------------

    def _ensure_connected(self) -> None:
        if self._sock is not None:
            return
        sock = socket.create_connection((self.host, self.port), timeout=self.timeout)
        sock.settimeout(self.timeout)
        rfile = sock.makefile("rb")
        wfile = sock.makefile("wb")
        try:
            hello = {"client": self.client_id}
            if self.scheme_text is not None:
                hello["scheme"] = self.scheme_text
            if self.token is not None:
                hello["token"] = self.token
            if self._announce_failover is not None:
                hello["failover_from"] = list(self._announce_failover)
            if self.binary_enabled:
                hello["caps"] = [CAP_BINARY]
            write_message(wfile, MessageType.HELLO, hello)
            mtype, body = read_message(rfile, self.max_payload)
        except Exception:
            _close_all(sock, rfile, wfile)
            raise
        if mtype is MessageType.ERROR:
            _close_all(sock, rfile, wfile)
            raise _Fatal(f"server rejected handshake: {body.get('reason')}")
        if mtype is not MessageType.HELLO_ACK:
            _close_all(sock, rfile, wfile)
            raise ProtocolError(f"expected HELLO_ACK, got {mtype.name}")
        epoch = str(body.get("epoch", ""))
        if self._epoch is not None and epoch != self._epoch:
            # Server restarted: everything it acknowledged died with it.
            # Move acked batches back to pending; the spool still has them.
            self._pending.update(self._acked)
            self._acked.clear()
            self.counters["epoch_changes"] += 1
        self._epoch = epoch
        self._announce_failover = None
        self._down_since = None
        self.server_info = dict(body)
        if self.on_server_info is not None:
            try:
                self.on_server_info(self.server_info)
            except Exception:
                # An observer bug must never poison connection setup: the
                # socket is healthy, delivery proceeds regardless.
                pass
        # Binary payloads only flow when both ends opted in (JSON otherwise)
        acked_caps = body.get("caps")
        self._binary = self.binary_enabled and (
            isinstance(acked_caps, list) and CAP_BINARY in acked_caps
        )
        # Remember this server's identity and its advertised upstream so a
        # later failure window can re-parent us to the grandparent.
        upstream = body.get("upstream")
        relay_id = body.get("relay_id")
        if (
            isinstance(upstream, (list, tuple))
            and len(upstream) == 2
            and isinstance(relay_id, str)
        ):
            self._failover_target = (str(upstream[0]), int(upstream[1]))
            self._failover_source = (relay_id, epoch)
        else:
            self._failover_target = None
            self._failover_source = None
        self._sock, self._rfile, self._wfile = sock, rfile, wfile
        self.counters["reconnects"] += 1

    def _disconnect(self) -> None:
        sock, self._sock = self._sock, None
        rfile, self._rfile = self._rfile, None
        wfile, self._wfile = self._wfile, None
        if sock is not None:
            _close_all(sock, rfile, wfile)

    @property
    def connected(self) -> bool:
        return self._sock is not None

    # -- request/response --------------------------------------------------------

    def _request(self, mtype: MessageType, body: dict) -> dict:
        """One request expecting a RESULT, with the delivery retry loop."""
        attempt = 0
        while True:
            try:
                self._ensure_connected()
                if not self._deliver_pending():
                    raise OSError("spooled batches not yet delivered")
                write_message(self._wfile, mtype, body)
                reply, payload = read_message(self._rfile, self.max_payload)
                if reply is MessageType.ERROR:
                    raise _Fatal(f"server error: {payload.get('reason')}")
                if reply is not MessageType.RESULT:
                    raise ProtocolError(f"expected RESULT, got {reply.name}")
                return payload
            except _Fatal:
                raise
            except (OSError, EOFError, Truncated):
                self._disconnect()
                attempt += 1
                if attempt > self.retries:
                    raise ReproError(
                        f"aggregation server at {self.host}:{self.port} unreachable"
                    ) from None
                time.sleep(self._retry_delay(attempt))

    def drain(self) -> list[Record]:
        """Flush everything, then fetch the merged aggregation results."""
        with self._lock:
            self._check_open()
            if self._buffer:
                self._ship_buffer()
            payload = self._request(MessageType.DRAIN, {})
            return _result_records(payload)

    def query(self, text: str, target: str = "aggregate") -> "QueryResult":
        """Run a live CalQL query against the server's in-flight state."""
        with self._lock:
            self._check_open()
            payload = self._request(MessageType.QUERY, {"q": text, "target": target})
            return _result_to_query_result(payload)

    def stats_records(self) -> list[Record]:
        """The server's telemetry as CalQL-queryable records."""
        with self._lock:
            self._check_open()
            return _result_records(self._request(MessageType.STATS, {}))

    # -- teardown ------------------------------------------------------------------

    def close(self, delete_spool: bool = True) -> None:
        """Flush best-effort, say goodbye, and drop *acknowledged* spool files.

        Batches the current server epoch has acknowledged are safe on the
        server, so their write-ahead copies are deleted (``delete_spool=False``
        keeps them for inspection).  Batches still pending — the server was
        unreachable — are **never** deleted: the spool is the only copy of
        that data, and it stays on disk for out-of-band recovery.
        """
        with self._lock:
            if self._closed:
                return
            try:
                if self._buffer:
                    self._ship_buffer()
                else:
                    self._deliver_pending()
            except ReproError:
                pass
            if self._wfile is not None:
                try:
                    write_message(self._wfile, MessageType.BYE, {})
                except (OSError, ValueError):
                    pass
            self._disconnect()
            self._closed = True
            if delete_spool:
                for _, path in self._acked.values():
                    _unlink_quietly(path)
                try:
                    os.rmdir(self.spool_dir)  # succeeds only when empty
                except OSError:
                    pass

    def abort(self) -> None:
        """Abrupt teardown for fault injection: no flush, no BYE, keep spool.

        Marks the client closed *before* dropping the socket so a delivery
        loop racing on another thread cannot reconnect and resurrect the
        session — the observable behaviour of a killed relay process.
        """
        with self._lock:
            self._closed = True
            self._disconnect()

    def __enter__(self) -> "FlushClient":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def _check_open(self) -> None:
        if self._closed:
            raise ReproError("flush client is closed")

    def __repr__(self) -> str:
        return (
            f"FlushClient({self.host}:{self.port}, batches={self.counters['batches']}, "
            f"pending={len(self._pending)})"
        )


# -- one-shot helpers ------------------------------------------------------------


def _result_records(payload: dict) -> list[Record]:
    from .protocol import records_from_wire

    return records_from_wire(payload.get("records", []))


def _result_to_query_result(payload: dict) -> "QueryResult":
    from ..query.engine import QueryResult  # deferred: query sits above net

    return QueryResult(
        _result_records(payload),
        payload.get("columns") or (),
        payload.get("format"),
    )


def live_query(
    host: str,
    port: int,
    text: str,
    target: str = "aggregate",
    timeout: float = 10.0,
    token: Optional[str] = None,
) -> "QueryResult":
    """One-shot live query: connect, ask, disconnect.

    Runs ``text`` against a consistent merged snapshot of the server's
    in-flight shards without interrupting ingestion (the ``repro-query
    live`` command is a thin wrapper over this).  ``token`` scopes the
    query to that tenant's namespace on a multi-tenant server.
    """
    client = FlushClient(host, port, timeout=timeout, retries=0, token=token)
    try:
        return client.query(text, target=target)
    finally:
        client.close()


def _close_all(sock, rfile, wfile) -> None:
    for closable in (rfile, wfile):
        if closable is not None:
            try:
                closable.close()
            except (OSError, ValueError):
                pass
    try:
        sock.close()
    except OSError:
        pass


def _unlink_quietly(path: str) -> None:
    try:
        os.unlink(path)
    except OSError:
        pass
