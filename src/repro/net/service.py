"""Network flush service: channels flush to a server instead of a file.

The network-output counterpart of the recorder service: instead of
serializing the channel's output records to a local file at finish, they
travel over a :class:`~repro.net.client.FlushClient` to a running
:class:`~repro.net.server.AggregationServer`.

Three shipping modes:

* **records at finish** (default) — the records flushed by the sibling
  services (aggregation results or trace buffers) ship as one final
  stream.  The *server's* scheme aggregates them, so pair a channel-side
  ``AGGREGATE count ... GROUP BY kernel`` with a server-side second-stage
  scheme such as ``AGGREGATE sum(aggregate.count) GROUP BY kernel`` — the
  paper's two-stage workflow with stage two on the wire.
* **states at finish** (``netflush.payload = states``) — the sibling
  ``aggregate`` service's per-thread partial databases are exported and
  shipped as mergeable operator states.  The server folds them through
  ``load_states`` under the *same* scheme: exact distributed aggregation,
  with payload proportional to the number of keys.
* **stream mode** (``netflush.stream = true``) — every snapshot record is
  pushed through the client *as it happens* (batched transparently), so
  the server aggregates on-line while the application runs and live
  CalQL queries observe it mid-run.

Server unavailability never blocks or crashes the application: batches
spool to disk and replay on reconnect (see :class:`FlushClient`).

Config keys (prefix ``netflush.``):

``host`` / ``port``
    Server address (``port`` is required).
``stream``
    Stream snapshots live instead of shipping at finish (default false).
``payload``
    Finish-mode wire shape: ``records`` (default) or ``states``
    (requires the ``aggregate`` service on the same channel).
``batch_size``, ``timeout``, ``retries``, ``spool_dir``
    Passed through to :class:`FlushClient`.  A shared ``spool_dir`` is
    safe: each client spools into its own subdirectory.
``failover_after``
    Seconds of continuous server loss before the client re-parents to the
    upstream the server advertised (reduction trees; default: never).
``delete_spool``
    Delete acknowledged write-ahead spool files at finish (default true).
    Batches the server never acknowledged are always kept on disk,
    whatever this is set to.
``scheme``
    Optional CalQL scheme text announced in the handshake so the server
    can refuse mismatched producers early.
``token``
    Tenant auth token presented in the handshake: folds this channel's
    records into that tenant's namespace on a multi-tenant server
    (default: the shared default namespace).
"""

from __future__ import annotations

from typing import Optional

from ..common.errors import ConfigError
from ..common.record import Record
from ..runtime.services.base import Service
from .client import FlushClient

__all__ = ["NetworkFlushService"]


class NetworkFlushService(Service):
    name = "netflush"

    def __init__(self, channel) -> None:
        super().__init__(channel)
        port = self.config.get_int("port", 0)
        if not port:
            raise ConfigError("netflush service needs 'netflush.port'")
        self.stream = self.config.get_bool("stream", False)
        self.payload = self.config.get_string("payload", "records")
        if self.payload not in ("records", "states"):
            raise ConfigError(
                f"netflush.payload must be 'records' or 'states', got {self.payload!r}"
            )
        spool_dir = self.config.get_string("spool_dir", "")
        scheme = self.config.get_string("scheme", "")
        self.delete_spool = self.config.get_bool("delete_spool", True)
        self.client = FlushClient(
            host=self.config.get_string("host", "127.0.0.1"),
            port=port,
            scheme=scheme or None,
            batch_size=self.config.get_int("batch_size", 256),
            timeout=self.config.get_float("timeout", 5.0),
            retries=self.config.get_int("retries", 3),
            spool_dir=spool_dir or None,
            failover_after=self.config.get_float("failover_after", 0.0) or None,
            token=self.config.get_string("token", "") or None,
            on_server_info=self._on_server_info,
        )
        self._sent_at_finish: Optional[int] = None

    def _on_server_info(self, info: dict) -> None:
        """HELLO_ACK observer: adopt a server-advertised sampling budget.

        A channel configured with ``sampling.budget = auto`` defers its
        overhead target to whatever server it flushes to — the serve-side
        ``--sampling-budget`` flag then tunes the whole producer fleet.
        Locally-configured budgets always win (adopt is a no-op there).
        """
        budget = info.get("sampling_budget_ns")
        sampler = getattr(self.channel, "sampler", None)
        if budget is None or sampler is None:
            return
        try:
            sampler.adopt_budget_ns(float(budget))
        except (TypeError, ValueError):
            pass

    def process(self, record: Record) -> None:
        # Only wired up in stream mode: Channel dispatches process() to us
        # regardless, so gate here instead of relying on hook detection.
        if self.stream:
            self.client.push(record)

    def finish(self) -> None:
        if self.stream:
            self.client.flush()
            self.client.close(delete_spool=self.delete_spool)
            return
        if self.payload == "states":
            self._finish_states()
        else:
            self._finish_records()
        self.client.close(delete_spool=self.delete_spool)

    def _finish_states(self) -> None:
        aggregate = next(
            (s for s in self.channel.services if s.name == "aggregate"), None
        )
        if aggregate is None:
            raise ConfigError(
                "netflush.payload=states needs the 'aggregate' service "
                "on the same channel"
            )
        shipped = 0
        for db in aggregate.databases():
            self.client.send_states(db)
            shipped += db.num_entries
        self._sent_at_finish = shipped

    def _finish_records(self) -> None:
        records: list[Record] = []
        for service in self.channel.services:
            if service is not self:
                records.extend(service.flush())
        if self.channel.globals:
            records = [r.with_entries(self.channel.globals) for r in records]
        self.client.send_records(records)
        self._sent_at_finish = len(records)

    def stats(self) -> dict[str, object]:
        """Delivery counters for the channel's stats record."""
        out: dict[str, object] = dict(self.client.counters)
        out["pending"] = self.client.num_spooled
        if self._sent_at_finish is not None:
            out["sent_at_finish"] = self._sent_at_finish
        return out
