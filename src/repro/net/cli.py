"""``repro-query serve`` / ``repro-query live``: the service commands.

The on-line counterparts of the file-based query CLI.  ``serve`` runs an
:class:`~repro.net.server.AggregationServer` in the foreground until
interrupted; ``live`` connects to a running server and executes one CalQL
query against a consistent snapshot of its in-flight state — ingestion is
never paused.

Examples::

    repro-query serve --scheme "AGGREGATE count, sum(time.duration) \
        GROUP BY function" --port 7744 --shards 8

    repro-query live "AGGREGATE sum(time.duration) GROUP BY function \
        ORDER BY function" --port 7744

    repro-query live --target telemetry \
        "SELECT observe.metric, observe.count WHERE observe.kind=counter" \
        --port 7744 --interval 2 --count 10

``serve --upstream HOST:PORT`` turns the server into a reduction-tree
relay that periodically forwards its partial aggregates to a parent, and
``tree`` launches a whole local fan-in-k tree in one process (handy for
smoke tests and the tree benchmark)::

    repro-query serve --scheme "..." --upstream 10.0.0.1:7744 \
        --forward-interval 0.5 --failover-after 5

    repro-query tree --scheme "AGGREGATE count GROUP BY k" \
        --leaves 8 --fanin 2
"""

from __future__ import annotations

import argparse
import json
import signal
import sys
import threading
import time
from typing import Optional, Sequence

from ..common.errors import ReproError
from .client import live_query
from .server import AggregationServer

__all__ = ["main", "build_serve_parser", "build_live_parser", "build_tree_parser"]


def build_serve_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-query serve",
        description="Run an on-line aggregation server for streaming clients.",
    )
    parser.add_argument(
        "--scheme",
        required=True,
        help='aggregation scheme, e.g. "AGGREGATE count GROUP BY function"',
    )
    parser.add_argument("--host", default="127.0.0.1", help="bind address")
    parser.add_argument(
        "--port", type=int, default=0, help="listen port (0 = pick a free port)"
    )
    parser.add_argument(
        "--shards", type=int, default=4, help="number of aggregation shards"
    )
    parser.add_argument(
        "--queue-depth",
        type=int,
        default=128,
        help="per-shard queue depth before backpressure stalls producers",
    )
    parser.add_argument(
        "--core",
        choices=("async", "threaded"),
        default="async",
        help="network plane: one asyncio event loop for every connection "
        "(default) or the legacy thread-per-connection core",
    )
    parser.add_argument(
        "--final-output",
        metavar="PATH",
        help="on graceful shutdown, export the final drained snapshot here "
        "(.json/.csv/.cali/.rcf chosen by extension)",
    )
    parser.add_argument(
        "--sampling-budget",
        metavar="BUDGET",
        help="advertise a per-event overhead budget (e.g. '200ns') in the "
        "handshake: producer channels running sampling.budget=auto adopt it",
    )
    tenancy = parser.add_argument_group("multi-tenancy / admission control")
    tenancy.add_argument(
        "--tenant",
        action="append",
        dest="tenants",
        metavar="TOKEN:NAME",
        help="register an auth token for a tenant namespace (repeatable)",
    )
    tenancy.add_argument(
        "--tenants-file",
        metavar="PATH",
        help="JSON file mapping token -> tenant name or "
        '{"name": ..., "max_connections": ..., "max_queued": ..., '
        '"max_entries": ...} quota spec',
    )
    tenancy.add_argument(
        "--require-token",
        action="store_true",
        help="reject HELLOs that present no auth token",
    )
    tenancy.add_argument(
        "--admission-timeout",
        type=float,
        default=1.0,
        metavar="SEC",
        help="async core: how long a batch may wait for shard-queue space "
        "before it is shed with BUSY (default 1.0)",
    )
    tenancy.add_argument(
        "--busy-retry-after",
        type=float,
        default=0.25,
        metavar="SEC",
        help="retry-after hint carried by BUSY frames (default 0.25)",
    )
    tenancy.add_argument(
        "--dedup-ttl",
        type=float,
        default=900.0,
        metavar="SEC",
        help="prune per-client dedup/replay state idle this long (default 900)",
    )
    relay = parser.add_argument_group("relay mode (reduction tree)")
    relay.add_argument(
        "--upstream",
        metavar="HOST:PORT",
        help="run as a relay: forward partial aggregates to this parent",
    )
    relay.add_argument(
        "--forward-interval",
        type=float,
        default=0.5,
        metavar="SEC",
        help="seconds between forward cycles in relay mode (default 0.5)",
    )
    relay.add_argument(
        "--failover-after",
        type=float,
        metavar="SEC",
        help="re-parent to the grandparent after SEC seconds of parent loss",
    )
    relay.add_argument(
        "--relay-id", help="stable relay identity (default: random node id)"
    )
    relay.add_argument(
        "--level",
        type=int,
        metavar="N",
        help="depth in the tree, root = 0 (default: learned from the parent)",
    )
    windowed = parser.add_argument_group("windowed streaming")
    windowed.add_argument(
        "--window",
        metavar="SPEC",
        help='window assigner, e.g. "tumbling(30s)" or "sliding(1m, 10s)" '
        "(a WINDOW clause in --scheme works too)",
    )
    windowed.add_argument(
        "--lateness",
        type=float,
        default=0.0,
        metavar="SEC",
        help="bounded lateness: how far behind its source's stream front an "
        "event may arrive before it is dropped as late (default 0)",
    )
    windowed.add_argument(
        "--time-attribute",
        metavar="LABEL",
        help="record attribute holding the event time (default time.start, "
        "falling back to accumulated time.duration)",
    )
    windowed.add_argument(
        "--retire-interval",
        type=float,
        default=0.0,
        metavar="SEC",
        help="retire closed windows every SEC seconds (root only; 0 = only "
        "on demand)",
    )
    windowed.add_argument(
        "--confidence",
        type=float,
        default=0.90,
        metavar="P",
        help="confidence level for online estimates (default 0.90)",
    )
    return parser


def build_tree_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-query tree",
        description="Launch a local reduction tree (root + relay servers).",
    )
    parser.add_argument(
        "--scheme",
        required=True,
        help='aggregation scheme, e.g. "AGGREGATE count GROUP BY function"',
    )
    parser.add_argument(
        "--leaves", type=int, default=4, help="number of leaf clients to plan for"
    )
    parser.add_argument(
        "--fanin", type=int, default=2, help="maximum children per tree node"
    )
    parser.add_argument("--host", default="127.0.0.1", help="bind address")
    parser.add_argument(
        "--shards", type=int, default=1, help="aggregation shards per node"
    )
    parser.add_argument(
        "--forward-interval",
        type=float,
        default=0.25,
        metavar="SEC",
        help="seconds between relay forward cycles (default 0.25)",
    )
    parser.add_argument(
        "--failover-after",
        type=float,
        default=5.0,
        metavar="SEC",
        help="relay failure window before children re-parent (default 5)",
    )
    return parser


def build_live_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-query live",
        description="Run a CalQL query against a live aggregation server.",
    )
    parser.add_argument("query", help="CalQL query expression")
    parser.add_argument("--host", default="127.0.0.1", help="server address")
    parser.add_argument("--port", type=int, required=True, help="server port")
    parser.add_argument(
        "--target",
        choices=("aggregate", "telemetry", "estimate", "retired"),
        default="aggregate",
        help="query the aggregated data (default), the server's own metrics, "
        "or — on a windowed server — open-window estimates with confidence "
        "intervals ('estimate') / finalized windows only ('retired')",
    )
    parser.add_argument(
        "--timeout", type=float, default=10.0, help="connection timeout in seconds"
    )
    parser.add_argument(
        "--token",
        help="tenant auth token: scopes the query to that tenant's namespace "
        "on a multi-tenant server",
    )
    parser.add_argument(
        "--interval",
        type=float,
        metavar="SEC",
        help="repeat the query every SEC seconds (watch mode)",
    )
    parser.add_argument(
        "--count",
        type=int,
        metavar="N",
        help="with --interval, stop after N iterations",
    )
    parser.add_argument(
        "--follow",
        action="store_true",
        help="watch mode tuned for windowed streams: repeat the query "
        "(default every 1s) printing a timestamped per-window snapshot "
        "each round; pairs naturally with --target estimate",
    )
    return parser


def _parse_tenants(args) -> Optional[dict]:
    """Merge ``--tenants-file`` and repeated ``--tenant TOKEN:NAME`` flags."""
    tenants: dict = {}
    if args.tenants_file:
        with open(args.tenants_file, "r", encoding="utf-8") as stream:
            loaded = json.load(stream)
        if not isinstance(loaded, dict):
            raise ValueError(
                f"{args.tenants_file}: expected a token -> tenant JSON object"
            )
        tenants.update(loaded)
    for spec in args.tenants or ():
        token, sep, name = spec.partition(":")
        if not sep or not token or not name:
            raise ValueError(f"--tenant must be TOKEN:NAME, got {spec!r}")
        tenants[token] = name
    return tenants or None


def serve_main(argv: Sequence[str]) -> int:
    args = build_serve_parser().parse_args(argv)
    try:
        server = AggregationServer(
            args.scheme,
            host=args.host,
            port=args.port,
            shards=args.shards,
            queue_depth=args.queue_depth,
            core=args.core,
            upstream=args.upstream,
            forward_interval=args.forward_interval,
            failover_after=args.failover_after,
            relay_id=args.relay_id,
            level=args.level,
            window=args.window,
            lateness=args.lateness,
            time_attribute=args.time_attribute,
            retire_interval=args.retire_interval,
            confidence=args.confidence,
            tenants=_parse_tenants(args),
            require_token=args.require_token,
            admission_timeout=args.admission_timeout,
            busy_retry_after=args.busy_retry_after,
            dedup_ttl=args.dedup_ttl,
            sampling_budget=args.sampling_budget,
        )
        server.start()
    except (ReproError, OSError, ValueError) as exc:
        print(f"repro-query serve: error: {exc}", file=sys.stderr)
        return 1
    # SIGTERM (systemd, docker stop, subprocess tests) and SIGINT both land
    # on the same graceful path: stop accepting, fold everything queued,
    # export the final snapshot, exit 0.  Handlers go in *before* the banner:
    # the banner is the readiness signal, and a supervisor may deliver
    # SIGTERM the moment it sees it.
    stop = threading.Event()

    def _on_signal(signum, frame) -> None:
        stop.set()

    signal.signal(signal.SIGTERM, _on_signal)
    signal.signal(signal.SIGINT, _on_signal)
    host, port = server.address
    role = f"relay -> {args.upstream}" if args.upstream else "root"
    windowed = ""
    if server.windowed:
        windowed = f", windowed {server.window_assigner.describe()}"
    print(
        f"serving {args.scheme!r} on {host}:{port} "
        f"({role}, {args.core} core, {args.shards} shards{windowed}, "
        f"epoch {server.epoch})",
        file=sys.stderr,
    )
    sys.stderr.flush()
    try:
        while not stop.wait(timeout=0.5):
            pass
    except KeyboardInterrupt:
        pass
    print("draining...", file=sys.stderr)
    server.stop()
    try:
        records = server.drain_results()
        if args.final_output:
            from ..io.dataset import write_records  # deferred: io sits below net

            write_records(args.final_output, records)
            print(
                f"drained {len(records)} groups -> {args.final_output}",
                file=sys.stderr,
            )
        else:
            print(f"drained {len(records)} groups", file=sys.stderr)
    except (ReproError, OSError) as exc:
        print(f"repro-query serve: drain error: {exc}", file=sys.stderr)
        return 1
    return 0


def live_main(argv: Sequence[str]) -> int:
    args = build_live_parser().parse_args(argv)
    interval = args.interval
    if args.follow and not interval:
        interval = 1.0
    iteration = 0
    while True:
        iteration += 1
        try:
            result = live_query(
                args.host,
                args.port,
                args.query,
                target=args.target,
                timeout=args.timeout,
                token=args.token,
            )
        except (ReproError, OSError) as exc:
            print(f"repro-query live: error: {exc}", file=sys.stderr)
            return 1
        except KeyboardInterrupt:
            return 0
        if args.follow:
            stamp = time.strftime("%H:%M:%S")
            print(f"-- {stamp} {args.target} snapshot ({len(result.records)} rows) --")
        print(str(result))
        if not interval or (args.count and iteration >= args.count):
            return 0
        sys.stdout.flush()
        try:
            time.sleep(interval)
        except KeyboardInterrupt:
            return 0


def tree_main(argv: Sequence[str]) -> int:
    args = build_tree_parser().parse_args(argv)
    from .tree import LocalTree  # deferred: keeps `live` start-up lean

    try:
        tree = LocalTree(
            args.scheme,
            n_leaves=args.leaves,
            fanin=args.fanin,
            shards=args.shards,
            forward_interval=args.forward_interval,
            failover_after=args.failover_after,
            host=args.host,
        )
    except (ReproError, OSError, ValueError) as exc:
        print(f"repro-query tree: error: {exc}", file=sys.stderr)
        return 1
    shape = " -> ".join(str(len(level)) for level in reversed(tree.levels))
    print(f"tree up ({shape} nodes, leaves attach to:)", file=sys.stderr)
    for i in range(args.leaves):
        host, port = tree.leaf_address(i)
        print(f"  leaf {i}: {host}:{port}", file=sys.stderr)
    root_host, root_port = tree.root.address
    print(f"  root (query here): {root_host}:{root_port}", file=sys.stderr)
    try:
        while True:
            time.sleep(1.0)
    except KeyboardInterrupt:
        print("draining tree...", file=sys.stderr)
    finally:
        tree.stop()
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if not argv or argv[0] not in ("serve", "live", "tree"):
        print("usage: repro-query {serve,live,tree} ...", file=sys.stderr)
        return 2
    command, rest = argv[0], argv[1:]
    if command == "serve":
        return serve_main(rest)
    if command == "tree":
        return tree_main(rest)
    return live_main(rest)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
