"""``repro-query serve`` / ``repro-query live``: the service commands.

The on-line counterparts of the file-based query CLI.  ``serve`` runs an
:class:`~repro.net.server.AggregationServer` in the foreground until
interrupted; ``live`` connects to a running server and executes one CalQL
query against a consistent snapshot of its in-flight state — ingestion is
never paused.

Examples::

    repro-query serve --scheme "AGGREGATE count, sum(time.duration) \
        GROUP BY function" --port 7744 --shards 8

    repro-query live "AGGREGATE sum(time.duration) GROUP BY function \
        ORDER BY function" --port 7744

    repro-query live --target telemetry \
        "SELECT observe.metric, observe.count WHERE observe.kind=counter" \
        --port 7744 --interval 2 --count 10
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Optional, Sequence

from ..common.errors import ReproError
from .client import live_query
from .server import AggregationServer

__all__ = ["main", "build_serve_parser", "build_live_parser"]


def build_serve_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-query serve",
        description="Run an on-line aggregation server for streaming clients.",
    )
    parser.add_argument(
        "--scheme",
        required=True,
        help='aggregation scheme, e.g. "AGGREGATE count GROUP BY function"',
    )
    parser.add_argument("--host", default="127.0.0.1", help="bind address")
    parser.add_argument(
        "--port", type=int, default=0, help="listen port (0 = pick a free port)"
    )
    parser.add_argument(
        "--shards", type=int, default=4, help="number of aggregation shards"
    )
    parser.add_argument(
        "--queue-depth",
        type=int,
        default=128,
        help="per-shard queue depth before backpressure stalls producers",
    )
    return parser


def build_live_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-query live",
        description="Run a CalQL query against a live aggregation server.",
    )
    parser.add_argument("query", help="CalQL query expression")
    parser.add_argument("--host", default="127.0.0.1", help="server address")
    parser.add_argument("--port", type=int, required=True, help="server port")
    parser.add_argument(
        "--target",
        choices=("aggregate", "telemetry"),
        default="aggregate",
        help="query the aggregated data (default) or the server's own metrics",
    )
    parser.add_argument(
        "--timeout", type=float, default=10.0, help="connection timeout in seconds"
    )
    parser.add_argument(
        "--interval",
        type=float,
        metavar="SEC",
        help="repeat the query every SEC seconds (watch mode)",
    )
    parser.add_argument(
        "--count",
        type=int,
        metavar="N",
        help="with --interval, stop after N iterations",
    )
    return parser


def serve_main(argv: Sequence[str]) -> int:
    args = build_serve_parser().parse_args(argv)
    try:
        server = AggregationServer(
            args.scheme,
            host=args.host,
            port=args.port,
            shards=args.shards,
            queue_depth=args.queue_depth,
        )
        server.start()
    except (ReproError, OSError) as exc:
        print(f"repro-query serve: error: {exc}", file=sys.stderr)
        return 1
    host, port = server.address
    print(
        f"serving {args.scheme!r} on {host}:{port} "
        f"({args.shards} shards, epoch {server.epoch})",
        file=sys.stderr,
    )
    try:
        while True:
            time.sleep(1.0)
    except KeyboardInterrupt:
        print("draining...", file=sys.stderr)
    finally:
        server.stop()
    return 0


def live_main(argv: Sequence[str]) -> int:
    args = build_live_parser().parse_args(argv)
    iteration = 0
    while True:
        iteration += 1
        try:
            result = live_query(
                args.host, args.port, args.query, target=args.target, timeout=args.timeout
            )
        except (ReproError, OSError) as exc:
            print(f"repro-query live: error: {exc}", file=sys.stderr)
            return 1
        print(str(result))
        if not args.interval or (args.count and iteration >= args.count):
            return 0
        sys.stdout.flush()
        time.sleep(args.interval)


def main(argv: Optional[Sequence[str]] = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if not argv or argv[0] not in ("serve", "live"):
        print("usage: repro-query {serve,live} ...", file=sys.stderr)
        return 2
    command, rest = argv[0], argv[1:]
    if command == "serve":
        return serve_main(rest)
    return live_main(rest)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
