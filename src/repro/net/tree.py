"""Reduction-tree topology: plan, launch, and drive federated aggregation.

The paper's cross-process aggregation (Section IV-C, Fig. 6) combines
partial aggregates up a logarithmic MPI reduction tree.  This module is
that topology over TCP: a *tree* of :class:`~repro.net.server.AggregationServer`
instances where every non-root node runs in relay mode — it aggregates
its children's streams exactly like a flat star server, then periodically
forwards the accumulated delta to its parent, level by level, until the
partial states meet at a single root::

                         root (level 0)
                        /              \\
              relay L1-0                relay L1-1
             /         \\              /          \\
        leaf 0        leaf 1      leaf 2         leaf 3

    repro-query tree --leaves 4 --fanin 2 -s "AGGREGATE sum(x) GROUP BY k"

Why a tree beats the star at scale: each relay *combines* its subtree's
records into per-key partial states before anything crosses the next
link, so the root receives O(keys × fan-in) wire bytes per cycle instead
of O(records × leaves) — the Fig. 8 payload-reduction effect, measured by
``benchmarks/bench_tree.py``.

:func:`plan_tree` does the arithmetic (level sizes for N leaves at
fan-in k); :class:`LocalTree` launches a whole tree in-process — the unit
used by the fault-injection tests, the CLI launcher, and the benchmark.
Every relay keeps the flat topology's delivery guarantees (write-ahead
spool, replay, exactly-once per epoch) plus failover: when a mid-tree
relay dies, its children re-parent to their grandparent after
``failover_after`` seconds, announce the dead incarnation so the
grandparent retracts its partial contribution, and replay their spools —
root totals match a serial reference exactly, kill or no kill.
"""

from __future__ import annotations

import math
from typing import Optional, Union

from ..aggregate.scheme import AggregationScheme
from ..common.errors import ReproError
from .client import FlushClient
from .server import AggregationServer

__all__ = ["plan_tree", "LocalTree"]


def plan_tree(n_leaves: int, fanin: int = 2) -> list[int]:
    """Level sizes for ``n_leaves`` clients at fan-in ``fanin``, root first.

    The returned list always starts with ``[1]`` (the root); each further
    entry is one relay level, sized so every node has at most ``fanin``
    children.  When the leaves already fit under the root the plan is the
    flat star ``[1]``.

    >>> plan_tree(4, 2)
    [1, 2]
    >>> plan_tree(8, 2)
    [1, 2, 4]
    >>> plan_tree(16, 4)
    [1, 4]
    >>> plan_tree(2, 2)
    [1]
    """
    if n_leaves < 1:
        raise ValueError(f"need at least one leaf, got {n_leaves}")
    if fanin < 2:
        raise ValueError(f"fan-in must be at least 2, got {fanin}")
    sizes: list[int] = []
    current = math.ceil(n_leaves / fanin)
    while current > 1:
        sizes.append(current)
        current = math.ceil(current / fanin)
    return [1] + sizes[::-1]


class LocalTree:
    """Launch a whole reduction tree of in-process servers.

    ``level_sizes`` (root-first, e.g. ``[1, 2, 4]``) pins the exact shape;
    otherwise :func:`plan_tree` derives it from ``n_leaves`` and ``fanin``.
    Leaf ``i`` attaches to bottom-level node ``i % width`` — get its
    address with :meth:`leaf_address` or a ready client with
    :meth:`leaf_client`.

    >>> tree = LocalTree("AGGREGATE count GROUP BY k", n_leaves=4)  # doctest: +SKIP
    >>> client = tree.leaf_client(0)                                # doctest: +SKIP
    >>> ...; tree.sync(); tree.root.drain_results()                 # doctest: +SKIP
    """

    def __init__(
        self,
        scheme: Union[AggregationScheme, str],
        n_leaves: int,
        fanin: int = 2,
        level_sizes: Optional[list[int]] = None,
        shards: int = 1,
        forward_interval: float = 0.0,
        failover_after: Optional[float] = None,
        host: str = "127.0.0.1",
        binary: bool = True,
        window=None,
        lateness: float = 0.0,
        time_attribute: Optional[str] = None,
        retire_interval: float = 0.0,
        confidence: float = 0.90,
        core: str = "async",
    ) -> None:
        sizes = list(level_sizes) if level_sizes is not None else plan_tree(n_leaves, fanin)
        if not sizes or sizes[0] != 1:
            raise ValueError(f"level sizes must start with the root [1, ...], got {sizes}")
        if any(size < 1 for size in sizes):
            raise ValueError(f"every level needs at least one node, got {sizes}")
        self.n_leaves = n_leaves
        self.fanin = fanin
        self.failover_after = failover_after
        # Every node shares the window configuration: relays stamp and
        # watermark the raw records their leaves stream, the root alone
        # retires (windowize_scheme is idempotent, so passing the root's
        # already-augmented scheme down is safe).
        windowed_kwargs = dict(
            window=window,
            lateness=lateness,
            time_attribute=time_attribute,
            confidence=confidence,
            core=core,
        )
        #: levels[0] = [root]; levels[-1] is what the leaves stream to
        self.levels: list[list[AggregationServer]] = []
        try:
            root = AggregationServer(
                scheme, host=host, shards=shards, relay_id="root", level=0,
                binary=binary, retire_interval=retire_interval,
                **windowed_kwargs,
            ).start()
            self.levels.append([root])
            self.scheme = root.scheme
            if root.windowed and window is None:
                # The window came from the scheme text; relays get the
                # built scheme object, so pass the assigner explicitly.
                windowed_kwargs["window"] = root.window_assigner
            for depth, size in enumerate(sizes[1:], start=1):
                parents = self.levels[depth - 1]
                nodes = []
                for i in range(size):
                    parent = parents[i % len(parents)]
                    nodes.append(
                        AggregationServer(
                            self.scheme,
                            host=host,
                            shards=shards,
                            upstream=parent.address,
                            forward_interval=forward_interval,
                            failover_after=failover_after,
                            relay_id=f"relay-L{depth}-{i}",
                            level=depth,
                            binary=binary,
                            **windowed_kwargs,
                        ).start()
                    )
                self.levels.append(nodes)
        except Exception:
            self._teardown(kill=True)
            raise
        self._stopped = False

    # -- shape ---------------------------------------------------------------

    @property
    def root(self) -> AggregationServer:
        return self.levels[0][0]

    @property
    def depth(self) -> int:
        """Number of server levels (1 = flat star: just the root)."""
        return len(self.levels)

    @property
    def nodes(self) -> list[AggregationServer]:
        return [node for level in self.levels for node in level]

    def leaf_address(self, index: int) -> tuple[str, int]:
        """Where leaf ``index`` should stream (bottom level, round-robin)."""
        bottom = self.levels[-1]
        return bottom[index % len(bottom)].address

    def leaf_client(self, index: int, **kwargs) -> FlushClient:
        """A :class:`FlushClient` wired to leaf ``index``'s relay.

        ``failover_after`` defaults to the tree's own setting so leaves
        re-parent when their relay dies; any :class:`FlushClient` keyword
        can be overridden.
        """
        host, port = self.leaf_address(index)
        if self.root.windowed:
            # Leaves speak the base scheme: they stream raw records and the
            # relay stamps windows / tracks watermarks on arrival.
            kwargs.setdefault("scheme", self.root._base_scheme_text)
        else:
            kwargs.setdefault("scheme", self.scheme.describe())
        kwargs.setdefault("failover_after", self.failover_after)
        kwargs.setdefault("client_id", f"leaf-{index}")
        return FlushClient(host, port, **kwargs)

    # -- driving -------------------------------------------------------------

    def sync(self) -> bool:
        """Force one forward cycle per relay, deepest level first.

        Deliveries are synchronous and export barriers are queue-ordered,
        so after ``leaf.flush(); tree.sync()`` the root's merged state
        contains every acknowledged leaf record.  Returns True when every
        relay's parent acknowledged everything (False = something is
        spooled behind a dead link).
        """
        ok = True
        for level in reversed(self.levels[1:]):
            for node in level:
                if node._stopping.is_set():
                    continue  # a killed relay: its children re-deliver
                try:
                    ok = node.forward_now() and ok
                except ReproError:
                    ok = False
        return ok

    def kill_relay(self, depth: int, index: int) -> AggregationServer:
        """Abruptly kill one relay (fault injection); returns the corpse."""
        if depth < 1:
            raise ValueError("depth 0 is the root; kill a relay level >= 1")
        node = self.levels[depth][index]
        node.kill()
        return node

    # -- teardown ------------------------------------------------------------

    def stop(self, timeout: float = 10.0) -> None:
        """Graceful drain, deepest level first so every residue flows up."""
        if self._stopped:
            return
        self._stopped = True
        self._teardown(kill=False, timeout=timeout)

    def _teardown(self, kill: bool, timeout: float = 10.0) -> None:
        for level in reversed(self.levels):
            for node in level:
                try:
                    if kill:
                        node.kill()
                    elif not node._stopping.is_set():
                        node.stop(timeout=timeout)
                except Exception:
                    pass

    def __enter__(self) -> "LocalTree":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()

    def __repr__(self) -> str:
        shape = "/".join(str(len(level)) for level in self.levels)
        return f"LocalTree(levels={shape}, leaves={self.n_leaves})"
