"""repro.net — the networked on-line aggregation service.

The paper's on-line aggregation service (Section IV-B) reduces snapshot
streams in-process; this package exposes the same engine over TCP so many
producer processes on many hosts can stream into one long-running,
queryable aggregation daemon:

* :mod:`.protocol` — a length-prefixed, versioned binary framing protocol
  carrying snapshot-record batches and exported partial-DB states;
* :mod:`.server` — :class:`AggregationServer`, a daemon whose network
  plane is a single asyncio event loop (10k+ concurrent clients, no
  thread per socket; a legacy threaded core stays selectable) that
  hash-routes incoming keys to N shard workers (one
  :class:`~repro.aggregate.db.AggregationDB` per shard per tenant,
  lock-free within a shard) and merges shards on demand for live CalQL
  queries — with token-keyed tenant namespaces, per-tenant quotas, and
  BUSY-frame admission control when shard queues back up;
* :mod:`.client` — :class:`FlushClient`, a batching transport with
  full-jitter retry/backoff, BUSY retry-after handling, timeouts, and a
  disk spool replayed on reconnect;
* :mod:`.service` — :class:`NetworkFlushService`, a runtime service so any
  :class:`~repro.runtime.channel.Channel` flushes to a server instead of a
  file;
* :mod:`.tree` — :func:`plan_tree` / :class:`LocalTree`, the federated
  reduction-tree topology: servers in relay mode forward partial states
  level-by-level to a single root (the paper's Fig. 6 MPI tree over TCP),
  with spool-backed failover when a mid-tree relay dies.

The mergeable transport unit is exactly what
:meth:`AggregationDB.export_states`/:meth:`load_states` already provide —
clients may pre-aggregate locally and ship per-key partial states whose
size is proportional to the number of *groups*, not input records.
"""

from .client import FlushClient, live_query
from .protocol import (
    PROTOCOL_VERSION,
    FrameTooLarge,
    MessageType,
    ProtocolError,
    VersionMismatch,
    read_frame,
    write_frame,
)
from .server import DEFAULT_TENANT, AggregationServer, TenantQuota
from .tree import LocalTree, plan_tree

__all__ = [
    "AggregationServer",
    "TenantQuota",
    "DEFAULT_TENANT",
    "FlushClient",
    "live_query",
    "LocalTree",
    "plan_tree",
    "MessageType",
    "ProtocolError",
    "FrameTooLarge",
    "VersionMismatch",
    "PROTOCOL_VERSION",
    "read_frame",
    "write_frame",
]
