"""The wire protocol: length-prefixed, versioned binary frames.

Every message travelling between :class:`~repro.net.client.FlushClient`
and :class:`~repro.net.server.AggregationServer` is one *frame*::

    offset  size  field
    0       4     magic  b"RAGG"
    4       1     protocol version (currently 1)
    5       1     message type (MessageType)
    6       2     flags (reserved, 0)
    8       4     payload length N (big-endian unsigned)
    12      N     payload (UTF-8 JSON)

The framing layer is deliberately binary and fixed — a reader can always
resynchronize trust boundaries from the magic and knows the exact byte
count to expect — while payloads are JSON so they stay debuggable and
need no third-party serializer.  Pickle is never used on the wire: the
server must survive arbitrary hostile bytes, and unpickling is code
execution.

Typed payload helpers round-trip the framework's data through plain JSON:

* records — ``{label: [type_name, raw_value]}`` per record, preserving
  :class:`~repro.common.variant.Variant` types exactly;
* exported partial-DB states — ``[key entries, state cells]`` pairs where
  cells are numbers, ``null``, nested lists, or tagged variants
  (``{"__v": [type, value]}`` — :class:`FirstOp` keeps a Variant cell).

Failure behaviour is part of the contract: a frame with a bad magic, an
unknown version, or an oversized declared length raises a specific
:class:`ProtocolError` subclass *before* any payload is read, so a server
can reject garbage cheaply and keep the listening socket healthy.
"""

from __future__ import annotations

import enum
import json
import struct
from typing import BinaryIO, Iterable, Optional, Sequence

from ..common.errors import ReproError
from ..common.record import Record
from ..common.variant import ValueType, Variant

__all__ = [
    "MAGIC",
    "PROTOCOL_VERSION",
    "MAX_PAYLOAD",
    "HEADER",
    "MessageType",
    "ProtocolError",
    "Truncated",
    "FrameTooLarge",
    "VersionMismatch",
    "write_frame",
    "read_frame",
    "write_message",
    "read_message",
    "parse_body",
    "records_to_wire",
    "records_from_wire",
    "states_to_wire",
    "states_from_wire",
]

MAGIC = b"RAGG"
PROTOCOL_VERSION = 1

#: default upper bound on a frame payload (refuse anything larger)
MAX_PAYLOAD = 16 * 1024 * 1024

HEADER = struct.Struct(">4sBBHI")


class ProtocolError(ReproError):
    """Malformed or unacceptable wire data."""


class Truncated(ProtocolError):
    """The peer closed the connection mid-frame."""


class FrameTooLarge(ProtocolError):
    """Declared payload length exceeds the receiver's limit."""


class VersionMismatch(ProtocolError):
    """Frame carries an unsupported protocol version."""

    def __init__(self, got: int) -> None:
        super().__init__(
            f"unsupported protocol version {got} (speaking {PROTOCOL_VERSION})"
        )
        self.got = got


class MessageType(enum.IntEnum):
    """Frame type tags (one byte on the wire)."""

    HELLO = 1  # client handshake: version, client id, scheme text
    HELLO_ACK = 2  # server accepts: epoch id, shard count
    RECORDS = 3  # batch of snapshot records (seq-numbered)
    STATES = 4  # exported partial-DB states (seq-numbered)
    ACK = 5  # server confirms a seq-numbered batch
    QUERY = 6  # CalQL text to run against the merged live state
    RESULT = 7  # record set reply (query / drain / stats)
    STATS = 8  # request server telemetry records
    ERROR = 9  # refusal; payload carries a reason
    DRAIN = 10  # flush request: merged results of everything ingested
    BYE = 11  # orderly goodbye
    FORWARD = 12  # relay -> parent: partial-DB delta tagged with origin + level
    RETRACT = 13  # relay -> parent: drop previously forwarded origins (failover)


# -- frame I/O ----------------------------------------------------------------


def write_frame(
    stream: BinaryIO,
    msg_type: int,
    payload: bytes,
    version: int = PROTOCOL_VERSION,
) -> int:
    """Write one frame; returns the number of bytes written."""
    data = HEADER.pack(MAGIC, version, int(msg_type), 0, len(payload)) + payload
    stream.write(data)
    stream.flush()
    return len(data)


def _read_exact(stream: BinaryIO, n: int, context: str) -> bytes:
    buf = b""
    while len(buf) < n:
        chunk = stream.read(n - len(buf))
        if not chunk:
            raise Truncated(
                f"connection closed mid-{context} ({len(buf)}/{n} bytes read)"
            )
        buf += chunk
    return buf


def read_frame(
    stream: BinaryIO, max_payload: int = MAX_PAYLOAD
) -> tuple[MessageType, bytes]:
    """Read one frame; returns ``(message type, payload bytes)``.

    Raises :class:`Truncated` on a short read, :class:`ProtocolError` on a
    bad magic or unknown message type, :class:`VersionMismatch` /
    :class:`FrameTooLarge` for their namesakes — all *before* reading a
    potentially attacker-sized payload.
    """
    header = _read_exact(stream, HEADER.size, "header")
    magic, version, msg_type, _flags, length = HEADER.unpack(header)
    if magic != MAGIC:
        raise ProtocolError(f"bad frame magic {magic!r}")
    if version != PROTOCOL_VERSION:
        raise VersionMismatch(version)
    if length > max_payload:
        raise FrameTooLarge(
            f"declared payload of {length} bytes exceeds limit {max_payload}"
        )
    try:
        mtype = MessageType(msg_type)
    except ValueError:
        raise ProtocolError(f"unknown message type {msg_type}") from None
    payload = _read_exact(stream, length, "payload") if length else b""
    return mtype, payload


# -- message (frame + JSON body) I/O ------------------------------------------


def write_message(
    stream: BinaryIO, msg_type: int, body: dict, version: int = PROTOCOL_VERSION
) -> int:
    """Serialize ``body`` as JSON and send it as one frame."""
    payload = json.dumps(body, separators=(",", ":")).encode("utf-8")
    return write_frame(stream, msg_type, payload, version)


def parse_body(mtype: MessageType, payload: bytes) -> dict:
    """Decode a frame payload as a JSON object (empty payload = ``{}``)."""
    if not payload:
        return {}
    try:
        body = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"malformed {mtype.name} payload: {exc}") from exc
    if not isinstance(body, dict):
        raise ProtocolError(
            f"{mtype.name} payload must be a JSON object, got {type(body).__name__}"
        )
    return body


def read_message(
    stream: BinaryIO, max_payload: int = MAX_PAYLOAD
) -> tuple[MessageType, dict]:
    """Read one frame and decode its JSON body (must be an object)."""
    mtype, payload = read_frame(stream, max_payload)
    return mtype, parse_body(mtype, payload)


# -- typed payload encoding ----------------------------------------------------


def _variant_to_wire(v: Variant) -> list:
    return [v.type.value, v.value]


def _variant_from_wire(pair: object) -> Variant:
    if (
        not isinstance(pair, (list, tuple))
        or len(pair) != 2
        or not isinstance(pair[0], str)
    ):
        raise ProtocolError(f"malformed wire variant {pair!r}")
    type_name, raw = pair
    try:
        return Variant(ValueType.from_name(type_name), raw)
    except ReproError as exc:
        raise ProtocolError(f"malformed wire variant {pair!r}: {exc}") from exc


def records_to_wire(records: Iterable[Record]) -> list:
    """Encode records as JSON-able, type-preserving objects."""
    return [
        {label: _variant_to_wire(value) for label, value in record.items()}
        for record in records
    ]


def records_from_wire(obj: object) -> list[Record]:
    """Decode :func:`records_to_wire` output back into records."""
    if not isinstance(obj, list):
        raise ProtocolError(f"record batch must be a list, got {type(obj).__name__}")
    out: list[Record] = []
    for item in obj:
        if not isinstance(item, dict):
            raise ProtocolError(f"wire record must be an object, got {item!r}")
        out.append(
            Record.from_variants(
                {str(label): _variant_from_wire(pair) for label, pair in item.items()}
            )
        )
    return out


def _cell_to_wire(cell: object) -> object:
    if isinstance(cell, Variant):
        return {"__v": _variant_to_wire(cell)}
    if isinstance(cell, list):
        return [_cell_to_wire(c) for c in cell]
    return cell  # number / bool / str / None — JSON-native


def _cell_from_wire(cell: object) -> object:
    if isinstance(cell, dict):
        if set(cell) != {"__v"}:
            raise ProtocolError(f"malformed state cell {cell!r}")
        return _variant_from_wire(cell["__v"])
    if isinstance(cell, list):
        return [_cell_from_wire(c) for c in cell]
    return cell


def states_to_wire(
    states: Sequence[tuple[dict[str, Variant], list[list]]],
) -> list:
    """Encode :meth:`AggregationDB.export_states` output for the wire."""
    return [
        [
            {label: _variant_to_wire(v) for label, v in entries.items()},
            [[_cell_to_wire(c) for c in cells] for cells in op_states],
        ]
        for entries, op_states in states
    ]


def states_from_wire(obj: object) -> list[tuple[dict[str, Variant], list[list]]]:
    """Decode :func:`states_to_wire` output for :meth:`AggregationDB.load_states`."""
    if not isinstance(obj, list):
        raise ProtocolError(f"state batch must be a list, got {type(obj).__name__}")
    out = []
    for item in obj:
        if not isinstance(item, (list, tuple)) or len(item) != 2:
            raise ProtocolError(f"wire state group must be a pair, got {item!r}")
        entries_obj, op_states = item
        if not isinstance(entries_obj, dict) or not isinstance(op_states, list):
            raise ProtocolError(f"malformed wire state group {item!r}")
        entries = {
            str(label): _variant_from_wire(pair) for label, pair in entries_obj.items()
        }
        cells = []
        for op_state in op_states:
            if not isinstance(op_state, list):
                raise ProtocolError(f"malformed operator state {op_state!r}")
            cells.append([_cell_from_wire(c) for c in op_state])
        out.append((entries, cells))
    return out


def origin_from_wire(pair: object) -> tuple[str, str]:
    """Decode an ``[id, epoch]`` origin pair from FORWARD/RETRACT payloads.

    An *origin* names one aggregation-server incarnation in a reduction
    tree: the stable relay id plus the random epoch drawn at start.  The
    pair identifies whose partial aggregates a forwarded delta carries, so
    a parent can retract exactly one dead subtree's contribution.
    """
    if (
        not isinstance(pair, (list, tuple))
        or len(pair) != 2
        or not all(isinstance(part, str) and part for part in pair)
    ):
        raise ProtocolError(f"malformed origin {pair!r} (expected [id, epoch])")
    return (pair[0], pair[1])


def origins_from_wire(obj: object) -> list[tuple[str, str]]:
    """Decode a RETRACT payload's origin list."""
    if not isinstance(obj, list):
        raise ProtocolError(f"origin list must be a list, got {type(obj).__name__}")
    return [origin_from_wire(item) for item in obj]


def error_body(reason: str, code: str = "protocol") -> dict:
    """Standard ERROR frame body."""
    return {"code": code, "reason": reason}


def require(body: dict, key: str, types: tuple = (object,)) -> object:
    """Fetch a required message field, raising :class:`ProtocolError` if absent."""
    if key not in body:
        raise ProtocolError(f"message is missing required field {key!r}")
    value = body[key]
    if types != (object,) and not isinstance(value, types):
        raise ProtocolError(
            f"message field {key!r} has type {type(value).__name__}, "
            f"expected {'/'.join(t.__name__ for t in types)}"
        )
    return value


def optional(body: dict, key: str, default: Optional[object] = None) -> object:
    return body.get(key, default)
