"""The wire protocol: length-prefixed, versioned binary frames.

Every message travelling between :class:`~repro.net.client.FlushClient`
and :class:`~repro.net.server.AggregationServer` is one *frame*::

    offset  size  field
    0       4     magic  b"RAGG"
    4       1     protocol version (currently 1)
    5       1     message type (MessageType)
    6       2     flags (reserved, 0)
    8       4     payload length N (big-endian unsigned)
    12      N     payload (UTF-8 JSON)

The framing layer is deliberately binary and fixed — a reader can always
resynchronize trust boundaries from the magic and knows the exact byte
count to expect — while payloads are JSON so they stay debuggable and
need no third-party serializer.  Pickle is never used on the wire: the
server must survive arbitrary hostile bytes, and unpickling is code
execution.

Typed payload helpers round-trip the framework's data through plain JSON:

* records — ``{label: [type_name, raw_value]}`` per record, preserving
  :class:`~repro.common.variant.Variant` types exactly;
* exported partial-DB states — ``[key entries, state cells]`` pairs where
  cells are numbers, ``null``, nested lists, or tagged variants
  (``{"__v": [type, value]}`` — :class:`FirstOp` keeps a Variant cell).

Failure behaviour is part of the contract: a frame with a bad magic, an
unknown version, or an oversized declared length raises a specific
:class:`ProtocolError` subclass *before* any payload is read, so a server
can reject garbage cheaply and keep the listening socket healthy.
"""

from __future__ import annotations

import enum
import json
import struct
import zlib
from typing import BinaryIO, Iterable, Optional, Sequence, Union

from ..common.errors import ReproError
from ..common.record import Record
from ..common.variant import ValueType, Variant

__all__ = [
    "MAGIC",
    "PROTOCOL_VERSION",
    "MAX_PAYLOAD",
    "MAX_DECODED",
    "HEADER",
    "FLAG_BINARY",
    "CAP_BINARY",
    "MessageType",
    "ProtocolError",
    "Truncated",
    "FrameTooLarge",
    "VersionMismatch",
    "parse_frame_header",
    "write_frame",
    "read_frame",
    "read_frame_ex",
    "write_message",
    "message_bytes",
    "read_message",
    "parse_body",
    "busy_body",
    "records_to_wire",
    "records_from_wire",
    "states_to_wire",
    "states_from_wire",
    "encode_binary_body",
    "decode_binary_body",
    "records_to_binary",
    "records_from_binary",
    "states_to_binary",
    "states_from_binary",
]

MAGIC = b"RAGG"
PROTOCOL_VERSION = 1

#: default upper bound on a frame payload (refuse anything larger)
MAX_PAYLOAD = 16 * 1024 * 1024

#: default upper bound on the *decoded* size of a binary payload — the
#: envelope may be zlib-compressed, so the frame length alone does not bound
#: what decoding would allocate; this does
MAX_DECODED = 4 * MAX_PAYLOAD

HEADER = struct.Struct(">4sBBHI")

#: frame flag: the payload is a binary envelope (:func:`encode_binary_body`)
#: rather than UTF-8 JSON.  Only sent to peers that advertised CAP_BINARY.
FLAG_BINARY = 0x0001

#: HELLO/HELLO_ACK capability token for the binary columnar payload encoding
CAP_BINARY = "colbin1"


class ProtocolError(ReproError):
    """Malformed or unacceptable wire data."""


class Truncated(ProtocolError):
    """The peer closed the connection mid-frame."""


class FrameTooLarge(ProtocolError):
    """Declared payload length exceeds the receiver's limit."""


class VersionMismatch(ProtocolError):
    """Frame carries an unsupported protocol version."""

    def __init__(self, got: int) -> None:
        super().__init__(
            f"unsupported protocol version {got} (speaking {PROTOCOL_VERSION})"
        )
        self.got = got


class MessageType(enum.IntEnum):
    """Frame type tags (one byte on the wire)."""

    HELLO = 1  # client handshake: version, client id, scheme text
    HELLO_ACK = 2  # server accepts: epoch id, shard count
    RECORDS = 3  # batch of snapshot records (seq-numbered)
    STATES = 4  # exported partial-DB states (seq-numbered)
    ACK = 5  # server confirms a seq-numbered batch
    QUERY = 6  # CalQL text to run against the merged live state
    RESULT = 7  # record set reply (query / drain / stats)
    STATS = 8  # request server telemetry records
    ERROR = 9  # refusal; payload carries a reason
    DRAIN = 10  # flush request: merged results of everything ingested
    BYE = 11  # orderly goodbye
    FORWARD = 12  # relay -> parent: partial-DB delta tagged with origin + level
    RETRACT = 13  # relay -> parent: drop previously forwarded origins (failover)
    BUSY = 14  # admission control: batch NOT folded, retry after `retry_after` s


# -- frame I/O ----------------------------------------------------------------


def parse_frame_header(
    header: bytes, max_payload: int = MAX_PAYLOAD
) -> tuple[MessageType, int, int]:
    """Validate a frame header; returns ``(message type, flags, payload length)``.

    All rejection happens here, before any payload byte is read, so both the
    blocking and the asyncio read paths refuse garbage from the exact same
    checks: bad magic, unknown version or message type, oversized length.
    """
    magic, version, msg_type, flags, length = HEADER.unpack(header)
    if magic != MAGIC:
        raise ProtocolError(f"bad frame magic {magic!r}")
    if version != PROTOCOL_VERSION:
        raise VersionMismatch(version)
    if length > max_payload:
        raise FrameTooLarge(
            f"declared payload of {length} bytes exceeds limit {max_payload}"
        )
    try:
        mtype = MessageType(msg_type)
    except ValueError:
        raise ProtocolError(f"unknown message type {msg_type}") from None
    return mtype, flags, length


def write_frame(
    stream: BinaryIO,
    msg_type: int,
    payload: bytes,
    version: int = PROTOCOL_VERSION,
    flags: int = 0,
) -> int:
    """Write one frame; returns the number of bytes written."""
    data = HEADER.pack(MAGIC, version, int(msg_type), flags, len(payload)) + payload
    stream.write(data)
    stream.flush()
    return len(data)


def _read_exact(stream: BinaryIO, n: int, context: str) -> bytes:
    buf = b""
    while len(buf) < n:
        chunk = stream.read(n - len(buf))
        if not chunk:
            raise Truncated(
                f"connection closed mid-{context} ({len(buf)}/{n} bytes read)"
            )
        buf += chunk
    return buf


def read_frame_ex(
    stream: BinaryIO, max_payload: int = MAX_PAYLOAD
) -> tuple[MessageType, int, bytes]:
    """Read one frame; returns ``(message type, flags, payload bytes)``.

    Raises :class:`Truncated` on a short read, :class:`ProtocolError` on a
    bad magic or unknown message type, :class:`VersionMismatch` /
    :class:`FrameTooLarge` for their namesakes — all *before* reading a
    potentially attacker-sized payload.
    """
    header = _read_exact(stream, HEADER.size, "header")
    mtype, flags, length = parse_frame_header(header, max_payload)
    payload = _read_exact(stream, length, "payload") if length else b""
    return mtype, flags, payload


def read_frame(
    stream: BinaryIO, max_payload: int = MAX_PAYLOAD
) -> tuple[MessageType, bytes]:
    """Read one frame; returns ``(message type, payload bytes)``.

    Flag-blind variant of :func:`read_frame_ex` for peers that only ever
    speak JSON payloads (all responses, and pre-binary clients).
    """
    mtype, _flags, payload = read_frame_ex(stream, max_payload)
    return mtype, payload


# -- message (frame + JSON body) I/O ------------------------------------------


def write_message(
    stream: BinaryIO, msg_type: int, body: dict, version: int = PROTOCOL_VERSION
) -> int:
    """Serialize ``body`` as JSON and send it as one frame."""
    payload = json.dumps(body, separators=(",", ":")).encode("utf-8")
    return write_frame(stream, msg_type, payload, version)


def message_bytes(
    msg_type: int, body: dict, version: int = PROTOCOL_VERSION
) -> bytes:
    """One JSON-bodied frame as bytes (for writers without a flush; asyncio)."""
    payload = json.dumps(body, separators=(",", ":")).encode("utf-8")
    return HEADER.pack(MAGIC, version, int(msg_type), 0, len(payload)) + payload


def parse_body(mtype: MessageType, payload: bytes) -> dict:
    """Decode a frame payload as a JSON object (empty payload = ``{}``)."""
    if not payload:
        return {}
    try:
        body = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"malformed {mtype.name} payload: {exc}") from exc
    if not isinstance(body, dict):
        raise ProtocolError(
            f"{mtype.name} payload must be a JSON object, got {type(body).__name__}"
        )
    return body


def read_message(
    stream: BinaryIO, max_payload: int = MAX_PAYLOAD
) -> tuple[MessageType, dict]:
    """Read one frame and decode its JSON body (must be an object)."""
    mtype, payload = read_frame(stream, max_payload)
    return mtype, parse_body(mtype, payload)


# -- typed payload encoding ----------------------------------------------------


def _variant_to_wire(v: Variant) -> list:
    return [v.type.value, v.value]


def _variant_from_wire(pair: object) -> Variant:
    if (
        not isinstance(pair, (list, tuple))
        or len(pair) != 2
        or not isinstance(pair[0], str)
    ):
        raise ProtocolError(f"malformed wire variant {pair!r}")
    type_name, raw = pair
    try:
        return Variant(ValueType.from_name(type_name), raw)
    except ReproError as exc:
        raise ProtocolError(f"malformed wire variant {pair!r}: {exc}") from exc


def records_to_wire(records: Iterable[Record]) -> list:
    """Encode records as JSON-able, type-preserving objects."""
    return [
        {label: _variant_to_wire(value) for label, value in record.items()}
        for record in records
    ]


def records_from_wire(obj: object) -> list[Record]:
    """Decode :func:`records_to_wire` output back into records."""
    if not isinstance(obj, list):
        raise ProtocolError(f"record batch must be a list, got {type(obj).__name__}")
    out: list[Record] = []
    for item in obj:
        if not isinstance(item, dict):
            raise ProtocolError(f"wire record must be an object, got {item!r}")
        out.append(
            Record.from_variants(
                {str(label): _variant_from_wire(pair) for label, pair in item.items()}
            )
        )
    return out


def _cell_to_wire(cell: object) -> object:
    if isinstance(cell, Variant):
        return {"__v": _variant_to_wire(cell)}
    if isinstance(cell, list):
        return [_cell_to_wire(c) for c in cell]
    return cell  # number / bool / str / None — JSON-native


def _cell_from_wire(cell: object) -> object:
    if isinstance(cell, dict):
        if set(cell) != {"__v"}:
            raise ProtocolError(f"malformed state cell {cell!r}")
        return _variant_from_wire(cell["__v"])
    if isinstance(cell, list):
        return [_cell_from_wire(c) for c in cell]
    return cell


def states_to_wire(
    states: Sequence[tuple[dict[str, Variant], list[list]]],
) -> list:
    """Encode :meth:`AggregationDB.export_states` output for the wire."""
    return [
        [
            {label: _variant_to_wire(v) for label, v in entries.items()},
            [[_cell_to_wire(c) for c in cells] for cells in op_states],
        ]
        for entries, op_states in states
    ]


def states_from_wire(obj: object) -> list[tuple[dict[str, Variant], list[list]]]:
    """Decode :func:`states_to_wire` output for :meth:`AggregationDB.load_states`."""
    if not isinstance(obj, list):
        raise ProtocolError(f"state batch must be a list, got {type(obj).__name__}")
    out = []
    for item in obj:
        if not isinstance(item, (list, tuple)) or len(item) != 2:
            raise ProtocolError(f"wire state group must be a pair, got {item!r}")
        entries_obj, op_states = item
        if not isinstance(entries_obj, dict) or not isinstance(op_states, list):
            raise ProtocolError(f"malformed wire state group {item!r}")
        entries = {
            str(label): _variant_from_wire(pair) for label, pair in entries_obj.items()
        }
        cells = []
        for op_state in op_states:
            if not isinstance(op_state, list):
                raise ProtocolError(f"malformed operator state {op_state!r}")
            cells.append([_cell_from_wire(c) for c in op_state])
        out.append((entries, cells))
    return out


def origin_from_wire(pair: object) -> tuple[str, str]:
    """Decode an ``[id, epoch]`` origin pair from FORWARD/RETRACT payloads.

    An *origin* names one aggregation-server incarnation in a reduction
    tree: the stable relay id plus the random epoch drawn at start.  The
    pair identifies whose partial aggregates a forwarded delta carries, so
    a parent can retract exactly one dead subtree's contribution.
    """
    if (
        not isinstance(pair, (list, tuple))
        or len(pair) != 2
        or not all(isinstance(part, str) and part for part in pair)
    ):
        raise ProtocolError(f"malformed origin {pair!r} (expected [id, epoch])")
    return (pair[0], pair[1])


def origins_from_wire(obj: object) -> list[tuple[str, str]]:
    """Decode a RETRACT payload's origin list."""
    if not isinstance(obj, list):
        raise ProtocolError(f"origin list must be a list, got {type(obj).__name__}")
    return [origin_from_wire(item) for item in obj]


def error_body(reason: str, code: str = "protocol") -> dict:
    """Standard ERROR frame body."""
    return {"code": code, "reason": reason}


def busy_body(seq: int, retry_after: float, reason: str = "backpressure") -> dict:
    """Standard BUSY frame body: batch ``seq`` was shed, come back later.

    A BUSY reply means the server did *not* fold (or dedup-mark) the batch:
    the client keeps it in its write-ahead spool and redelivers after at
    least ``retry_after`` seconds — admission control instead of blocking
    the event loop on a full shard queue.
    """
    return {"seq": seq, "retry_after": float(retry_after), "reason": reason}


def require(body: dict, key: str, types: tuple = (object,)) -> object:
    """Fetch a required message field, raising :class:`ProtocolError` if absent."""
    if key not in body:
        raise ProtocolError(f"message is missing required field {key!r}")
    value = body[key]
    if types != (object,) and not isinstance(value, types):
        raise ProtocolError(
            f"message field {key!r} has type {type(value).__name__}, "
            f"expected {'/'.join(t.__name__ for t in types)}"
        )
    return value


def optional(body: dict, key: str, default: Optional[object] = None) -> object:
    return body.get(key, default)


# -- binary payload envelope ---------------------------------------------------
#
# Frames whose header carries FLAG_BINARY wrap their payload in a small
# envelope instead of JSON::
#
#     offset  size  field
#     0       4     magic  b"RBE1"
#     4       1     codec  (0 = raw, 1 = zlib)
#     5       4     decoded (raw) length, little-endian
#     9       ...   body (possibly compressed)
#
# The decoded body is ``u32 meta_len | meta JSON | section bytes``: ``meta``
# holds the ordinary JSON message fields plus a ``sections`` table mapping
# section names to ``[offset, length]`` within the trailing bytes.  Sections
# carry the columnar blobs (record batches, operator states) produced by
# :mod:`repro.io.colfile`.  Negotiated via the CAP_BINARY capability in
# HELLO/HELLO_ACK; JSON remains the fallback for old peers, and responses
# always stay JSON.  The declared decoded length is checked against the
# receiver's ``max_decoded`` *before* decompression, so a compressed bomb
# is rejected without inflating it.

_ENVELOPE_MAGIC = b"RBE1"
_ENV_HEAD = struct.Struct("<4sBI")
_U32LE = struct.Struct("<I")
_CODEC_RAW, _CODEC_ZLIB = 0, 1

#: compress envelopes above this size when it actually shrinks them
_COMPRESS_THRESHOLD = 512


def encode_binary_body(
    body: dict, sections: dict[str, bytes], compress: bool = True
) -> bytes:
    """Encode message fields + binary sections into one envelope payload."""
    table = {}
    parts = []
    pos = 0
    for name, blob in sections.items():
        pad = (-pos) % 8
        if pad:
            parts.append(b"\x00" * pad)
            pos += pad
        table[name] = [pos, len(blob)]
        parts.append(blob)
        pos += len(blob)
    meta = json.dumps(
        {"body": body, "sections": table}, separators=(",", ":")
    ).encode("utf-8")
    inner = _U32LE.pack(len(meta)) + meta + b"".join(parts)
    codec = _CODEC_RAW
    out = inner
    if compress and len(inner) >= _COMPRESS_THRESHOLD:
        packed = zlib.compress(inner, 1)
        if len(packed) < len(inner):
            codec, out = _CODEC_ZLIB, packed
    return _ENV_HEAD.pack(_ENVELOPE_MAGIC, codec, len(inner)) + out


def decode_binary_body(
    payload: Union[bytes, memoryview], max_decoded: int = MAX_DECODED
) -> tuple[dict, dict[str, memoryview]]:
    """Decode :func:`encode_binary_body` output.

    Returns ``(body fields, sections)`` where sections are bounds-checked
    memoryviews into the decoded bytes.  The declared decoded size is
    capped by ``max_decoded`` *before* any decompression happens — the
    binary-payload counterpart of ``max_payload`` on the frame itself.
    """
    mv = memoryview(payload)
    if len(mv) < _ENV_HEAD.size:
        raise ProtocolError("truncated binary envelope")
    magic, codec, raw_len = _ENV_HEAD.unpack(bytes(mv[: _ENV_HEAD.size]))
    if magic != _ENVELOPE_MAGIC:
        raise ProtocolError(f"bad binary envelope magic {magic!r}")
    if raw_len > max_decoded:
        raise FrameTooLarge(
            f"binary payload decodes to {raw_len} bytes, exceeding limit {max_decoded}"
        )
    data = mv[_ENV_HEAD.size :]
    if codec == _CODEC_ZLIB:
        try:
            # max_length stops a lying header from inflating past its claim
            inflater = zlib.decompressobj()
            raw = inflater.decompress(bytes(data), raw_len + 1)
        except zlib.error as exc:
            raise ProtocolError(f"bad compressed payload: {exc}") from None
        if len(raw) != raw_len or inflater.unconsumed_tail:
            raise ProtocolError("compressed payload does not match declared size")
        inner = memoryview(raw)
    elif codec == _CODEC_RAW:
        if len(data) != raw_len:
            raise ProtocolError("binary payload does not match declared size")
        inner = data
    else:
        raise ProtocolError(f"unknown binary payload codec {codec}")
    if len(inner) < 4:
        raise ProtocolError("truncated binary envelope body")
    meta_len = _U32LE.unpack(bytes(inner[:4]))[0]
    if 4 + meta_len > len(inner):
        raise ProtocolError("binary envelope metadata exceeds payload")
    try:
        meta = json.loads(bytes(inner[4 : 4 + meta_len]).decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"bad binary envelope metadata: {exc}") from None
    if not isinstance(meta, dict) or not isinstance(meta.get("body"), dict):
        raise ProtocolError("binary envelope metadata must carry a body object")
    table = meta.get("sections", {})
    if not isinstance(table, dict):
        raise ProtocolError("binary envelope section table must be an object")
    blob = inner[4 + meta_len :]
    sections: dict[str, memoryview] = {}
    for name, span in table.items():
        if (
            not isinstance(span, (list, tuple))
            or len(span) != 2
            or not all(isinstance(x, int) and x >= 0 for x in span)
            or span[0] + span[1] > len(blob)
        ):
            raise ProtocolError(f"bad binary envelope section {name!r}")
        sections[str(name)] = blob[span[0] : span[0] + span[1]]
    return meta["body"], sections


def _decode_limits(max_decoded: int):
    from ..io.colfile import DecodeLimits  # deferred: io does not import net

    return DecodeLimits.for_decoded_size(max_decoded)


def records_to_binary(records: Iterable[Record]) -> bytes:
    """Encode a record batch as a columnar blob (a ``records`` section)."""
    from ..io.colfile import encode_batch

    records = records if isinstance(records, (list, tuple)) else list(records)
    return encode_batch(records)


def records_from_binary(
    blob: Union[bytes, memoryview], max_decoded: int = MAX_DECODED
) -> list[Record]:
    """Decode a binary record batch, mapping codec errors to protocol errors."""
    from ..common.errors import DatasetError
    from ..io.colfile import decode_batch_store

    try:
        return decode_batch_store(blob, _decode_limits(max_decoded)).records
    except DatasetError as exc:
        raise ProtocolError(f"malformed binary record batch: {exc}") from None


def states_to_binary(
    states: Sequence[tuple[dict[str, Variant], list[list]]],
) -> bytes:
    """Encode exported partial-DB states as a columnar blob."""
    from ..io import colfile

    return colfile.states_to_binary(states)


def states_from_binary(
    blob: Union[bytes, memoryview], max_decoded: int = MAX_DECODED
) -> list[tuple[dict[str, Variant], list[list]]]:
    """Decode a binary state batch, mapping codec errors to protocol errors."""
    from ..common.errors import DatasetError
    from ..io import colfile

    try:
        return colfile.states_from_binary(blob, _decode_limits(max_decoded))
    except DatasetError as exc:
        raise ProtocolError(f"malformed binary state batch: {exc}") from None
