"""``repro-query check`` and ``repro-query store``: the regression-gate CLI.

``store save`` aggregates a dataset with a CalQL query and persists the
result into a profile store with captured run metadata; ``store list``
shows what the store holds; ``store tag`` names a profile (e.g. as an
explicit baseline); ``store show`` prints one stored profile.

``check`` compares a head profile against a baseline and exits non-zero on
confirmed degradation — the CI gate.  Inputs are either two profile files
(``.rcf``/``.cali``/``.json``/``.csv``), or a store + workload (the
baseline then resolves by nearest ancestor commit or ``--baseline`` tag,
and the head defaults to the newest profile for the current commit).

Examples::

    repro-query store save --store .profiles --workload app.kernels \\
        -q "AGGREGATE sum(time.duration) GROUP BY kernel" run-*.cali

    repro-query store list --store .profiles --workload app.kernels

    repro-query check baseline.rcf head.rcf --threshold 0.1 --json -

    repro-query check --store .profiles --workload app.kernels \\
        --json verdict.json
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Optional, Sequence

from ..common.errors import ReproError
from .check import check_profiles
from .profiles import ProfileStore, StoreError

__all__ = ["check_main", "store_main"]


def _load_profile_file(path: str):
    """A record-file profile as ``(QueryResult, info-dict)``."""
    from ..io.dataset import read_records
    from ..query.engine import QueryResult

    records, globals_ = read_records(path)
    columns_v = globals_.get("profile.columns")
    columns = json.loads(columns_v.to_string()) if columns_v else []
    info = {
        "path": path,
        "commit": globals_["run.commit"].to_string() if "run.commit" in globals_ else None,
    }
    return QueryResult(records, columns, "table"), info


def _entry_info(entry) -> dict:
    return {
        "profile_id": entry.profile_id,
        "commit": entry.commit,
        "config_hash": entry.config_hash,
        "timestamp": entry.timestamp,
        "tags": list(entry.tags),
    }


# -- repro-query check ----------------------------------------------------------


def build_check_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-query check",
        description="Compare a head profile against a baseline and report "
        "per-group Degradation/Optimization/NoChange verdicts.",
    )
    parser.add_argument(
        "profiles",
        nargs="*",
        metavar="PROFILE",
        help="explicit BASELINE and HEAD profile files (omit to resolve "
        "both through --store/--workload)",
    )
    parser.add_argument("--store", help="profile store directory")
    parser.add_argument("--workload", help="workload name to check")
    parser.add_argument(
        "--baseline",
        help="baseline override: a tag or profile-id prefix in the store "
        "(default: nearest ancestor commit)",
    )
    parser.add_argument(
        "--head",
        help="head override: a tag or profile-id prefix in the store "
        "(default: newest profile for the workload)",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.05,
        help="relative change that counts as a regression (default 0.05)",
    )
    parser.add_argument(
        "--alpha",
        type=float,
        default=0.05,
        help="rank-test significance level (default 0.05)",
    )
    parser.add_argument(
        "--min-samples",
        type=int,
        default=5,
        help="per-group samples (both sides) required for the rank test "
        "(default 5; smaller groups use the relative-change test)",
    )
    parser.add_argument(
        "--key", help="comma-separated aggregation key labels (default: inferred)"
    )
    parser.add_argument(
        "--metrics",
        help="comma-separated metric labels to compare (default: inferred)",
    )
    parser.add_argument(
        "-x",
        "--context",
        dest="context",
        help="numeric context attribute for best-fit-model comparison",
    )
    parser.add_argument(
        "--larger-is-better",
        action="store_true",
        help="treat metric increases as improvements (throughput metrics)",
    )
    parser.add_argument(
        "--json",
        metavar="PATH",
        help="write the machine-readable verdict JSON to PATH ('-' = stdout)",
    )
    parser.add_argument(
        "--verbose",
        action="store_true",
        help="also print NoChange findings",
    )
    parser.add_argument(
        "--warn-only",
        action="store_true",
        help="always exit 0 (report-only mode for non-gating CI steps)",
    )
    return parser


def check_main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_check_parser()
    args = parser.parse_args(list(argv or []))
    try:
        base, head, base_info, head_info, workload = _resolve_check_inputs(
            args, parser
        )
        report = check_profiles(
            base,
            head,
            key=args.key.split(",") if args.key else None,
            metrics=args.metrics.split(",") if args.metrics else None,
            threshold=args.threshold,
            alpha=args.alpha,
            min_samples=args.min_samples,
            x=args.context,
            smaller_is_better=not args.larger_is_better,
            workload=workload,
        )
        report.base_info = base_info
        report.head_info = head_info
    except ReproError as exc:
        print(f"repro-query check: error: {exc}", file=sys.stderr)
        return 2
    except OSError as exc:
        print(f"repro-query check: error: {exc}", file=sys.stderr)
        return 2

    print(report.summary(verbose=args.verbose))
    if args.json:
        text = json.dumps(report.to_json(), indent=2)
        if args.json == "-":
            print(text)
        else:
            with open(args.json, "w", encoding="utf-8") as stream:
                stream.write(text + "\n")
    if args.warn_only:
        return 0
    return report.exit_code()


def _resolve_check_inputs(args, parser):
    if args.profiles and len(args.profiles) == 2:
        base, base_info = _load_profile_file(args.profiles[0])
        head, head_info = _load_profile_file(args.profiles[1])
        return base, head, base_info, head_info, args.workload
    if args.profiles:
        parser.error(
            "expected exactly two profile files (BASELINE HEAD), or none "
            "with --store/--workload"
        )
    if not (args.store and args.workload):
        parser.error(
            "give two profile files, or --store DIR --workload NAME"
        )
    store = ProfileStore(args.store)
    if args.head:
        head_entry = store.get(args.head)
    else:
        candidates = store.lookup(workload=args.workload)
        if not candidates:
            raise StoreError(
                f"store has no profiles for workload {args.workload!r}"
            )
        head_entry = candidates[0]
    if args.baseline:
        base_entry = store.baseline(args.workload, tag=args.baseline)
        if base_entry is None or base_entry.profile_id == head_entry.profile_id:
            base_entry = store.get(args.baseline)
    else:
        base_entry = store.baseline(
            args.workload,
            commit=head_entry.commit,
            exclude=(head_entry.profile_id,),
        )
    if base_entry is None:
        raise StoreError(
            f"no baseline found for workload {args.workload!r} "
            f"(head commit {head_entry.commit or 'unknown'}); save one "
            "first or tag one with 'repro-query store tag'"
        )
    return (
        store.load(base_entry.profile_id),
        store.load(head_entry.profile_id),
        _entry_info(base_entry),
        _entry_info(head_entry),
        args.workload,
    )


# -- repro-query store ----------------------------------------------------------


def build_store_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-query store",
        description="Manage the versioned profile store.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    save = sub.add_parser(
        "save", help="aggregate input files and save the profile"
    )
    save.add_argument("files", nargs="+", help="input record files")
    save.add_argument("--store", required=True, help="profile store directory")
    save.add_argument("--workload", required=True, help="workload name")
    save.add_argument(
        "-q", "--query", required=True, help="CalQL aggregation query"
    )
    save.add_argument("--tag", help="also tag the saved profile")
    save.add_argument(
        "--commit", help="override the recorded commit (default: git HEAD)"
    )
    save.add_argument(
        "--timestamp", type=float, help="run timestamp (epoch seconds)"
    )
    save.add_argument(
        "--meta",
        action="append",
        default=[],
        metavar="K=V",
        help="extra metadata entries (repeatable)",
    )

    lst = sub.add_parser("list", help="list stored profiles")
    lst.add_argument("--store", required=True, help="profile store directory")
    lst.add_argument("--workload", help="only this workload")
    lst.add_argument("--commit", help="only this commit")
    lst.add_argument(
        "--json", action="store_true", help="machine-readable output"
    )

    tag = sub.add_parser("tag", help="tag a stored profile")
    tag.add_argument("ref", help="profile id prefix or existing tag")
    tag.add_argument("name", help="tag name to attach")
    tag.add_argument("--store", required=True, help="profile store directory")

    show = sub.add_parser("show", help="print one stored profile")
    show.add_argument("ref", help="profile id prefix or tag")
    show.add_argument("--store", required=True, help="profile store directory")

    hist = sub.add_parser(
        "history",
        help="emit every stored profile's rows as one per-commit record "
        "series (CalQL-queryable via -q)",
    )
    hist.add_argument("--store", required=True, help="profile store directory")
    hist.add_argument("--workload", help="only this workload")
    hist.add_argument("--commit", help="only this commit")
    hist.add_argument(
        "-q",
        "--query",
        help="CalQL query over the history records (they carry "
        "history.workload/commit/timestamp/seq/profile attributes)",
    )
    hist.add_argument(
        "--json", action="store_true", help="machine-readable output"
    )
    return parser


def store_main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_store_parser()
    args = parser.parse_args(list(argv or []))
    try:
        return _run_store(args)
    except ReproError as exc:
        print(f"repro-query store: error: {exc}", file=sys.stderr)
        return 2
    except OSError as exc:
        print(f"repro-query store: error: {exc}", file=sys.stderr)
        return 2


def _run_store(args) -> int:
    store = ProfileStore(args.store)
    if args.command == "save":
        from ..io.dataset import Dataset

        meta = {}
        for item in args.meta:
            k, sep, v = item.partition("=")
            if not sep:
                raise StoreError(f"--meta wants K=V, got {item!r}")
            meta[k] = v
        dataset = Dataset.from_files(args.files)
        result = dataset.query(args.query)
        entry = store.save(
            result,
            workload=args.workload,
            commit=args.commit,
            timestamp=args.timestamp,
            meta=meta,
            tag=args.tag,
        )
        print(
            f"saved {entry.profile_id[:12]} workload={entry.workload} "
            f"commit={(entry.commit or '-')[:12]} rows={entry.rows}"
        )
        return 0
    if args.command == "list":
        entries = store.lookup(workload=args.workload, commit=args.commit)
        if args.json:
            print(
                json.dumps(
                    [dict(_entry_info(e), workload=e.workload, rows=e.rows,
                          meta=e.meta) for e in entries],
                    indent=2,
                )
            )
        else:
            for entry in entries:
                print(entry.describe())
            if not entries:
                print("(store is empty for this filter)", file=sys.stderr)
        return 0
    if args.command == "tag":
        store.tag(args.ref, args.name)
        print(f"tagged {store.resolve(args.ref)[:12]} as {args.name!r}")
        return 0
    if args.command == "show":
        result = store.load(args.ref)
        print(str(result))
        return 0
    if args.command == "history":
        return _run_history(store, args)
    raise StoreError(f"unknown store command {args.command!r}")


def _run_history(store: ProfileStore, args) -> int:
    """``store history``: the whole store as one record series.

    Every stored profile's aggregate rows are re-emitted with
    ``history.*`` provenance attributes (workload, commit, timestamp, and
    a chronological per-workload sequence number), so cross-commit trends
    become ordinary CalQL — e.g.::

        repro-query store history --store .profiles --workload app \\
            -q "AGGREGATE sum(time.duration) GROUP BY history.commit \\
                ORDER BY history.seq"
    """
    from ..common.variant import Variant

    entries = store.lookup(workload=args.workload, commit=args.commit)
    # Chronological within each workload — the opposite of lookup()'s
    # newest-first — so history.seq counts forward in time.
    entries.sort(
        key=lambda e: (
            e.workload or "",
            e.timestamp is None,
            e.timestamp or 0.0,
            e.commit or "",
            e.profile_id,
        )
    )
    records = []
    seqs: dict[str, int] = {}
    for entry in entries:
        seq = seqs.get(entry.workload, 0)
        seqs[entry.workload] = seq + 1
        extra = {
            "history.workload": Variant.of(entry.workload),
            "history.seq": Variant.of(seq),
            "history.profile": Variant.of(entry.profile_id[:12]),
        }
        if entry.commit:
            extra["history.commit"] = Variant.of(entry.commit)
        if entry.timestamp is not None:
            extra["history.timestamp"] = Variant.of(entry.timestamp)
        for record in store.load(entry.profile_id).records:
            records.append(record.with_entries(extra))
    if args.query:
        from ..query.engine import QueryEngine

        result = QueryEngine(args.query).run(records)
        if args.json:
            print(result.to_json())
        else:
            print(str(result))
        return 0
    if args.json:
        print(
            json.dumps(
                [{k: v.value for k, v in r.items()} for r in records], indent=2
            )
        )
    else:
        from ..query.engine import QueryResult

        print(str(QueryResult(records, [], "records")))
        if not records:
            print("(store is empty for this filter)", file=sys.stderr)
    return 0
