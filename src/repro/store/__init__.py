"""repro.store — the versioned profile store and regression toolkit.

Three layers turn one-off aggregation results into a monitored performance
trajectory:

* :mod:`.profiles` — :class:`ProfileStore`: content-addressed ``.rcf``
  persistence of aggregated profiles keyed by ``(git commit, config hash,
  workload)``, with run-metadata capture and nearest-ancestor-commit
  baseline resolution;
* :mod:`.postprocess` — statistical models over profiles (moving average,
  regressogram, linear/log regression, clusterizer), emitted as
  CalQL-queryable ``observe.model.*`` records;
* :mod:`.check` — per-aggregation-key degradation detection between a head
  and a baseline profile (Mann–Whitney rank test + relative-change +
  best-fit-model comparison), surfaced as ``repro-query check`` with a CI
  exit code.

See ``docs/regression.md`` for the workflow.
"""

from .check import CheckReport, Finding, check_profiles, infer_columns, rank_sum_test
from .postprocess import (
    ModelFit,
    best_model,
    clusterize,
    fit_models,
    moving_average,
    regressogram,
)
from .profiles import ProfileEntry, ProfileStore, StoreError

__all__ = [
    "ProfileStore",
    "ProfileEntry",
    "StoreError",
    "check_profiles",
    "CheckReport",
    "Finding",
    "infer_columns",
    "rank_sum_test",
    "moving_average",
    "regressogram",
    "fit_models",
    "best_model",
    "clusterize",
    "ModelFit",
]
