"""The versioned profile store: aggregated profiles keyed by provenance.

Every run of an aggregation query produces a compact, comparable profile —
a :class:`~repro.query.engine.QueryResult` table.  Until now those were
ephemeral: benchmark JSON files to eyeball, datasets to re-query.  The
:class:`ProfileStore` makes them durable and *addressable by provenance*:

* each saved profile is written as a ``.rcf`` columnar file
  (:mod:`repro.io.colfile`) into a content-addressed directory — the file
  name is the sha256 of its bytes, so identical saves deduplicate and
  entries are tamper-evident;
* a JSON index maps profile ids to their provenance key ``(git commit,
  config hash, workload name)`` plus run metadata (dirty flag,
  python/numpy versions, cpu count, caller-supplied timestamp — see
  :func:`repro.observe.run_info`);
* :meth:`ProfileStore.baseline` answers the question every regression
  gate asks — "what should this run be compared against?" — by nearest
  ancestor commit (walking ``git rev-list`` order), or by explicit tag.

Store layout (all under one root directory)::

    <root>/index.json            id -> entry, tag -> id
    <root>/profiles/<aa>/<id>.rcf

The index is rewritten atomically (temp file + ``os.replace``), so
concurrent readers never observe a torn index.  See ``docs/regression.md``.
"""

from __future__ import annotations

import hashlib
import json
import os
import subprocess
import tempfile
from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping, Optional, Sequence, Union

from ..common.errors import ReproError
from ..common.record import Record
from ..common.variant import Variant
from ..observe.runinfo import config_fingerprint, git_state
from ..query.engine import QueryResult

__all__ = ["ProfileEntry", "ProfileStore", "StoreError"]

INDEX_VERSION = 1

#: ``.rcf`` global keys the store itself writes (stripped from run metadata)
_PROFILE_KEYS = ("profile.workload", "profile.columns", "profile.format")


class StoreError(ReproError):
    """Profile-store failures: unknown ids, ambiguous prefixes, bad index."""


@dataclass
class ProfileEntry:
    """One saved profile's index entry (provenance + run metadata)."""

    profile_id: str
    workload: str
    commit: Optional[str] = None
    config_hash: Optional[str] = None
    timestamp: Optional[float] = None
    tags: list[str] = field(default_factory=list)
    meta: dict[str, Any] = field(default_factory=dict)
    rows: int = 0

    def to_json(self) -> dict[str, Any]:
        return {
            "workload": self.workload,
            "commit": self.commit,
            "config_hash": self.config_hash,
            "timestamp": self.timestamp,
            "tags": list(self.tags),
            "meta": dict(self.meta),
            "rows": self.rows,
        }

    @classmethod
    def from_json(cls, profile_id: str, payload: Mapping[str, Any]) -> "ProfileEntry":
        return cls(
            profile_id=profile_id,
            workload=payload.get("workload", ""),
            commit=payload.get("commit"),
            config_hash=payload.get("config_hash"),
            timestamp=payload.get("timestamp"),
            tags=list(payload.get("tags", [])),
            meta=dict(payload.get("meta", {})),
            rows=int(payload.get("rows", 0)),
        )

    def describe(self) -> str:
        commit = (self.commit or "-")[:12]
        stamp = "-" if self.timestamp is None else f"{self.timestamp:.0f}"
        tags = f" [{','.join(self.tags)}]" if self.tags else ""
        return (
            f"{self.profile_id[:12]}  {self.workload:<20s}  {commit:<12s}  "
            f"{self.config_hash or '-':<12s}  {self.rows:>6d} rows  "
            f"t={stamp}{tags}"
        )


class ProfileStore:
    """Content-addressed, provenance-indexed storage for profiles."""

    def __init__(self, root: Union[str, os.PathLike]) -> None:
        self.root = os.fspath(root)
        self._index_path = os.path.join(self.root, "index.json")
        os.makedirs(os.path.join(self.root, "profiles"), exist_ok=True)

    # -- index ------------------------------------------------------------------

    def _read_index(self) -> dict[str, Any]:
        try:
            with open(self._index_path, "r", encoding="utf-8") as stream:
                index = json.load(stream)
        except FileNotFoundError:
            return {"version": INDEX_VERSION, "profiles": {}, "tags": {}}
        except (OSError, json.JSONDecodeError) as exc:
            raise StoreError(f"unreadable profile index {self._index_path}: {exc}")
        if index.get("version") != INDEX_VERSION:
            raise StoreError(
                f"profile index version {index.get('version')!r} unsupported "
                f"(expected {INDEX_VERSION})"
            )
        index.setdefault("profiles", {})
        index.setdefault("tags", {})
        return index

    def _write_index(self, index: dict[str, Any]) -> None:
        fd, tmp = tempfile.mkstemp(
            dir=self.root, prefix=".index-", suffix=".json"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as stream:
                json.dump(index, stream, indent=1, sort_keys=True)
                stream.write("\n")
            os.replace(tmp, self._index_path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def _path_of(self, profile_id: str) -> str:
        return os.path.join(
            self.root, "profiles", profile_id[:2], f"{profile_id}.rcf"
        )

    # -- save / load ------------------------------------------------------------

    def save(
        self,
        profile: Union[QueryResult, Iterable[Record]],
        workload: str,
        commit: Optional[str] = None,
        config: Optional[Mapping[str, Any]] = None,
        config_hash: Optional[str] = None,
        timestamp: Optional[float] = None,
        meta: Optional[Mapping[str, Any]] = None,
        tag: Optional[str] = None,
        capture: bool = True,
        repo: Optional[str] = None,
    ) -> ProfileEntry:
        """Persist one aggregated profile; returns its index entry.

        ``profile`` is a :class:`QueryResult` (preferred — its column order
        and format round-trip) or a plain record iterable.  Provenance:
        ``commit`` defaults to the git HEAD of ``repo``/cwd when ``capture``
        is true; ``config_hash`` defaults to a fingerprint of ``config``;
        ``timestamp`` is caller-supplied (the store never reads the clock).
        ``meta`` entries are stored verbatim in the index next to the
        captured interpreter/numpy/cpu metadata.  ``tag`` optionally tags
        the saved profile (e.g. ``"baseline"``) in the same write.
        """
        if not workload:
            raise StoreError("a profile needs a non-empty workload name")
        if isinstance(profile, QueryResult):
            records = profile.records
            columns: Sequence[str] = profile.preferred_columns
            fmt = profile.format
        else:
            records = list(profile)
            columns = ()
            fmt = "table"

        dirty: Optional[bool] = None
        captured_meta: dict[str, Any] = {}
        if capture:
            from ..observe.runinfo import run_info

            info = run_info(repo=repo, config=config)
            if commit is None:
                commit = info.get("run.commit")
            dirty = info.get("run.dirty")
            captured_meta = {
                "python": info.get("run.python"),
                "numpy": info.get("run.numpy"),
                "cpu_count": info.get("run.cpu_count"),
            }
        if config_hash is None:
            config_hash = config_fingerprint(config)
        full_meta = dict(captured_meta)
        if dirty is not None:
            full_meta["dirty"] = dirty
        if meta:
            full_meta.update(meta)

        globals_: dict[str, Variant] = {
            "profile.workload": Variant.of(workload),
            "profile.columns": Variant.of(json.dumps(list(columns))),
            "profile.format": Variant.of(fmt),
        }
        if commit is not None:
            globals_["run.commit"] = Variant.of(commit)
        if config_hash is not None:
            globals_["run.config_hash"] = Variant.of(config_hash)
        if timestamp is not None:
            globals_["run.timestamp"] = Variant.of(float(timestamp))
        for key, value in full_meta.items():
            if value is not None:
                globals_[f"run.{key}"] = Variant.of(value)

        from ..io.colfile import ColfileWriter

        fd, tmp = tempfile.mkstemp(dir=self.root, prefix=".profile-", suffix=".rcf")
        os.close(fd)
        try:
            with ColfileWriter(tmp, globals_=globals_) as writer:
                rows = writer.write_records(records)
            with open(tmp, "rb") as stream:
                profile_id = hashlib.sha256(stream.read()).hexdigest()
            final = self._path_of(profile_id)
            os.makedirs(os.path.dirname(final), exist_ok=True)
            if os.path.exists(final):
                os.unlink(tmp)
            else:
                os.replace(tmp, final)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

        entry = ProfileEntry(
            profile_id=profile_id,
            workload=workload,
            commit=commit,
            config_hash=config_hash,
            timestamp=timestamp,
            meta=full_meta,
            rows=rows,
        )
        index = self._read_index()
        existing = index["profiles"].get(profile_id)
        if existing:
            entry.tags = list(existing.get("tags", []))
        index["profiles"][profile_id] = entry.to_json()
        self._write_index(index)
        if tag:
            self.tag(profile_id, tag)
            entry.tags = sorted(set(entry.tags) | {tag})
        return entry

    def resolve(self, ref: str) -> str:
        """Full profile id for ``ref`` — an id prefix (≥ 6 chars) or a tag."""
        index = self._read_index()
        if ref in index["tags"]:
            return index["tags"][ref]
        if ref in index["profiles"]:
            return ref
        if len(ref) >= 6:
            matches = [pid for pid in index["profiles"] if pid.startswith(ref)]
            if len(matches) == 1:
                return matches[0]
            if len(matches) > 1:
                raise StoreError(f"profile ref {ref!r} is ambiguous ({len(matches)} matches)")
        raise StoreError(f"no profile matches {ref!r} (id prefix or tag)")

    def get(self, ref: str) -> ProfileEntry:
        """Index entry for a profile ref (id, id prefix, or tag)."""
        profile_id = self.resolve(ref)
        index = self._read_index()
        return ProfileEntry.from_json(profile_id, index["profiles"][profile_id])

    def load(self, ref: str) -> QueryResult:
        """Load a stored profile back as a :class:`QueryResult`.

        The result's preferred columns and FORMAT are restored from the
        ``.rcf`` globals, so ``str(load(...))`` renders exactly like the
        original result — the round-trip is lossless.
        """
        profile_id = self.resolve(ref)
        from ..io.colfile import read_colfile

        path = self._path_of(profile_id)
        try:
            records, globals_ = read_colfile(path)
        except FileNotFoundError:
            raise StoreError(
                f"profile {profile_id[:12]} is indexed but its file is missing ({path})"
            )
        columns_json = globals_.get("profile.columns")
        columns = json.loads(columns_json.to_string()) if columns_json else []
        fmt_v = globals_.get("profile.format")
        fmt = fmt_v.to_string() if fmt_v else "table"
        return QueryResult(records, columns, fmt)

    def globals_of(self, ref: str) -> dict[str, Variant]:
        """The stored ``.rcf`` globals (run metadata) of a profile."""
        from ..io.colfile import ColfileReader

        reader = ColfileReader(self._path_of(self.resolve(ref)))
        try:
            return dict(reader.globals)
        finally:
            reader.close()

    # -- lookup / tags ----------------------------------------------------------

    def entries(self) -> list[ProfileEntry]:
        """All entries, grouped by workload, newest first within each.

        The order is fully deterministic — ``(workload, timestamp desc,
        commit, profile_id)`` — so ``list`` output and baseline candidate
        ranking cannot depend on index-file insertion order.  Untimestamped
        entries sort after timestamped ones within their workload.
        """
        index = self._read_index()
        out = [
            ProfileEntry.from_json(pid, payload)
            for pid, payload in index["profiles"].items()
        ]
        out.sort(
            key=lambda e: (
                e.workload or "",
                0 if e.timestamp is not None else 1,
                -(e.timestamp or 0.0),
                e.commit or "",
                e.profile_id,
            )
        )
        return out

    def lookup(
        self,
        workload: Optional[str] = None,
        commit: Optional[str] = None,
        config_hash: Optional[str] = None,
    ) -> list[ProfileEntry]:
        """Entries matching every given provenance component, newest first."""
        return [
            e
            for e in self.entries()
            if (workload is None or e.workload == workload)
            and (commit is None or e.commit == commit)
            and (config_hash is None or e.config_hash == config_hash)
        ]

    def tag(self, ref: str, name: str) -> None:
        """Attach tag ``name`` to a profile (tags are unique store-wide)."""
        profile_id = self.resolve(ref)
        index = self._read_index()
        old = index["tags"].get(name)
        if old and old != profile_id and old in index["profiles"]:
            tags = index["profiles"][old].setdefault("tags", [])
            if name in tags:
                tags.remove(name)
        index["tags"][name] = profile_id
        tags = index["profiles"][profile_id].setdefault("tags", [])
        if name not in tags:
            tags.append(name)
        self._write_index(index)

    # -- baseline resolution ----------------------------------------------------

    def baseline(
        self,
        workload: str,
        commit: Optional[str] = None,
        config_hash: Optional[str] = None,
        tag: Optional[str] = None,
        ancestors: Optional[Sequence[str]] = None,
        repo: Optional[str] = None,
        max_history: int = 1000,
        exclude: Sequence[str] = (),
    ) -> Optional[ProfileEntry]:
        """The profile the head run should be compared against.

        ``tag`` wins: the tagged profile is returned (a mismatched workload
        raises).  Otherwise the baseline is the entry for ``workload`` (and
        ``config_hash``, when given) at the **nearest strict ancestor** of
        ``commit`` — resolved against ``ancestors``, a head-first commit
        list, or ``git rev-list`` of ``repo``/cwd when not supplied.  The
        head commit's own profiles are skipped (a baseline must predate the
        run under test), as are profile ids in ``exclude`` — pass the head
        profile's id so a commit-less store never compares a run to itself.
        Entries with no commit are considered last, newest first, so a
        store without git provenance still yields the most recent prior
        profile.  ``None`` when nothing qualifies.
        """
        if tag is not None:
            entry = self.get(tag)
            if entry.workload != workload:
                raise StoreError(
                    f"tag {tag!r} points at workload {entry.workload!r}, "
                    f"not {workload!r}"
                )
            return entry
        candidates = [
            e
            for e in self.lookup(workload=workload, config_hash=config_hash)
            if e.profile_id not in exclude
        ]
        if not candidates:
            return None
        if commit is None:
            commit, _ = git_state(repo)
        if ancestors is None and commit is not None:
            ancestors = _rev_list(commit, repo, max_history)
        if ancestors:
            order = {sha: i for i, sha in enumerate(ancestors)}
            head = ancestors[0] if commit is None else commit
            ranked = [
                (order[e.commit], -(e.timestamp or 0.0), e)
                for e in candidates
                if e.commit in order and e.commit != head
            ]
            if ranked:
                ranked.sort(key=lambda t: t[:2])
                return ranked[0][2]
        # No usable commit graph: newest strictly-prior profile wins.
        fallback = [e for e in candidates if commit is None or e.commit != commit]
        return fallback[0] if fallback else None


def _rev_list(
    commit: str, repo: Optional[str], max_history: int
) -> Optional[list[str]]:
    """Head-first ancestor commits of ``commit`` via git (None off-tree)."""
    path = os.path.abspath(repo or os.getcwd())
    try:
        proc = subprocess.run(
            ["git", "-C", path, "rev-list", f"--max-count={max_history}", commit],
            capture_output=True,
            text=True,
            timeout=30,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    if proc.returncode != 0:
        return None
    shas = proc.stdout.split()
    return shas or None
