"""Statistical postprocessors over aggregated profiles.

Ported in spirit from Perun's postprocess suite: each function consumes an
aggregated profile (a :class:`~repro.query.engine.QueryResult` or plain
record iterable) and derives a compact statistical *model* of one numeric
metric — a moving average, a regressogram (fixed-width bucketed means over
a numeric context attribute), least-squares linear/log regression models,
or a 1-D clusterization.  Every postprocessor emits ordinary records
labelled ``observe.model.*``, so derived models are themselves
CalQL-queryable and storable in the profile store next to the profiles
they summarize::

    AGGREGATE avg(observe.model.value) GROUP BY observe.model.kind

All postprocessors are **permutation-invariant**: rows are ordered
internally by ``(group key, context attribute)``, so the same profile in
any row order produces identical models.  They are also pure — no clock,
no randomness — which the property tests in ``tests/store`` rely on.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Optional, Sequence, Union

import numpy as np

from ..common.errors import ReproError
from ..common.record import Record
from ..common.variant import Variant
from ..query.engine import QueryResult

__all__ = [
    "ModelFit",
    "PostprocessError",
    "clusterize",
    "fit_models",
    "best_model",
    "moving_average",
    "regressogram",
]

Profile = Union[QueryResult, Iterable[Record]]

#: regression model kinds with a closed-form least-squares fit
MODEL_KINDS = ("linear", "log")


class PostprocessError(ReproError):
    """A postprocessor could not run over the given profile."""


def _records_of(profile: Profile) -> list[Record]:
    if isinstance(profile, QueryResult):
        return profile.records
    return list(profile)


def _groups(
    records: list[Record], group_by: Sequence[str]
) -> list[tuple[tuple, list[Record]]]:
    """Rows partitioned by the ``group_by`` labels, in sorted group order."""
    if not group_by:
        return [((), records)]
    table: dict[tuple, list[Record]] = {}
    for record in records:
        key = tuple(record.get(label) for label in group_by)
        table.setdefault(key, []).append(record)
    return sorted(table.items(), key=lambda kv: tuple(v._order_key() for v in kv[0]))


def _points(
    rows: list[Record], metric: str, x: Optional[str]
) -> tuple[np.ndarray, np.ndarray]:
    """``(xs, ys)`` numeric arrays, sorted by x (then y) — rows lacking the
    metric (or the context attribute, when given) are skipped."""
    xs: list[float] = []
    ys: list[float] = []
    for i, record in enumerate(rows):
        yv = record.get(metric)
        if yv.is_empty or not yv.is_numeric:
            continue
        if x is None:
            xs.append(float(i))
            ys.append(yv.to_double())
            continue
        xv = record.get(x)
        if xv.is_empty or not xv.is_numeric:
            continue
        xs.append(xv.to_double())
        ys.append(yv.to_double())
    ax = np.asarray(xs, dtype=np.float64)
    ay = np.asarray(ys, dtype=np.float64)
    if x is not None:
        order = np.lexsort((ay, ax))
        ax, ay = ax[order], ay[order]
    return ax, ay


def _key_entries(group_by: Sequence[str], key: tuple) -> dict[str, Variant]:
    return {
        label: value
        for label, value in zip(group_by, key)
        if not value.is_empty
    }


def _result(
    records: list[Record], group_by: Sequence[str], columns: Sequence[str]
) -> QueryResult:
    return QueryResult(records, list(group_by) + list(columns), "table")


# -- moving average -------------------------------------------------------------


def moving_average(
    profile: Profile,
    metric: str,
    x: str,
    window: int = 3,
    group_by: Sequence[str] = (),
) -> QueryResult:
    """Centered moving average of ``metric`` along context attribute ``x``.

    Points are ordered by ``x`` per group; each output record carries the
    window mean at that point (window truncated symmetrically at the
    edges, matching ``np.convolve``-free reference semantics: the mean of
    the up-to-``window`` points centered on the position).
    """
    if window < 1:
        raise PostprocessError(f"moving_average window must be >= 1, got {window}")
    out: list[Record] = []
    half = window // 2
    for key, rows in _groups(_records_of(profile), group_by):
        xs, ys = _points(rows, metric, x)
        for i in range(len(ys)):
            lo = max(0, i - half)
            hi = min(len(ys), i + half + 1)
            entries = _key_entries(group_by, key)
            entries.update(
                {
                    "observe.model.kind": Variant.of("moving_average"),
                    "observe.model.metric": Variant.of(metric),
                    "observe.model.window": Variant.of(window),
                    "observe.model.x": Variant.of(float(xs[i])),
                    "observe.model.value": Variant.of(float(np.mean(ys[lo:hi]))),
                }
            )
            out.append(Record.from_variants(entries))
    return _result(
        out,
        group_by,
        (
            "observe.model.kind",
            "observe.model.metric",
            "observe.model.x",
            "observe.model.value",
            "observe.model.window",
        ),
    )


# -- regressogram ---------------------------------------------------------------


def regressogram(
    profile: Profile,
    metric: str,
    x: str,
    buckets: int = 10,
    lo: Optional[float] = None,
    hi: Optional[float] = None,
    group_by: Sequence[str] = (),
) -> QueryResult:
    """Fixed-width bucketed means of ``metric`` over context attribute ``x``.

    The x-range ``[lo, hi]`` (default: the group's data range) is split into
    ``buckets`` equal-width intervals; each non-empty bucket yields one
    record with the bucket bounds, the mean of the metric inside it, and
    the sample count.  The upper edge of the last bucket is inclusive,
    matching :func:`numpy.histogram` semantics.
    """
    if buckets < 1:
        raise PostprocessError(f"regressogram needs buckets >= 1, got {buckets}")
    out: list[Record] = []
    for key, rows in _groups(_records_of(profile), group_by):
        xs, ys = _points(rows, metric, x)
        if len(xs) == 0:
            continue
        b_lo = float(np.min(xs)) if lo is None else float(lo)
        b_hi = float(np.max(xs)) if hi is None else float(hi)
        if b_hi <= b_lo:
            b_hi = b_lo + 1.0
        edges = np.linspace(b_lo, b_hi, buckets + 1)
        # np.histogram bucket semantics: [edge_i, edge_i+1), last inclusive.
        idx = np.clip(np.searchsorted(edges, xs, side="right") - 1, 0, buckets - 1)
        for b in range(buckets):
            mask = idx == b
            n = int(np.count_nonzero(mask))
            if n == 0:
                continue
            entries = _key_entries(group_by, key)
            entries.update(
                {
                    "observe.model.kind": Variant.of("regressogram"),
                    "observe.model.metric": Variant.of(metric),
                    "observe.model.bucket": Variant.of(b),
                    "observe.model.x.lo": Variant.of(float(edges[b])),
                    "observe.model.x.hi": Variant.of(float(edges[b + 1])),
                    "observe.model.value": Variant.of(float(np.mean(ys[mask]))),
                    "observe.model.count": Variant.of(n),
                }
            )
            out.append(Record.from_variants(entries))
    return _result(
        out,
        group_by,
        (
            "observe.model.kind",
            "observe.model.metric",
            "observe.model.bucket",
            "observe.model.x.lo",
            "observe.model.x.hi",
            "observe.model.value",
            "observe.model.count",
        ),
    )


# -- regression models ----------------------------------------------------------


@dataclass
class ModelFit:
    """One fitted regression model: ``y ≈ a + b * f(x)``."""

    kind: str  # "linear" (f = identity) or "log" (f = ln)
    a: float
    b: float
    r2: float
    sse: float
    n: int

    def predict(self, x: float) -> float:
        fx = math.log(x) if self.kind == "log" else x
        return self.a + self.b * fx

    def describe(self) -> str:
        fx = "ln(x)" if self.kind == "log" else "x"
        return f"{self.kind}: y = {self.a:.6g} + {self.b:.6g}*{fx} (r2={self.r2:.3f})"


def _fit_one(kind: str, xs: np.ndarray, ys: np.ndarray) -> Optional[ModelFit]:
    if kind == "log":
        mask = xs > 0
        xs, ys = xs[mask], ys[mask]
        fx = np.log(xs)
    elif kind == "linear":
        fx = xs
    else:
        raise PostprocessError(f"unknown regression model kind {kind!r}")
    if len(fx) < 2 or float(np.ptp(fx)) == 0.0:
        return None
    # Closed-form least squares for y = a + b*fx.
    mx, my = float(np.mean(fx)), float(np.mean(ys))
    sxx = float(np.sum((fx - mx) ** 2))
    if sxx == 0.0:  # ptp > 0 but the squared spread underflowed to zero
        return None
    sxy = float(np.sum((fx - mx) * (ys - my)))
    b = sxy / sxx
    a = my - b * mx
    resid = ys - (a + b * fx)
    sse = float(np.sum(resid**2))
    sst = float(np.sum((ys - my) ** 2))
    r2 = 1.0 if sst == 0.0 else 1.0 - sse / sst
    return ModelFit(kind=kind, a=a, b=b, r2=r2, sse=sse, n=int(len(fx)))


def fit_models(
    profile: Profile,
    metric: str,
    x: str,
    models: Sequence[str] = MODEL_KINDS,
    group_by: Sequence[str] = (),
) -> QueryResult:
    """Least-squares regression models of ``metric`` against ``x``.

    Fits each requested model kind per group and emits one record per fit
    with coefficients, r², SSE, and a ``observe.model.best`` flag on the
    highest-r² fit of each group.  Groups with fewer than two usable points
    (or a degenerate x-range) produce no records.
    """
    out: list[Record] = []
    for key, rows in _groups(_records_of(profile), group_by):
        xs, ys = _points(rows, metric, x)
        fits = [f for f in (_fit_one(kind, xs, ys) for kind in models) if f]
        if not fits:
            continue
        best = max(fits, key=lambda f: f.r2)
        for fit in fits:
            entries = _key_entries(group_by, key)
            entries.update(
                {
                    "observe.model.kind": Variant.of("regression"),
                    "observe.model.metric": Variant.of(metric),
                    "observe.model.model": Variant.of(fit.kind),
                    "observe.model.a": Variant.of(fit.a),
                    "observe.model.b": Variant.of(fit.b),
                    "observe.model.r2": Variant.of(fit.r2),
                    "observe.model.sse": Variant.of(fit.sse),
                    "observe.model.points": Variant.of(fit.n),
                    "observe.model.best": Variant.of(fit is best),
                }
            )
            out.append(Record.from_variants(entries))
    return _result(
        out,
        group_by,
        (
            "observe.model.kind",
            "observe.model.metric",
            "observe.model.model",
            "observe.model.a",
            "observe.model.b",
            "observe.model.r2",
            "observe.model.points",
            "observe.model.best",
        ),
    )


def best_model(
    profile: Profile,
    metric: str,
    x: str,
    models: Sequence[str] = MODEL_KINDS,
) -> Optional[ModelFit]:
    """The highest-r² :class:`ModelFit` over the whole profile (one group)."""
    xs, ys = _points(_records_of(profile), metric, x)
    fits = [f for f in (_fit_one(kind, xs, ys) for kind in models) if f]
    return max(fits, key=lambda f: f.r2) if fits else None


# -- clusterizer ----------------------------------------------------------------


def clusterize(
    profile: Profile,
    metric: str,
    rel_gap: float = 0.25,
    abs_gap: float = 0.0,
    group_by: Sequence[str] = (),
) -> QueryResult:
    """1-D gap clusterization of a metric's value distribution.

    Values are sorted; a new cluster starts wherever the jump to the next
    value exceeds ``prev * rel_gap + abs_gap`` (Perun's sort-order
    clusterizer, deterministic and permutation-invariant — no seeds, no
    iteration).  Each cluster yields one record with its bounds, mean, and
    size; the cluster index orders clusters by value.
    """
    if rel_gap < 0 or abs_gap < 0:
        raise PostprocessError("clusterize gaps must be non-negative")
    out: list[Record] = []
    for key, rows in _groups(_records_of(profile), group_by):
        _, ys = _points(rows, metric, None)
        if len(ys) == 0:
            continue
        values = np.sort(ys)
        clusters: list[list[float]] = [[float(values[0])]]
        for v in values[1:]:
            prev = clusters[-1][-1]
            if float(v) - prev > abs(prev) * rel_gap + abs_gap:
                clusters.append([float(v)])
            else:
                clusters[-1].append(float(v))
        for i, members in enumerate(clusters):
            arr = np.asarray(members)
            entries = _key_entries(group_by, key)
            entries.update(
                {
                    "observe.model.kind": Variant.of("cluster"),
                    "observe.model.metric": Variant.of(metric),
                    "observe.model.cluster": Variant.of(i),
                    "observe.model.value.min": Variant.of(float(arr.min())),
                    "observe.model.value.max": Variant.of(float(arr.max())),
                    "observe.model.value": Variant.of(float(arr.mean())),
                    "observe.model.count": Variant.of(int(len(arr))),
                }
            )
            out.append(Record.from_variants(entries))
    return _result(
        out,
        group_by,
        (
            "observe.model.kind",
            "observe.model.metric",
            "observe.model.cluster",
            "observe.model.value.min",
            "observe.model.value.max",
            "observe.model.value",
            "observe.model.count",
        ),
    )
