"""Statistical degradation detection: head profile vs baseline profile.

The regression gate every performance-tracked project needs: given two
aggregated profiles of the same workload — a baseline (resolved by the
:class:`~repro.store.profiles.ProfileStore`, or any saved ``.rcf``) and the
head run — compare them **per aggregation key** and report a verdict per
``(group, metric)``:

* ``Degradation`` / ``Optimization`` — the metric moved past the relative
  ``threshold`` in the costly / beneficial direction;
* ``NoChange`` — inside the threshold (or statistically insignificant);
* ``New`` / ``Missing`` — the group exists on only one side.

Two statistical engines back the verdicts, chosen per group by sample
count: with enough per-group samples on both sides a **Mann–Whitney
rank-sum test** (tie-corrected normal approximation, two-sided) must
reject "same distribution" at ``alpha`` *and* the median shift must exceed
the threshold; small groups fall back to a plain relative-change test on
means.  When a numeric context attribute ``x`` is given, a **best-fit
model comparison** (:func:`repro.store.postprocess.fit_models`) also runs
per group: a change of best model kind, or a predicted-value shift at the
far end of the shared x-range, is reported as a ``model`` finding — the
"calc-dt turned superlinear" class of regression a scalar diff misses.

Findings render as a human report, machine-readable JSON, and CalQL
records (``observe.check.*``), and :meth:`CheckReport.exit_code` gives CI
its gate.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Iterable, Optional, Sequence, Union

from ..common.errors import ReproError
from ..common.record import Record
from ..common.variant import Variant
from ..query.engine import QueryResult
from .postprocess import MODEL_KINDS, ModelFit, _fit_one, _points

__all__ = [
    "CheckError",
    "CheckReport",
    "Finding",
    "check_profiles",
    "infer_columns",
    "rank_sum_test",
]

Profile = Union[QueryResult, Iterable[Record]]

VERDICT_DEGRADATION = "Degradation"
VERDICT_OPTIMIZATION = "Optimization"
VERDICT_NO_CHANGE = "NoChange"
VERDICT_NEW = "New"
VERDICT_MISSING = "Missing"

#: tolerance on the threshold comparison: a change of *exactly* the
#: threshold (e.g. +5% at threshold 0.05) must not flip on float rounding
_THRESHOLD_EPS = 1e-9


def _beyond(change: Optional[float], threshold: float) -> bool:
    return change is not None and abs(change) - threshold > _THRESHOLD_EPS

#: labels that are never aggregation keys (provenance stamps, orderers)
_NON_KEY_PREFIXES = ("run.", "observe.model.", "observe.check.")


class CheckError(ReproError):
    """The two profiles cannot be compared (no shared key/metrics...)."""


# -- statistics -----------------------------------------------------------------


def rank_sum_test(xs: Sequence[float], ys: Sequence[float]) -> tuple[float, float]:
    """Mann–Whitney U test (two-sided): ``(U1, p_value)``.

    Pure-python implementation with midrank tie handling and the
    tie-corrected normal approximation — adequate for the n ≥ 5 per-group
    sample counts the check uses it for, and dependency-free (no scipy).
    """
    n1, n2 = len(xs), len(ys)
    if n1 == 0 or n2 == 0:
        raise CheckError("rank_sum_test needs non-empty samples on both sides")
    pooled = sorted([(v, 0) for v in xs] + [(v, 1) for v in ys])
    n = n1 + n2
    ranks = [0.0] * n
    tie_term = 0.0
    i = 0
    while i < n:
        j = i
        while j + 1 < n and pooled[j + 1][0] == pooled[i][0]:
            j += 1
        midrank = (i + j) / 2 + 1
        for k in range(i, j + 1):
            ranks[k] = midrank
        t = j - i + 1
        if t > 1:
            tie_term += t**3 - t
        i = j + 1
    r1 = sum(rank for rank, (_, side) in zip(ranks, pooled) if side == 0)
    u1 = r1 - n1 * (n1 + 1) / 2
    mu = n1 * n2 / 2
    sigma2 = n1 * n2 / 12 * ((n + 1) - tie_term / (n * (n - 1)))
    if sigma2 <= 0:
        return u1, 1.0  # all values tied: no evidence of difference
    # Continuity correction toward the mean.
    z = (u1 - mu - math.copysign(0.5, u1 - mu)) / math.sqrt(sigma2)
    p = math.erfc(abs(z) / math.sqrt(2))
    return u1, min(1.0, p)


# -- findings -------------------------------------------------------------------


@dataclass
class Finding:
    """One per-(group, metric) comparison outcome."""

    verdict: str
    metric: str
    key: dict[str, Any] = field(default_factory=dict)
    base: Optional[float] = None
    head: Optional[float] = None
    change: Optional[float] = None  # relative: (head - base) / |base|
    severity: Optional[str] = None  # "minor" | "severe"
    p_value: Optional[float] = None
    n_base: int = 0
    n_head: int = 0
    method: str = "ratio"  # "ratio" | "ranksum" | "model:<base>-><head>"

    @property
    def location(self) -> str:
        """``sum(time.duration) at kernel=calc-dt, amr.level=2: +23.0%``"""
        op, sep, attr = self.metric.partition("#")
        metric = f"{op}({attr})" if sep else self.metric
        at = ", ".join(f"{k}={v}" for k, v in self.key.items())
        text = f"{metric} at {at}" if at else metric
        if self.change is not None and math.isfinite(self.change):
            text += f": {self.change:+.1%}"
        elif self.change is not None:
            text += ": base was 0"
        return text

    def to_json(self) -> dict[str, Any]:
        return {
            "verdict": self.verdict,
            "metric": self.metric,
            "key": dict(self.key),
            "location": self.location,
            "base": self.base,
            "head": self.head,
            "change": self.change,
            "severity": self.severity,
            "p_value": self.p_value,
            "samples": {"base": self.n_base, "head": self.n_head},
            "method": self.method,
        }

    def to_record(self) -> Record:
        entries: dict[str, Variant] = {
            k: Variant.of(v) for k, v in self.key.items()
        }
        entries.update(
            {
                "observe.kind": Variant.of("check"),
                "observe.check.verdict": Variant.of(self.verdict),
                "observe.check.metric": Variant.of(self.metric),
                "observe.check.method": Variant.of(self.method),
            }
        )
        if self.base is not None:
            entries["observe.check.base"] = Variant.of(self.base)
        if self.head is not None:
            entries["observe.check.head"] = Variant.of(self.head)
        if self.change is not None and math.isfinite(self.change):
            entries["observe.check.change"] = Variant.of(self.change)
        if self.severity is not None:
            entries["observe.check.severity"] = Variant.of(self.severity)
        if self.p_value is not None:
            entries["observe.check.p"] = Variant.of(self.p_value)
        return Record.from_variants(entries)


@dataclass
class CheckReport:
    """All findings of one head-vs-baseline comparison."""

    findings: list[Finding]
    threshold: float
    alpha: float
    key: list[str] = field(default_factory=list)
    metrics: list[str] = field(default_factory=list)
    workload: Optional[str] = None
    base_info: dict[str, Any] = field(default_factory=dict)
    head_info: dict[str, Any] = field(default_factory=dict)

    @property
    def degradations(self) -> list[Finding]:
        return [f for f in self.findings if f.verdict == VERDICT_DEGRADATION]

    @property
    def optimizations(self) -> list[Finding]:
        return [f for f in self.findings if f.verdict == VERDICT_OPTIMIZATION]

    def counts(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for f in self.findings:
            out[f.verdict] = out.get(f.verdict, 0) + 1
        return out

    def exit_code(self) -> int:
        """1 when any confirmed degradation exceeded the threshold, else 0."""
        return 1 if self.degradations else 0

    def to_json(self) -> dict[str, Any]:
        return {
            "workload": self.workload,
            "threshold": self.threshold,
            "alpha": self.alpha,
            "key": list(self.key),
            "metrics": list(self.metrics),
            "base": dict(self.base_info),
            "head": dict(self.head_info),
            "counts": self.counts(),
            "exit_code": self.exit_code(),
            "findings": [f.to_json() for f in self.findings],
        }

    def to_records(self) -> list[Record]:
        return [f.to_record() for f in self.findings]

    def to_result(self) -> QueryResult:
        """Findings as a CalQL-queryable result table."""
        columns = list(self.key) + [
            "observe.check.verdict",
            "observe.check.metric",
            "observe.check.base",
            "observe.check.head",
            "observe.check.change",
            "observe.check.severity",
            "observe.check.p",
            "observe.check.method",
        ]
        return QueryResult(self.to_records(), columns, "table")

    def summary(self, verbose: bool = False) -> str:
        """The human-readable report (what ``repro-query check`` prints)."""
        lines: list[str] = []
        shown = (
            self.findings
            if verbose
            else [f for f in self.findings if f.verdict != VERDICT_NO_CHANGE]
        )
        for f in shown:
            extra = []
            if f.p_value is not None:
                extra.append(f"p={f.p_value:.4f}")
            if f.n_base > 1 or f.n_head > 1:
                extra.append(f"n={f.n_base}/{f.n_head}")
            if f.severity:
                extra.append(f.severity)
            suffix = f"  ({', '.join(extra)})" if extra else ""
            lines.append(f"{f.verdict:<13s} {f.location}{suffix}")
        counts = self.counts()
        totals = ", ".join(f"{counts[v]} {v}" for v in sorted(counts))
        head = self.workload or "profiles"
        lines.append(
            f"check {head}: {totals or 'no comparable groups'} "
            f"(threshold {self.threshold:.0%})"
        )
        return "\n".join(lines)


# -- column inference -----------------------------------------------------------


def _is_metric_label(label: str, records: list[Record]) -> bool:
    if not ("#" in label or label in ("count", "aggregate.count")):
        return False
    values = [r.get(label) for r in records]
    return any(
        not v.is_empty and v.is_numeric for v in values
    ) and all(v.is_empty or v.is_numeric for v in values)


def infer_columns(records: list[Record]) -> tuple[list[str], list[str]]:
    """``(key, metrics)`` guessed from an aggregated profile's labels.

    Metric columns are operator outputs (``op#attribute`` and ``count``)
    whose values are numeric; every other label — minus provenance stamps
    (``run.*``) and derived-model labels — is part of the aggregation key.
    """
    labels = sorted({lbl for r in records for lbl in r.labels()})
    metrics = [lbl for lbl in labels if _is_metric_label(lbl, records)]
    key = [
        lbl
        for lbl in labels
        if lbl not in metrics
        and not lbl.startswith(_NON_KEY_PREFIXES)
        and lbl != "run.seq"
    ]
    return key, metrics


# -- the check ------------------------------------------------------------------


def _group_samples(
    records: list[Record], key: Sequence[str], metrics: Sequence[str]
) -> dict[tuple, dict[str, list[float]]]:
    table: dict[tuple, dict[str, list[float]]] = {}
    for record in records:
        k = tuple(record.get(label).to_string() for label in key)
        cell = table.setdefault(k, {m: [] for m in metrics})
        for metric in metrics:
            v = record.get(metric)
            if not v.is_empty and v.is_numeric:
                cell[metric].append(v.to_double())
    return table


def _median(values: Sequence[float]) -> float:
    s = sorted(values)
    n = len(s)
    mid = n // 2
    return s[mid] if n % 2 else (s[mid - 1] + s[mid]) / 2


def _relative(base: float, head: float) -> Optional[float]:
    if base == 0:
        return None if head == 0 else math.inf * (1 if head > 0 else -1)
    return (head - base) / abs(base)


def check_profiles(
    base: Profile,
    head: Profile,
    key: Optional[Sequence[str]] = None,
    metrics: Optional[Sequence[str]] = None,
    threshold: float = 0.05,
    alpha: float = 0.05,
    severe: float = 0.25,
    min_samples: int = 5,
    x: Optional[str] = None,
    smaller_is_better: bool = True,
    workload: Optional[str] = None,
) -> CheckReport:
    """Compare two aggregated profiles per aggregation key.

    ``key``/``metrics`` default to :func:`infer_columns` over both inputs.
    ``threshold`` is the relative change that counts as a regression;
    ``alpha`` the significance level for the rank test (used when both
    sides have ≥ ``min_samples`` samples per group); changes beyond
    ``severe`` are flagged severe.  ``x`` enables best-fit-model
    comparison along a numeric context attribute.  ``smaller_is_better``
    declares the metrics' cost direction (time-like by default).
    """
    base_records = base.records if isinstance(base, QueryResult) else list(base)
    head_records = head.records if isinstance(head, QueryResult) else list(head)
    if key is None or metrics is None:
        key_b, metrics_b = infer_columns(base_records)
        key_h, metrics_h = infer_columns(head_records)
        if key is None:
            key = sorted(set(key_b) | set(key_h))
        if metrics is None:
            metrics = sorted(set(metrics_b) & set(metrics_h)) or sorted(
                set(metrics_b) | set(metrics_h)
            )
    key = [k for k in key if k != x]
    if not metrics:
        raise CheckError(
            "no numeric metric columns found to compare; pass metrics="
        )

    base_groups = _group_samples(base_records, key, metrics)
    head_groups = _group_samples(head_records, key, metrics)
    findings: list[Finding] = []

    def key_dict(k: tuple) -> dict[str, Any]:
        return {label: value for label, value in zip(key, k) if value != ""}

    for k in sorted(set(base_groups) | set(head_groups)):
        in_base = k in base_groups
        for metric in metrics:
            xs = base_groups.get(k, {}).get(metric, [])
            ys = head_groups.get(k, {}).get(metric, [])
            if not xs or not ys:
                if not xs and not ys:
                    continue
                findings.append(
                    Finding(
                        verdict=VERDICT_NEW if not in_base or not xs else VERDICT_MISSING,
                        metric=metric,
                        key=key_dict(k),
                        base=_median(xs) if xs else None,
                        head=_median(ys) if ys else None,
                        n_base=len(xs),
                        n_head=len(ys),
                        method="presence",
                    )
                )
                continue
            if len(xs) >= min_samples and len(ys) >= min_samples:
                _, p = rank_sum_test(xs, ys)
                b, h = _median(xs), _median(ys)
                change = _relative(b, h)
                significant = p < alpha
                method = "ranksum"
            else:
                b = sum(xs) / len(xs)
                h = sum(ys) / len(ys)
                change = _relative(b, h)
                p = None
                significant = True
                method = "ratio"
            verdict = VERDICT_NO_CHANGE
            severity = None
            if significant and _beyond(change, threshold):
                worse = change > 0 if smaller_is_better else change < 0
                verdict = VERDICT_DEGRADATION if worse else VERDICT_OPTIMIZATION
                severity = "severe" if abs(change) >= severe else "minor"
            findings.append(
                Finding(
                    verdict=verdict,
                    metric=metric,
                    key=key_dict(k),
                    base=b,
                    head=h,
                    change=change,
                    severity=severity,
                    p_value=p,
                    n_base=len(xs),
                    n_head=len(ys),
                    method=method,
                )
            )

    if x is not None:
        findings.extend(
            _model_findings(
                base_records,
                head_records,
                key,
                metrics,
                x,
                threshold,
                severe,
                smaller_is_better,
            )
        )

    findings.sort(
        key=lambda f: (
            0 if f.verdict == VERDICT_DEGRADATION else 1,
            -(abs(f.change) if f.change is not None and math.isfinite(f.change) else math.inf),
        )
    )
    return CheckReport(
        findings=findings,
        threshold=threshold,
        alpha=alpha,
        key=list(key),
        metrics=list(metrics),
        workload=workload,
    )


def _model_findings(
    base_records: list[Record],
    head_records: list[Record],
    key: Sequence[str],
    metrics: Sequence[str],
    x: str,
    threshold: float,
    severe: float,
    smaller_is_better: bool,
) -> list[Finding]:
    """Best-fit-model comparison per group along context attribute ``x``."""

    def by_key(records: list[Record]) -> dict[tuple, list[Record]]:
        out: dict[tuple, list[Record]] = {}
        for record in records:
            out.setdefault(
                tuple(record.get(label).to_string() for label in key), []
            ).append(record)
        return out

    def best_fit(rows: list[Record], metric: str) -> Optional[ModelFit]:
        xs, ys = _points(rows, metric, x)
        fits = [f for f in (_fit_one(kind, xs, ys) for kind in MODEL_KINDS) if f]
        fits = [f for f in fits if f.n >= 3]
        return max(fits, key=lambda f: f.r2) if fits else None

    base_by, head_by = by_key(base_records), by_key(head_records)
    findings: list[Finding] = []
    for k in sorted(set(base_by) & set(head_by)):
        for metric in metrics:
            fb = best_fit(base_by[k], metric)
            fh = best_fit(head_by[k], metric)
            if fb is None or fh is None:
                continue
            xs_b, _ = _points(base_by[k], metric, x)
            xs_h, _ = _points(head_by[k], metric, x)
            x_far = min(float(xs_b.max()), float(xs_h.max()))
            if fb.kind == "log" or fh.kind == "log":
                x_far = max(x_far, 1e-9)
            pb, ph = fb.predict(x_far), fh.predict(x_far)
            change = _relative(pb, ph)
            verdict = VERDICT_NO_CHANGE
            severity = None
            if fb.kind != fh.kind or _beyond(change, threshold):
                worse = (change or 0) > 0 if smaller_is_better else (change or 0) < 0
                verdict = VERDICT_DEGRADATION if worse else VERDICT_OPTIMIZATION
                if change is not None and math.isfinite(change):
                    severity = "severe" if abs(change) >= severe else "minor"
            findings.append(
                Finding(
                    verdict=verdict,
                    metric=metric,
                    key={
                        label: value
                        for label, value in zip(key, k)
                        if value != ""
                    },
                    base=pb,
                    head=ph,
                    change=change,
                    severity=severity,
                    n_base=fb.n,
                    n_head=fh.n,
                    method=f"model:{fb.kind}->{fh.kind}",
                )
            )
    return findings
