"""Aggregation schemes: the user-facing specification object.

A scheme is the triple the paper defines in Section III-B:

* **aggregation attributes** — what to reduce (implied by the operators'
  arguments),
* **aggregation key** — the GROUP BY attribute labels,
* **aggregation operators** — the reduction kernels.

plus an optional record *predicate* (the WHERE clause) and a key-interning
strategy.  Schemes are plain data: the same object configures the on-line
aggregation service, the off-line query engine, and the cross-process
reduction — that single-description-everywhere property is the paper's core
claim.

Construct schemes directly::

    AggregationScheme(ops=[make_op("count"), make_op("sum", ["time.duration"])],
                      key=["function", "loop.iteration"])

or from CalQL text (see :func:`repro.calql.parse_scheme`)::

    parse_scheme("AGGREGATE count, sum(time.duration) GROUP BY function")
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence, Union

from ..common.errors import AggregationError
from ..common.record import Record
from .ops import AggregateOp, make_op

__all__ = ["AggregationScheme"]

Predicate = Callable[[Record], bool]


class AggregationScheme:
    """Immutable specification of one aggregation."""

    __slots__ = ("ops", "key", "predicate", "key_strategy")

    def __init__(
        self,
        ops: Sequence[Union[AggregateOp, str]],
        key: Sequence[str] = (),
        predicate: Optional[Predicate] = None,
        key_strategy: str = "tuple",
    ) -> None:
        kernels: list[AggregateOp] = []
        for op in ops:
            if isinstance(op, str):
                # bare names like "count"; "sum(x)" style is CalQL's job
                kernels.append(make_op(op))
            else:
                kernels.append(op)
        if not kernels:
            raise AggregationError("an aggregation scheme needs at least one operator")
        key = tuple(key)
        if len(set(key)) != len(key):
            dupes = sorted({k for k in key if list(key).count(k) > 1})
            raise AggregationError(f"duplicate key attribute(s): {', '.join(dupes)}")
        seen_outputs: set[str] = set()
        for k in kernels:
            for lbl in k.output_labels():
                if lbl in seen_outputs:
                    raise AggregationError(f"duplicate aggregation output {lbl!r}")
                if lbl in key:
                    raise AggregationError(
                        f"aggregation output {lbl!r} collides with a key attribute"
                    )
                seen_outputs.add(lbl)
        object.__setattr__(self, "ops", tuple(kernels))
        object.__setattr__(self, "key", key)
        object.__setattr__(self, "predicate", predicate)
        object.__setattr__(self, "key_strategy", key_strategy)

    def __setattr__(self, name: str, value: object) -> None:  # pragma: no cover
        raise AttributeError("AggregationScheme is immutable")

    # -- derived views -------------------------------------------------------

    @property
    def aggregation_attributes(self) -> list[str]:
        """Distinct input attribute labels the operators read."""
        seen: dict[str, None] = {}
        for op in self.ops:
            for lbl in op.inputs:
                seen.setdefault(lbl)
        return list(seen)

    @property
    def output_labels(self) -> list[str]:
        """Key labels followed by every operator output label."""
        labels = list(self.key)
        for op in self.ops:
            labels.extend(op.output_labels())
        return labels

    def fresh_kernels(self) -> tuple[AggregateOp, ...]:
        """The operator kernels (stateless; shared per DB)."""
        return self.ops

    def compile(self, fold_plan: str = "compiled"):
        """Compile the operator tuple into a per-record fold plan.

        ``fold_plan`` selects the strategy: ``"compiled"`` fuses all operator
        updates into one closure with monomorphic raw-value kernels for the
        standard numeric reductions; ``"generic"`` is the reference per-op
        dispatch loop.  Both are fold-equivalent — see
        :mod:`repro.aggregate.plan`.
        """
        from .plan import make_plan  # local import: plan builds on ops

        return make_plan(self.ops, fold_plan)

    def describe(self) -> str:
        """CalQL-ish text rendering of the scheme."""
        text = "AGGREGATE " + ", ".join(op.spec_string() for op in self.ops)
        if self.key:
            text += " GROUP BY " + ", ".join(self.key)
        return text

    def with_key(self, key: Sequence[str]) -> "AggregationScheme":
        """A copy with a different aggregation key."""
        return AggregationScheme(self.ops, key, self.predicate, self.key_strategy)

    def with_predicate(self, predicate: Optional[Predicate]) -> "AggregationScheme":
        """A copy with a different WHERE predicate."""
        return AggregationScheme(self.ops, self.key, predicate, self.key_strategy)

    def __repr__(self) -> str:
        return f"AggregationScheme({self.describe()!r})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, AggregationScheme):
            return NotImplemented
        return (
            self.ops == other.ops
            and self.key == other.key
            and self.predicate == other.predicate
        )

    def __hash__(self) -> int:
        return hash((self.ops, self.key, id(self.predicate)))
