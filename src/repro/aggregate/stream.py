"""Streaming aggregator facade and multi-stage helpers.

:class:`StreamAggregator` is the thin object the rest of the framework uses:
it owns one :class:`AggregationDB` and exposes the push/flush lifecycle.  It
also provides the two-stage helpers that the paper's workflows use — local
aggregation followed by a combine of partial results (cross-process
reduction), and re-aggregation of flushed profiles under a second scheme
(on-line profile -> off-line summary).
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

from ..common.record import Record
from .db import AggregationDB
from .scheme import AggregationScheme

__all__ = ["StreamAggregator", "aggregate_records", "combine_partials"]


class StreamAggregator:
    """Push-based aggregation with an explicit flush.

    >>> agg = StreamAggregator(AggregationScheme(ops=["count"], key=["function"]))
    >>> agg.push(Record({"function": "foo"}))
    >>> agg.push(Record({"function": "bar"}))
    >>> sorted(r.to_plain()["function"] for r in agg.flush())
    ['bar', 'foo']
    """

    def __init__(self, scheme: AggregationScheme, fold_plan: str = "compiled") -> None:
        self.scheme = scheme
        self.db = AggregationDB(scheme, fold_plan=fold_plan)

    def push(self, record: Record) -> None:
        self.db.process(record)

    def push_all(self, records: Iterable[Record]) -> None:
        self.db.process_all(records)

    def combine(self, other: "StreamAggregator") -> None:
        """Merge another aggregator's partial state into this one."""
        self.db.combine(other.db)

    def flush(self, clear: bool = False) -> list[Record]:
        """Render output records; optionally reset the database."""
        out = self.db.flush()
        if clear:
            self.db.clear()
        return out

    @property
    def num_entries(self) -> int:
        return self.db.num_entries

    @property
    def num_processed(self) -> int:
        return self.db.num_processed


def aggregate_records(
    records: Iterable[Record], scheme: AggregationScheme
) -> list[Record]:
    """One-shot aggregation of a record stream (the off-line path)."""
    db = AggregationDB(scheme)
    db.process_all(records)
    return db.flush()


def combine_partials(
    partials: Sequence[AggregationDB], scheme: Optional[AggregationScheme] = None
) -> AggregationDB:
    """Sequentially merge partial databases into a fresh one.

    This is the reference (non-tree) reduction the simulator's tree reduction
    is property-tested against: any combine order must yield equal results.
    """
    if not partials and scheme is None:
        raise ValueError("need at least one partial or an explicit scheme")
    base_scheme = scheme if scheme is not None else partials[0].scheme
    merged = AggregationDB(base_scheme)
    for db in partials:
        merged.combine(db)
    return merged
