"""Compiled per-record fold plans — the aggregation hot-path fast path.

The paper's on-line aggregation costs well under a microsecond per event
because the per-record fold does no allocation and no per-operator dispatch.
The generic :meth:`AggregationDB.process <repro.aggregate.db.AggregationDB.process>`
loop re-resolves every operator argument per record and walks a
``zip(ops, states)`` pair list; a *fold plan* compiles that loop away once
per database:

* each operator gets a **kernel** closure ``kernel(states, entries, record)``
  with its state index and argument label bound at compile time;
* the standard numeric reductions (count / sum / avg / scale /
  percent_total / min / max / variance / stddev) get **monomorphic raw-value
  kernels** that read the record's entry dict directly and fold plain Python
  floats — no ``Variant`` boxing, no ``record.get`` bound-method allocation,
  no ``numeric_or_none`` call;
* all kernels are fused into one ``update(states, record)`` closure
  (unrolled for the common small operator counts).

Operators without a fast kernel (histogram, first, ratio, user-defined ones)
fall back to a kernel that calls their ordinary ``update`` — a compiled plan
is therefore always available and always fold-equivalent to the generic
path, which the property tests in ``tests/aggregate/test_plan_equivalence.py``
enforce over randomized record streams.

Fast kernels must match the generic semantics *exactly*:

* the numeric-input test is the same set of value types
  :func:`~repro.aggregate.ops.numeric_or_none` accepts (int/uint/double,
  plus bool as 0/1);
* values are converted through ``float()`` before any arithmetic that is not
  a plain sum, so e.g. ``variance`` squares the *rounded* double exactly like
  ``Variant.to_double()`` does — folding exact Python ints would diverge.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence

from ..common.errors import AggregationError
from ..common.record import Record
from ..common.variant import ValueType
from .ops import (
    WEIGHT_LABEL,
    AggregateOp,
    AliasedOp,
    AvgOp,
    CountOp,
    MaxOp,
    MinOp,
    PercentTotalOp,
    ScaleOp,
    StddevOp,
    SumOp,
    VarianceOp,
)

__all__ = ["FOLD_PLANS", "FoldPlan", "CompiledFoldPlan", "GenericFoldPlan", "make_plan"]

#: recognised ``fold_plan`` knob values
FOLD_PLANS = ("compiled", "generic")

_INT = ValueType.INT
_UINT = ValueType.UINT
_DOUBLE = ValueType.DOUBLE
_BOOL = ValueType.BOOL

#: a kernel folds one record into the state list cell it owns
Kernel = Callable[[list, dict, Record], None]

#: a weighted kernel additionally receives the record's sampling weight
WeightedKernel = Callable[[list, dict, Record, float], None]


def _weight_value(wv) -> float:
    """The float sampling weight of a ``sample.weight`` entry.

    Non-numeric weights (a stray string entry) fold as 1.0 rather than
    poisoning the aggregate; booleans are excluded on purpose — a bool
    weight is always a bug, never a scale factor.
    """
    t = wv.type
    if t is _DOUBLE or t is _INT or t is _UINT:
        w = wv.value
        return w if w.__class__ is float else float(w)
    return 1.0


# -- monomorphic kernels -------------------------------------------------------
#
# Each factory binds the operator's state index (and argument label) into a
# closure.  ``entries`` is the record's raw ``{label: Variant}`` dict; a
# missing attribute is ``None`` (never an empty Variant — readers drop
# empties), and non-numeric values are skipped, exactly like
# ``numeric_or_none``.

def _count_kernel(op: AggregateOp, index: int) -> Kernel:
    def kernel(states: list, entries: dict, record: Record, _i=index) -> None:
        states[_i][0] += 1

    return kernel


def _sumlike_kernel(op: AggregateOp, index: int) -> Kernel:
    # sum / avg / scale / percent_total share the [count, total] state and
    # the identical update; only their results() rendering differs.
    def kernel(states: list, entries: dict, record: Record,
               _i=index, _lbl=op.args[0]) -> None:
        v = entries.get(_lbl)
        if v is not None:
            t = v.type
            if t is _DOUBLE or t is _INT or t is _UINT or t is _BOOL:
                s = states[_i]
                s[0] += 1
                # float + int rounds the operand exactly like to_double()
                s[1] += v.value

    return kernel


def _min_kernel(op: AggregateOp, index: int) -> Kernel:
    def kernel(states: list, entries: dict, record: Record,
               _i=index, _lbl=op.args[0]) -> None:
        v = entries.get(_lbl)
        if v is not None:
            t = v.type
            if t is _DOUBLE or t is _INT or t is _UINT or t is _BOOL:
                x = v.value
                if x.__class__ is not float:
                    x = float(x)
                s = states[_i]
                cur = s[0]
                if cur is None or x < cur:
                    s[0] = x

    return kernel


def _max_kernel(op: AggregateOp, index: int) -> Kernel:
    def kernel(states: list, entries: dict, record: Record,
               _i=index, _lbl=op.args[0]) -> None:
        v = entries.get(_lbl)
        if v is not None:
            t = v.type
            if t is _DOUBLE or t is _INT or t is _UINT or t is _BOOL:
                x = v.value
                if x.__class__ is not float:
                    x = float(x)
                s = states[_i]
                cur = s[0]
                if cur is None or x > cur:
                    s[0] = x

    return kernel


def _variance_kernel(op: AggregateOp, index: int) -> Kernel:
    def kernel(states: list, entries: dict, record: Record,
               _i=index, _lbl=op.args[0]) -> None:
        v = entries.get(_lbl)
        if v is not None:
            t = v.type
            if t is _DOUBLE or t is _INT or t is _UINT or t is _BOOL:
                x = v.value
                if x.__class__ is not float:
                    x = float(x)
                s = states[_i]
                s[0] += 1
                s[1] += x
                s[2] += x * x

    return kernel


def _grouped_kernel(
    label: str,
    count_idx: Sequence[int],
    sum_idx: Sequence[int],
    min_idx: Sequence[int],
    max_idx: Sequence[int],
    var_idx: Sequence[int],
) -> Kernel:
    """One kernel folding every fast op that reads the same argument label.

    ``sum(x), min(x), max(x)`` on one metric is the paper's canonical
    profiling scheme; sharing the entry lookup, the numeric-type test, and
    the float conversion across those ops is a measurable per-event win.
    Each op still owns its private state cell, so grouping cannot change any
    result.
    """

    def kernel(states: list, entries: dict, record: Record,
               _lbl=label, _counts=tuple(count_idx), _sums=tuple(sum_idx),
               _mins=tuple(min_idx), _maxs=tuple(max_idx),
               _vars=tuple(var_idx),
               _need_float=bool(min_idx or max_idx or var_idx)) -> None:
        # count ops take no argument and fire for every record, so they ride
        # along unconditionally before the entry lookup
        for i in _counts:
            states[i][0] += 1
        v = entries.get(_lbl)
        if v is None:
            return
        t = v.type
        if not (t is _DOUBLE or t is _INT or t is _UINT or t is _BOOL):
            return
        val = v.value
        for i in _sums:
            s = states[i]
            s[0] += 1
            s[1] += val
        if _need_float:
            x = val if val.__class__ is float else float(val)
            for i in _mins:
                s = states[i]
                cur = s[0]
                if cur is None or x < cur:
                    s[0] = x
            for i in _maxs:
                s = states[i]
                cur = s[0]
                if cur is None or x > cur:
                    s[0] = x
            for i in _vars:
                s = states[i]
                s[0] += 1
                s[1] += x
                s[2] += x * x

    return kernel


# -- weighted kernels ----------------------------------------------------------
#
# Mirrors of the fast kernels for records carrying ``sample.weight``: count
# and the [count, total] family scale their contribution by the weight,
# min/max fold the observed value unchanged.  Arithmetic matches the ops'
# ``update_weighted`` exactly (same operand order, same float conversions) so
# compiled and generic plans stay fold-equivalent on weighted streams.

def _count_kernel_w(op: AggregateOp, index: int) -> WeightedKernel:
    def kernel(states: list, entries: dict, record: Record, w: float,
               _i=index) -> None:
        states[_i][0] += w

    return kernel


def _sumlike_kernel_w(op: AggregateOp, index: int) -> WeightedKernel:
    def kernel(states: list, entries: dict, record: Record, w: float,
               _i=index, _lbl=op.args[0]) -> None:
        v = entries.get(_lbl)
        if v is not None:
            t = v.type
            if t is _DOUBLE or t is _INT or t is _UINT or t is _BOOL:
                x = v.value
                if x.__class__ is not float:
                    x = float(x)
                s = states[_i]
                s[0] += w
                s[1] += w * x

    return kernel


def _min_kernel_w(op: AggregateOp, index: int) -> WeightedKernel:
    base = _min_kernel(op, index)

    def kernel(states: list, entries: dict, record: Record, w: float,
               _base=base) -> None:
        _base(states, entries, record)

    return kernel


def _max_kernel_w(op: AggregateOp, index: int) -> WeightedKernel:
    base = _max_kernel(op, index)

    def kernel(states: list, entries: dict, record: Record, w: float,
               _base=base) -> None:
        _base(states, entries, record)

    return kernel


def _variance_kernel_w(op: AggregateOp, index: int) -> WeightedKernel:
    def kernel(states: list, entries: dict, record: Record, w: float,
               _i=index, _lbl=op.args[0]) -> None:
        v = entries.get(_lbl)
        if v is not None:
            t = v.type
            if t is _DOUBLE or t is _INT or t is _UINT or t is _BOOL:
                x = v.value
                if x.__class__ is not float:
                    x = float(x)
                s = states[_i]
                s[0] += w
                s[1] += w * x
                s[2] += w * x * x

    return kernel


def _grouped_kernel_w(
    label: str,
    count_idx: Sequence[int],
    sum_idx: Sequence[int],
    min_idx: Sequence[int],
    max_idx: Sequence[int],
    var_idx: Sequence[int],
) -> WeightedKernel:
    def kernel(states: list, entries: dict, record: Record, w: float,
               _lbl=label, _counts=tuple(count_idx), _sums=tuple(sum_idx),
               _mins=tuple(min_idx), _maxs=tuple(max_idx),
               _vars=tuple(var_idx)) -> None:
        for i in _counts:
            states[i][0] += w
        v = entries.get(_lbl)
        if v is None:
            return
        t = v.type
        if not (t is _DOUBLE or t is _INT or t is _UINT or t is _BOOL):
            return
        x = v.value
        if x.__class__ is not float:
            x = float(x)
        for i in _sums:
            s = states[i]
            s[0] += w
            s[1] += w * x
        for i in _mins:
            s = states[i]
            cur = s[0]
            if cur is None or x < cur:
                s[0] = x
        for i in _maxs:
            s = states[i]
            cur = s[0]
            if cur is None or x > cur:
                s[0] = x
        for i in _vars:
            s = states[i]
            s[0] += w
            s[1] += w * x
            s[2] += w * x * x

    return kernel


#: exact-type dispatch — a user subclass overriding ``update`` must *not*
#: match its parent's fast kernel, so no isinstance here.
_FAST_KERNELS: dict[type, Callable[[AggregateOp, int], Kernel]] = {
    CountOp: _count_kernel,
    SumOp: _sumlike_kernel,
    AvgOp: _sumlike_kernel,
    ScaleOp: _sumlike_kernel,
    PercentTotalOp: _sumlike_kernel,
    MinOp: _min_kernel,
    MaxOp: _max_kernel,
    VarianceOp: _variance_kernel,
    StddevOp: _variance_kernel,
}

_FAST_WEIGHTED: dict[type, Callable[[AggregateOp, int], WeightedKernel]] = {
    CountOp: _count_kernel_w,
    SumOp: _sumlike_kernel_w,
    AvgOp: _sumlike_kernel_w,
    ScaleOp: _sumlike_kernel_w,
    PercentTotalOp: _sumlike_kernel_w,
    MinOp: _min_kernel_w,
    MaxOp: _max_kernel_w,
    VarianceOp: _variance_kernel_w,
    StddevOp: _variance_kernel_w,
}

#: group classification for label-sharing fusion (count has no argument)
_GROUP_KINDS: dict[type, str] = {
    SumOp: "sum",
    AvgOp: "sum",
    ScaleOp: "sum",
    PercentTotalOp: "sum",
    MinOp: "min",
    MaxOp: "max",
    VarianceOp: "var",
    StddevOp: "var",
}


def _fast_kernel_for(op: AggregateOp, index: int) -> Optional[Kernel]:
    # AliasedOp delegates init/update to its inner kernel, so the inner
    # operator's fast kernel is fold-equivalent for it.
    target = op.inner if isinstance(op, AliasedOp) else op
    factory = _FAST_KERNELS.get(type(target))
    if factory is None:
        return None
    return factory(target, index)


def _fallback_kernel(op: AggregateOp, index: int) -> Kernel:
    def kernel(states: list, entries: dict, record: Record,
               _op=op, _i=index) -> None:
        _op.update(states[_i], record.get)

    return kernel


def _fallback_kernel_w(op: AggregateOp, index: int) -> WeightedKernel:
    def kernel(states: list, entries: dict, record: Record, w: float,
               _op=op, _i=index) -> None:
        _op.update_weighted(states[_i], record.get, w)

    return kernel


def _fuse(
    kernels: Sequence[Kernel], wkernels: Sequence[WeightedKernel]
) -> Callable[[list, Record], None]:
    """One ``update(states, record)`` closure running every kernel.

    Unrolled for up to four operators — the profiling schemes the paper
    benchmarks (count/sum/min/max) land here — so the fused body is straight
    calls without loop overhead.  A record carrying ``sample.weight`` (one
    kept by the sampling gate with probability < 1) takes the weighted-kernel
    side branch instead; unweighted streams pay one extra dict lookup.
    """
    wfrozen = tuple(wkernels)

    def weighted(states: list, e: dict, record: Record, wv) -> None:
        w = _weight_value(wv)
        for k in wfrozen:
            k(states, e, record, w)

    _W = WEIGHT_LABEL
    if len(kernels) == 1:
        (k0,) = kernels

        def update(states: list, record: Record) -> None:
            e = record._entries
            wv = e.get(_W)
            if wv is not None:
                weighted(states, e, record, wv)
                return
            k0(states, e, record)

    elif len(kernels) == 2:
        k0, k1 = kernels

        def update(states: list, record: Record) -> None:
            e = record._entries
            wv = e.get(_W)
            if wv is not None:
                weighted(states, e, record, wv)
                return
            k0(states, e, record)
            k1(states, e, record)

    elif len(kernels) == 3:
        k0, k1, k2 = kernels

        def update(states: list, record: Record) -> None:
            e = record._entries
            wv = e.get(_W)
            if wv is not None:
                weighted(states, e, record, wv)
                return
            k0(states, e, record)
            k1(states, e, record)
            k2(states, e, record)

    elif len(kernels) == 4:
        k0, k1, k2, k3 = kernels

        def update(states: list, record: Record) -> None:
            e = record._entries
            wv = e.get(_W)
            if wv is not None:
                weighted(states, e, record, wv)
                return
            k0(states, e, record)
            k1(states, e, record)
            k2(states, e, record)
            k3(states, e, record)

    else:
        frozen = tuple(kernels)

        def update(states: list, record: Record) -> None:
            e = record._entries
            wv = e.get(_W)
            if wv is not None:
                weighted(states, e, record, wv)
                return
            for k in frozen:
                k(states, e, record)

    return update


# -- plan objects --------------------------------------------------------------

class FoldPlan:
    """A per-record fold strategy for one operator tuple.

    Exposes exactly what the streaming database needs per record:
    ``update(states, record)`` (the fused fold) and ``init_states()`` (fresh
    per-key state lists).  ``kind`` and ``num_fast_ops`` describe the plan
    for telemetry.
    """

    kind = "generic"

    __slots__ = ("ops", "update", "num_fast_ops")

    def __init__(self, ops: Sequence[AggregateOp]) -> None:
        self.ops = tuple(ops)

    def init_states(self) -> list[list]:
        return [op.init() for op in self.ops]

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}([{', '.join(op.spec_string() for op in self.ops)}], "
            f"fast={self.num_fast_ops}/{len(self.ops)})"
        )


class GenericFoldPlan(FoldPlan):
    """The reference fold: per-op ``update`` dispatch through ``record.get``."""

    kind = "generic"

    def __init__(self, ops: Sequence[AggregateOp]) -> None:
        super().__init__(ops)
        self.num_fast_ops = 0
        frozen = self.ops

        def update(states: list, record: Record, _W=WEIGHT_LABEL) -> None:
            get = record.get
            wv = record._entries.get(_W)
            if wv is None:
                for op, state in zip(frozen, states):
                    op.update(state, get)
            else:
                w = _weight_value(wv)
                for op, state in zip(frozen, states):
                    op.update_weighted(state, get, w)

        self.update = update


class CompiledFoldPlan(FoldPlan):
    """The fused fold: monomorphic kernels where possible, fallback otherwise."""

    kind = "compiled"

    def __init__(self, ops: Sequence[AggregateOp]) -> None:
        super().__init__(ops)
        # Classify each op: groupable fast ops are collected per argument
        # label; everything else (count, fallbacks, single fast ops) gets an
        # individual kernel.  Kernel order may differ from op order — every
        # op folds into its own state cell, so order cannot matter.
        by_label: dict[str, dict[str, list[int]]] = {}
        counts: list[int] = []
        singles: list[tuple[int, AggregateOp]] = []
        for i, op in enumerate(self.ops):
            target = op.inner if isinstance(op, AliasedOp) else op
            kind = _GROUP_KINDS.get(type(target))
            if kind is not None:
                groups = by_label.setdefault(target.args[0], {})
                groups.setdefault(kind, []).append(i)
            elif type(target) is CountOp:
                counts.append(i)
            else:
                singles.append((i, op))

        kernels: list[Kernel] = []
        wkernels: list[WeightedKernel] = []
        n_fast = len(counts)
        for i, op in singles:
            kernel = _fast_kernel_for(op, i)
            if kernel is None:
                kernels.append(_fallback_kernel(op, i))
                wkernels.append(_fallback_kernel_w(op, i))
            else:
                n_fast += 1
                kernels.append(kernel)
                target = op.inner if isinstance(op, AliasedOp) else op
                wkernels.append(_FAST_WEIGHTED[type(target)](target, i))
        grouped_counts = counts if by_label else []
        for label, groups in by_label.items():
            indices = [i for idx in groups.values() for i in idx]
            n_fast += len(indices)
            if len(indices) == 1 and not grouped_counts:
                # A lone op on this label: its individual kernel is cheaper
                # than the grouped one's empty loops.
                (i,) = indices
                op = self.ops[i]
                target = op.inner if isinstance(op, AliasedOp) else op
                kernels.append(_FAST_KERNELS[type(target)](target, i))
                wkernels.append(_FAST_WEIGHTED[type(target)](target, i))
            else:
                group_args = (
                    label,
                    grouped_counts,
                    groups.get("sum", ()),
                    groups.get("min", ()),
                    groups.get("max", ()),
                    groups.get("var", ()),
                )
                kernels.append(_grouped_kernel(*group_args))
                wkernels.append(_grouped_kernel_w(*group_args))
                # counts ride along with the first grouped kernel only
                grouped_counts = []
        if not by_label:
            for i in counts:
                target = self.ops[i]
                target = target.inner if isinstance(target, AliasedOp) else target
                kernels.append(_count_kernel(target, i))
                wkernels.append(_count_kernel_w(target, i))
        self.num_fast_ops = n_fast
        self.update = _fuse(kernels, wkernels)


def make_plan(ops: Sequence[AggregateOp], kind: str = "compiled") -> FoldPlan:
    """Build a fold plan of the requested ``kind`` (see :data:`FOLD_PLANS`)."""
    if kind == "compiled":
        return CompiledFoldPlan(ops)
    if kind == "generic":
        return GenericFoldPlan(ops)
    raise AggregationError(
        f"unknown fold plan {kind!r} (expected one of: {', '.join(FOLD_PLANS)})"
    )
