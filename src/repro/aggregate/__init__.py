"""The aggregation core: operator kernels, schemes, and the streaming DB.

This package is the paper's primary contribution rendered as a library:
user-composable aggregation schemes (operators + key + predicate) that run
identically on-line (streaming snapshot records), off-line (querying stored
datasets), and across processes (combining partial databases).
"""

from .db import AggregationDB
from .key import InternedKeyExtractor, KeyExtractor, TupleKeyExtractor, make_extractor
from .ops import (
    AggregateOp,
    AvgOp,
    CountOp,
    FirstOp,
    HistogramOp,
    MaxOp,
    MinOp,
    OperatorRegistry,
    PercentTotalOp,
    RatioOp,
    ScaleOp,
    StddevOp,
    SumOp,
    VarianceOp,
    default_registry,
    make_op,
)
from .plan import (
    FOLD_PLANS,
    CompiledFoldPlan,
    FoldPlan,
    GenericFoldPlan,
    make_plan,
)
from .scheme import AggregationScheme
from .stream import StreamAggregator, aggregate_records, combine_partials

__all__ = [
    "AggregationDB",
    "AggregationScheme",
    "FOLD_PLANS",
    "FoldPlan",
    "CompiledFoldPlan",
    "GenericFoldPlan",
    "make_plan",
    "StreamAggregator",
    "aggregate_records",
    "combine_partials",
    "KeyExtractor",
    "TupleKeyExtractor",
    "InternedKeyExtractor",
    "make_extractor",
    "AggregateOp",
    "CountOp",
    "SumOp",
    "MinOp",
    "MaxOp",
    "AvgOp",
    "VarianceOp",
    "StddevOp",
    "HistogramOp",
    "FirstOp",
    "RatioOp",
    "ScaleOp",
    "PercentTotalOp",
    "OperatorRegistry",
    "default_registry",
    "make_op",
]
