"""Aggregation operator kernels.

An operator kernel is the unit of reduction in the paper's aggregation
model: it owns a small mutable *state*, folds input values into it
(:meth:`~AggregateOp.update`, the streaming path used by on-line event
aggregation), merges two partial states (:meth:`~AggregateOp.combine`, the
path used by cross-process tree reduction), and renders the final state into
output record entries (:meth:`~AggregateOp.results`).

``combine`` must be associative and commutative and ``update`` must be
equivalent to combining with a single-value state — the property tests in
``tests/aggregate/test_ops_properties.py`` enforce exactly this, because the
paper's claim that the *same* scheme can run on-line, off-line, or split
across both stages (Section VI-F) rests on these algebraic laws.

The paper's implementation provides ``sum``, ``min``, ``max`` and ``count``;
we add the natural extensions its model admits (``avg``, ``variance``,
``stddev``, ``histogram``, ``first``, ``ratio``, ``scale``, ``percent_total``)
as the framework is explicitly designed to be user-extensible.
"""

from __future__ import annotations

import math
from typing import Callable, Optional, Sequence

from ..common.errors import OperatorError
from ..common.variant import ValueType, Variant

__all__ = [
    "AggregateOp",
    "OpSpec",
    "WEIGHT_LABEL",
    "numeric_or_none",
    "CountOp",
    "SumOp",
    "MinOp",
    "MaxOp",
    "AvgOp",
    "VarianceOp",
    "StddevOp",
    "MomentsOp",
    "HistogramOp",
    "FirstOp",
    "RatioOp",
    "ScaleOp",
    "PercentTotalOp",
    "OperatorRegistry",
    "default_registry",
    "make_op",
]


#: Entry label carrying a record's sampling weight (``1/p`` for a record
#: kept with probability ``p``).  Fold plans detect it per record and route
#: extensive operators (count/sum/avg/variance family) through
#: :meth:`AggregateOp.update_weighted`, which is what keeps sampled
#: aggregates unbiased: a record kept with probability ``p`` stands for
#: ``1/p`` dropped ones (Horvitz–Thompson estimation, the same count-scaling
#: PF-OLA applies to partial aggregates).
WEIGHT_LABEL = "sample.weight"


class AggregateOp:
    """Base class for operator kernels.

    Subclasses are *specifications* (operator + argument labels); the
    per-key mutable state is the plain list returned by :meth:`init`, kept
    outside the kernel so one kernel instance serves every key in the
    aggregation database.
    """

    #: operator name as written in CalQL (e.g. ``sum``)
    name: str = ""
    #: how many attribute-label arguments the operator takes
    arity: int = 1

    def __init__(self, args: Sequence[str] = ()) -> None:
        if len(args) != self.arity:
            raise OperatorError(
                f"operator {self.name!r} takes {self.arity} argument(s), got {len(args)}: {list(args)!r}"
            )
        self.args = tuple(args)

    # -- labels ------------------------------------------------------------

    @property
    def inputs(self) -> tuple[str, ...]:
        """Attribute labels this operator reads from each input record."""
        return self.args

    def output_labels(self) -> list[str]:
        """Labels of the entries :meth:`results` emits."""
        return [f"{self.name}#{self.args[0]}"]

    # -- reduction ----------------------------------------------------------

    def init(self) -> list:
        """A fresh empty state."""
        raise NotImplementedError

    def update(self, state: list, record_get: Callable[[str], Variant]) -> None:
        """Fold one input record (accessed through ``record_get``) into ``state``."""
        raise NotImplementedError

    def update_weighted(
        self, state: list, record_get: Callable[[str], Variant], weight: float
    ) -> None:
        """Fold one record carrying a sampling weight (``sample.weight``).

        Extensive operators (count, sum, avg, variance, ...) override this to
        scale their contribution by ``weight``; operators whose result is a
        property of the *observed* values rather than the population total
        (min, max, first, histogram) inherit this default and fold the record
        as if unweighted.
        """
        self.update(state, record_get)

    def combine(self, state: list, other: list) -> None:
        """Merge partial state ``other`` into ``state`` (other is not modified)."""
        raise NotImplementedError

    def results(self, state: list) -> list[tuple[str, Variant]]:
        """Render ``state`` as output (label, value) entries.

        Empty states (no value ever seen) emit nothing, so grouped results
        never contain spurious zeros for groups an attribute did not occur in.
        """
        raise NotImplementedError

    def state_width(self) -> int:
        """Number of cells in a fresh state (used for wire-size estimates)."""
        return len(self.init())

    def __repr__(self) -> str:
        return f"{type(self).__name__}({', '.join(self.args)})"

    def spec_string(self) -> str:
        """CalQL text for this operator instance, e.g. ``sum(time.duration)``."""
        if not self.args:
            return self.name
        return f"{self.name}({','.join(self.args)})"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, AggregateOp)
            and type(self) is type(other)
            and self.args == other.args
            and getattr(self, "params", None) == getattr(other, "params", None)
        )

    def __hash__(self) -> int:
        return hash((type(self).__name__, self.args))


#: (op-name, argument-labels) pair used before kernel instantiation.
OpSpec = tuple


def numeric_or_none(value: Variant, include_bool: bool = True) -> Optional[float]:
    """The numeric reading the standard kernels fold, or ``None``.

    This is the single definition of "what counts as a numeric input" shared
    by the streaming kernels and the vectorized columnar backend, so both
    engines skip exactly the same records.  ``ratio`` historically excludes
    booleans; everything else folds them as 0/1.
    """
    if value.is_empty:
        return None
    if value.is_numeric or (include_bool and value.type is ValueType.BOOL):
        return value.to_double()
    return None


class CountOp(AggregateOp):
    """``count`` — number of input records per key (no argument)."""

    name = "count"
    arity = 0

    def output_labels(self) -> list[str]:
        return ["count"]

    def init(self) -> list:
        return [0]

    def update(self, state: list, record_get: Callable[[str], Variant]) -> None:
        state[0] += 1

    def update_weighted(
        self, state: list, record_get: Callable[[str], Variant], weight: float
    ) -> None:
        state[0] += weight

    def combine(self, state: list, other: list) -> None:
        state[0] += other[0]

    def results(self, state: list) -> list[tuple[str, Variant]]:
        return [("count", _count_variant(state[0]))]


class _NumericOp(AggregateOp):
    """Shared machinery for single-argument numeric reductions.

    Non-numeric or missing values are skipped (the record simply does not
    contribute), matching the tolerance the flexible data model requires:
    any record may lack any attribute.
    """

    def _get_number(self, record_get: Callable[[str], Variant]) -> Optional[float]:
        return numeric_or_none(record_get(self.args[0]))


class _WeightedSumMixin:
    """``update_weighted`` for the [count, total] state family.

    Sum, avg, scale and percent_total share the same state shape, so one
    weighted fold serves all of them: the count cell accumulates Σw (the
    estimated population count) and the total cell Σw·x.
    """

    def update_weighted(self, state, record_get, weight):
        x = self._get_number(record_get)
        if x is not None:
            state[0] += weight
            state[1] += weight * x


class SumOp(_WeightedSumMixin, _NumericOp):
    """``sum(x)`` — arithmetic sum. State: [count, total]."""

    name = "sum"

    def init(self) -> list:
        return [0, 0.0]

    def update(self, state: list, record_get: Callable[[str], Variant]) -> None:
        x = self._get_number(record_get)
        if x is not None:
            state[0] += 1
            state[1] += x

    def combine(self, state: list, other: list) -> None:
        state[0] += other[0]
        state[1] += other[1]

    def results(self, state: list) -> list[tuple[str, Variant]]:
        if state[0] == 0:
            return []
        return [(self.output_labels()[0], _as_variant(state[1]))]


class MinOp(_NumericOp):
    """``min(x)``. State: [value-or-None]."""

    name = "min"

    def init(self) -> list:
        return [None]

    def update(self, state: list, record_get: Callable[[str], Variant]) -> None:
        x = self._get_number(record_get)
        if x is not None and (state[0] is None or x < state[0]):
            state[0] = x

    def combine(self, state: list, other: list) -> None:
        if other[0] is not None and (state[0] is None or other[0] < state[0]):
            state[0] = other[0]

    def results(self, state: list) -> list[tuple[str, Variant]]:
        if state[0] is None:
            return []
        return [(self.output_labels()[0], _as_variant(state[0]))]


class MaxOp(_NumericOp):
    """``max(x)``. State: [value-or-None]."""

    name = "max"

    def init(self) -> list:
        return [None]

    def update(self, state: list, record_get: Callable[[str], Variant]) -> None:
        x = self._get_number(record_get)
        if x is not None and (state[0] is None or x > state[0]):
            state[0] = x

    def combine(self, state: list, other: list) -> None:
        if other[0] is not None and (state[0] is None or other[0] > state[0]):
            state[0] = other[0]

    def results(self, state: list) -> list[tuple[str, Variant]]:
        if state[0] is None:
            return []
        return [(self.output_labels()[0], _as_variant(state[0]))]


class AvgOp(_WeightedSumMixin, _NumericOp):
    """``avg(x)`` — arithmetic mean. State: [count, total].

    The count is carried in the state (not derived from ``count``'s output)
    so partial averages combine exactly in cross-process reduction.
    """

    name = "avg"

    def init(self) -> list:
        return [0, 0.0]

    def update(self, state: list, record_get: Callable[[str], Variant]) -> None:
        x = self._get_number(record_get)
        if x is not None:
            state[0] += 1
            state[1] += x

    def combine(self, state: list, other: list) -> None:
        state[0] += other[0]
        state[1] += other[1]

    def results(self, state: list) -> list[tuple[str, Variant]]:
        if state[0] == 0:
            return []
        return [(self.output_labels()[0], Variant(ValueType.DOUBLE, state[1] / state[0]))]


class VarianceOp(_NumericOp):
    """``variance(x)`` — population variance.

    State: [n, sum, sum-of-squares]; combined exactly.  Sum-of-squares is
    adequate at profiling magnitudes and keeps ``combine`` a 3-add merge.
    """

    name = "variance"

    def init(self) -> list:
        return [0, 0.0, 0.0]

    def update(self, state: list, record_get: Callable[[str], Variant]) -> None:
        x = self._get_number(record_get)
        if x is not None:
            state[0] += 1
            state[1] += x
            state[2] += x * x

    def update_weighted(
        self, state: list, record_get: Callable[[str], Variant], weight: float
    ) -> None:
        x = self._get_number(record_get)
        if x is not None:
            state[0] += weight
            state[1] += weight * x
            state[2] += weight * x * x

    def combine(self, state: list, other: list) -> None:
        state[0] += other[0]
        state[1] += other[1]
        state[2] += other[2]

    def _variance(self, state: list) -> Optional[float]:
        n = state[0]
        if n == 0:
            return None
        mean = state[1] / n
        # Guard tiny negative values from floating-point cancellation.
        return max(0.0, state[2] / n - mean * mean)

    def results(self, state: list) -> list[tuple[str, Variant]]:
        var = self._variance(state)
        if var is None:
            return []
        return [(self.output_labels()[0], Variant(ValueType.DOUBLE, var))]


class StddevOp(VarianceOp):
    """``stddev(x)`` — population standard deviation (shares variance state)."""

    name = "stddev"

    def results(self, state: list) -> list[tuple[str, Variant]]:
        var = self._variance(state)
        if var is None:
            return []
        return [(self.output_labels()[0], Variant(ValueType.DOUBLE, math.sqrt(var)))]


class MomentsOp(VarianceOp):
    """``est_moments(x)`` — hidden moment accumulator for online estimates.

    Shares the exact [n, sum, sum-of-squares] state (and wire encoding) of
    ``variance`` but emits *no* output entries: the windowed estimator layer
    reads the raw state to build CLT confidence intervals for open windows.
    It is registered so augmented scheme text round-trips through
    ``parse_scheme`` across relay handshakes and spool replay.
    """

    name = "est_moments"

    def output_labels(self) -> list[str]:
        return []

    def results(self, state: list) -> list[tuple[str, Variant]]:
        return []


class HistogramOp(_NumericOp):
    """``histogram(x, bins, lo, hi)`` — fixed-range histogram.

    State: [underflow, b0, ..., b(n-1), overflow, count].  The output is a
    single string entry ``histogram#x`` of the form ``lo:hi:u|c0,..,cn-1|o``
    (compact, round-trips through every file format); use :meth:`decode`
    to get the bin counts back.

    Fixed ranges keep ``combine`` an element-wise add, which is what the
    cross-process reduction tree needs; adaptive-range sketches would not
    merge exactly.
    """

    name = "histogram"
    arity = 1

    def __init__(self, args: Sequence[str] = (), bins: int = 10,
                 lo: float = 0.0, hi: float = 1.0) -> None:
        super().__init__(args)
        if bins < 1:
            raise OperatorError(f"histogram needs at least 1 bin, got {bins}")
        if not (hi > lo):
            raise OperatorError(f"histogram needs hi > lo, got [{lo}, {hi})")
        self.bins = bins
        self.lo = float(lo)
        self.hi = float(hi)
        self.params = (bins, self.lo, self.hi)
        self._scale = bins / (self.hi - self.lo)

    def spec_string(self) -> str:
        return f"histogram({self.args[0]},{self.bins},{_num_str(self.lo)},{_num_str(self.hi)})"

    def init(self) -> list:
        return [0] * (self.bins + 2)

    def update(self, state: list, record_get: Callable[[str], Variant]) -> None:
        x = self._get_number(record_get)
        if x is None or x != x:
            # NaN fits no bin (both range comparisons are false); drop it
            # like a non-numeric value instead of crashing in int().
            return
        if x < self.lo:
            state[0] += 1
        elif x >= self.hi:
            state[self.bins + 1] += 1
        else:
            state[1 + int((x - self.lo) * self._scale)] += 1

    def combine(self, state: list, other: list) -> None:
        for i, c in enumerate(other):
            state[i] += c

    def results(self, state: list) -> list[tuple[str, Variant]]:
        if not any(state):
            return []
        body = ",".join(str(c) for c in state[1 : self.bins + 1])
        text = f"{_num_str(self.lo)}:{_num_str(self.hi)}:{state[0]}|{body}|{state[self.bins + 1]}"
        return [(self.output_labels()[0], Variant(ValueType.STRING, text))]

    @staticmethod
    def decode(text: str) -> tuple[float, float, int, list[int], int]:
        """Parse an encoded histogram: (lo, hi, underflow, bins, overflow)."""
        try:
            lo_s, hi_s, rest = text.split(":", 2)
            under_s, body, over_s = rest.split("|")
            bins = [int(c) for c in body.split(",")] if body else []
            return float(lo_s), float(hi_s), int(under_s), bins, int(over_s)
        except ValueError as exc:
            raise OperatorError(f"malformed histogram encoding: {text!r}") from exc

    @staticmethod
    def quantile(text: str, q: float) -> float:
        """Estimate the ``q``-quantile from an encoded histogram.

        Linear interpolation within the containing bin; underflow clamps to
        ``lo`` and overflow to ``hi``.  The estimate is exact when values are
        uniform within bins, and its error is bounded by one bin width —
        sufficient for the "compact representation of the input value
        distribution" role the paper assigns to histogram reduction.
        """
        if not (0.0 <= q <= 1.0):
            raise OperatorError(f"quantile must be in [0, 1], got {q}")
        lo, hi, under, bins, over = HistogramOp.decode(text)
        total = under + sum(bins) + over
        if total == 0:
            raise OperatorError("cannot take a quantile of an empty histogram")
        target = q * total
        if target <= under:
            return lo
        cumulative = float(under)
        width = (hi - lo) / len(bins) if bins else 0.0
        for i, count in enumerate(bins):
            if count and target <= cumulative + count:
                fraction = (target - cumulative) / count
                return lo + (i + fraction) * width
            cumulative += count
        return hi


class FirstOp(AggregateOp):
    """``first(x)`` — first non-empty value seen (any type).

    Combine keeps the receiving side's value, so cross-process results pick
    a deterministic representative given a deterministic reduction order.
    """

    name = "first"

    def init(self) -> list:
        return [None]

    def update(self, state: list, record_get: Callable[[str], Variant]) -> None:
        if state[0] is None:
            v = record_get(self.args[0])
            if not v.is_empty:
                state[0] = v

    def combine(self, state: list, other: list) -> None:
        if state[0] is None and other[0] is not None:
            state[0] = other[0]

    def results(self, state: list) -> list[tuple[str, Variant]]:
        if state[0] is None:
            return []
        return [(self.output_labels()[0], state[0])]


class RatioOp(AggregateOp):
    """``ratio(x, y)`` — sum(x) / sum(y) per key. State: [sum_x, sum_y]."""

    name = "ratio"
    arity = 2

    def output_labels(self) -> list[str]:
        return [f"ratio#{self.args[0]}/{self.args[1]}"]

    def init(self) -> list:
        return [0.0, 0.0]

    def update(self, state: list, record_get: Callable[[str], Variant]) -> None:
        x = numeric_or_none(record_get(self.args[0]), include_bool=False)
        y = numeric_or_none(record_get(self.args[1]), include_bool=False)
        if x is not None:
            state[0] += x
        if y is not None:
            state[1] += y

    def update_weighted(
        self, state: list, record_get: Callable[[str], Variant], weight: float
    ) -> None:
        x = numeric_or_none(record_get(self.args[0]), include_bool=False)
        y = numeric_or_none(record_get(self.args[1]), include_bool=False)
        if x is not None:
            state[0] += weight * x
        if y is not None:
            state[1] += weight * y

    def combine(self, state: list, other: list) -> None:
        state[0] += other[0]
        state[1] += other[1]

    def results(self, state: list) -> list[tuple[str, Variant]]:
        if state[1] == 0.0:
            return []
        return [(self.output_labels()[0], Variant(ValueType.DOUBLE, state[0] / state[1]))]


class ScaleOp(_WeightedSumMixin, _NumericOp):
    """``scale(x, factor)`` — sum(x) * factor.

    Used e.g. to convert sample counts to seconds given a sampling period
    (Section VI-B computes CPU time from 100 Hz sample counts this way).
    """

    name = "scale"
    arity = 1

    def __init__(self, args: Sequence[str] = (), factor: float = 1.0) -> None:
        super().__init__(args)
        self.factor = float(factor)
        self.params = (self.factor,)

    def spec_string(self) -> str:
        return f"scale({self.args[0]},{_num_str(self.factor)})"

    def init(self) -> list:
        return [0, 0.0]

    def update(self, state: list, record_get: Callable[[str], Variant]) -> None:
        x = self._get_number(record_get)
        if x is not None:
            state[0] += 1
            state[1] += x

    def combine(self, state: list, other: list) -> None:
        state[0] += other[0]
        state[1] += other[1]

    def results(self, state: list) -> list[tuple[str, Variant]]:
        if state[0] == 0:
            return []
        return [(self.output_labels()[0], Variant(ValueType.DOUBLE, state[1] * self.factor))]


class PercentTotalOp(_WeightedSumMixin, _NumericOp):
    """``percent_total(x)`` — this key's share of the global sum of ``x``.

    The per-key state is an ordinary sum; the global total is resolved in a
    finalization pass by the aggregation database (see
    :meth:`~repro.aggregate.db.AggregationDB.flush`), because no purely
    per-key kernel can know it.
    """

    name = "percent_total"

    #: flag checked by the DB's flush pass
    needs_global_total = True

    def init(self) -> list:
        return [0, 0.0]

    def update(self, state: list, record_get: Callable[[str], Variant]) -> None:
        x = self._get_number(record_get)
        if x is not None:
            state[0] += 1
            state[1] += x

    def combine(self, state: list, other: list) -> None:
        state[0] += other[0]
        state[1] += other[1]

    def results(self, state: list) -> list[tuple[str, Variant]]:
        # Without the global total we can only report the raw share; the DB
        # rewrites this with the proper percentage at flush time.
        if state[0] == 0:
            return []
        return [(self.output_labels()[0], Variant(ValueType.DOUBLE, state[1]))]

    def results_with_total(self, state: list, total: float) -> list[tuple[str, Variant]]:
        if state[0] == 0:
            return []
        pct = 100.0 * state[1] / total if total != 0.0 else 0.0
        return [(self.output_labels()[0], Variant(ValueType.DOUBLE, pct))]


class AliasedOp(AggregateOp):
    """Renames another operator's output column (CalQL ``AS``).

    Delegates all reduction behaviour to the wrapped kernel; only the output
    label changes.  Restricted to single-output operators (every built-in).
    """

    arity = -1  # constructed programmatically, never from the registry

    def __init__(self, inner: AggregateOp, alias: str) -> None:
        if len(inner.output_labels()) != 1:
            raise OperatorError(
                f"cannot alias {inner.spec_string()!r}: it has "
                f"{len(inner.output_labels())} output columns"
            )
        self.inner = inner
        self.alias = alias
        self.args = inner.args
        self.name = inner.name
        self.params = getattr(inner, "params", None)

    @property
    def needs_global_total(self) -> bool:
        return bool(getattr(self.inner, "needs_global_total", False))

    def output_labels(self) -> list[str]:
        return [self.alias]

    def spec_string(self) -> str:
        return f"{self.inner.spec_string()} AS {self.alias}"

    def init(self) -> list:
        return self.inner.init()

    def update(self, state: list, record_get: Callable[[str], Variant]) -> None:
        self.inner.update(state, record_get)

    def update_weighted(
        self, state: list, record_get: Callable[[str], Variant], weight: float
    ) -> None:
        self.inner.update_weighted(state, record_get, weight)

    def combine(self, state: list, other: list) -> None:
        self.inner.combine(state, other)

    def _rename(self, results: list[tuple[str, Variant]]) -> list[tuple[str, Variant]]:
        return [(self.alias, value) for _label, value in results]

    def results(self, state: list) -> list[tuple[str, Variant]]:
        return self._rename(self.inner.results(state))

    def results_with_total(self, state: list, total: float) -> list[tuple[str, Variant]]:
        return self._rename(self.inner.results_with_total(state, total))  # type: ignore[attr-defined]

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, AliasedOp)
            and self.alias == other.alias
            and self.inner == other.inner
        )

    def __hash__(self) -> int:
        return hash(("alias", self.alias, self.inner))


def _as_variant(x: float) -> Variant:
    # Non-finite sums (overflow to inf, nan inputs) have no int form.
    if math.isfinite(x) and x == int(x):
        return Variant(ValueType.INT, int(x))
    return Variant(ValueType.DOUBLE, x)


def _count_variant(n) -> Variant:
    # Unweighted counts are exact ints; weighted counts (Σ 1/p) are floats.
    # Integral floats still render as UINT so a sampled profile keeps the
    # column type of an unsampled one whenever the estimate lands on a whole
    # number; fractional estimates surface as DOUBLE.
    if n.__class__ is int:
        return Variant(ValueType.UINT, n)
    f = float(n)
    if math.isfinite(f) and f == int(f):
        return Variant(ValueType.UINT, int(f))
    return Variant(ValueType.DOUBLE, f)


def _num_str(x: float) -> str:
    return str(int(x)) if math.isfinite(x) and x == int(x) else repr(x)


class OperatorRegistry:
    """Maps operator names to kernel factories.

    Users can register their own kernels — this is the extension point the
    paper's "user-defined aggregation schemes" motivate.  A factory receives
    the positional argument list from the CalQL text (labels first, then any
    numeric parameters) and returns an :class:`AggregateOp`.
    """

    def __init__(self) -> None:
        self._factories: dict[str, Callable[..., AggregateOp]] = {}

    def register(self, name: str, factory: Callable[..., AggregateOp]) -> None:
        if name in self._factories:
            raise OperatorError(f"operator {name!r} is already registered")
        self._factories[name] = factory

    def known(self) -> list[str]:
        return sorted(self._factories)

    def __contains__(self, name: str) -> bool:
        return name in self._factories

    def create(self, name: str, args: Sequence[str] = ()) -> AggregateOp:
        """Instantiate operator ``name`` with raw CalQL arguments.

        Numeric-looking trailing arguments are passed as parameters for
        parameterized operators (histogram bins/range, scale factor).
        """
        factory = self._factories.get(name)
        if factory is None:
            raise OperatorError(
                f"unknown aggregation operator {name!r}; known: {', '.join(self.known())}"
            )
        return factory(list(args))


def _make_histogram(args: list[str]) -> HistogramOp:
    if not args:
        raise OperatorError("histogram requires an attribute argument")
    label, params = args[0], args[1:]
    if len(params) not in (0, 1, 3):
        raise OperatorError(
            "histogram takes (attr), (attr,bins) or (attr,bins,lo,hi); "
            f"got {len(args)} arguments"
        )
    bins = int(params[0]) if params else 10
    lo = float(params[1]) if len(params) == 3 else 0.0
    hi = float(params[2]) if len(params) == 3 else 1.0
    return HistogramOp([label], bins=bins, lo=lo, hi=hi)


def _make_scale(args: list[str]) -> ScaleOp:
    if len(args) != 2:
        raise OperatorError(f"scale takes (attr, factor); got {len(args)} arguments")
    return ScaleOp([args[0]], factor=float(args[1]))


def default_registry() -> OperatorRegistry:
    """A registry with every built-in operator."""
    reg = OperatorRegistry()
    reg.register("count", lambda args: CountOp(args))
    reg.register("sum", lambda args: SumOp(args))
    reg.register("min", lambda args: MinOp(args))
    reg.register("max", lambda args: MaxOp(args))
    reg.register("avg", lambda args: AvgOp(args))
    reg.register("mean", lambda args: AvgOp(args))  # alias
    reg.register("variance", lambda args: VarianceOp(args))
    reg.register("stddev", lambda args: StddevOp(args))
    reg.register("est_moments", lambda args: MomentsOp(args))
    reg.register("histogram", _make_histogram)
    reg.register("first", lambda args: FirstOp(args))
    reg.register("any", lambda args: FirstOp(args))  # alias
    reg.register("ratio", lambda args: RatioOp(args))
    reg.register("scale", _make_scale)
    reg.register("percent_total", lambda args: PercentTotalOp(args))
    return reg


_DEFAULT = default_registry()


def make_op(name: str, args: Sequence[str] = ()) -> AggregateOp:
    """Instantiate a built-in operator by name."""
    return _DEFAULT.create(name, args)
