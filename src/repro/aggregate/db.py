"""The in-memory aggregation database.

This is the heart of the paper's Section IV-B: a hash table mapping each
unique aggregation key to an *aggregation record* — the intermediate
reduction state of every operator.  ``process`` is the streaming path (one
call per snapshot record, never storing the input); ``combine`` merges two
databases (the cross-process reduction step); ``flush`` reconstructs the key
attributes and renders operator results, producing one output record per
unique key.

The implementation is deliberately allocation-light: operator kernels are
shared across keys, per-key state is a flat list of small lists, and the hot
loop does one dict lookup plus one fused fold (see
:mod:`repro.aggregate.plan`).  The ``fold_plan`` knob selects between the
compiled fast path (default) and the reference ``generic`` per-operator
dispatch loop used for equivalence testing.
"""

from __future__ import annotations

from typing import Hashable, Iterable, Iterator, Optional

from .. import observe
from ..common.errors import AggregationError
from ..common.record import Record
from ..common.variant import Variant
from .key import TupleKeyExtractor, make_extractor
from .scheme import AggregationScheme

__all__ = ["AggregationDB"]


class AggregationDB:
    """Streaming aggregation over one :class:`AggregationScheme`.

    >>> scheme = AggregationScheme(ops=["count"], key=["function"])
    >>> db = AggregationDB(scheme)
    >>> db.process(Record({"function": "foo"}))
    >>> db.process(Record({"function": "foo"}))
    >>> [r.to_plain() for r in db.flush()]
    [{'function': 'foo', 'count': 2}]
    """

    def __init__(self, scheme: AggregationScheme, fold_plan: str = "compiled") -> None:
        self.scheme = scheme
        self._ops = scheme.fresh_kernels()
        self._extractor = make_extractor(scheme.key, scheme.key_strategy)
        self._table: dict[Hashable, list[list]] = {}
        # Cached once: the MPI network model calls wire_size() per message,
        # and re-running every kernel's init() there is measurable overhead.
        self._state_cells = sum(op.state_width() for op in self._ops)
        #: records offered to the DB (including ones rejected by the predicate)
        self.num_offered = 0
        #: records actually folded into some aggregation entry
        self.num_processed = 0
        #: bumped whenever :meth:`clear` drops the table, so external caches
        #: holding state-list references (the aggregate service's key cache)
        #: know their entries went stale
        self.table_epoch = 0
        #: highest state-batch sequence merged per ``(source id, source epoch)``
        #: — see the ``source`` argument of :meth:`load_states`
        self._source_seqs: dict[tuple[str, str], int] = {}
        # Per-stream invariants, bound once — never re-resolved per record.
        self._predicate = scheme.predicate
        self._extract = self._extractor.extract
        self._plan = scheme.compile(fold_plan)
        #: resolved fold strategy, ``compiled`` or ``generic``
        self.fold_plan = self._plan.kind
        if self._plan.kind == "compiled":
            # Shadow the generic method with the fused closure: zero dispatch
            # overhead on the per-record path.
            self.process = self._make_compiled_process()
        observe.count(
            "aggregate.plan", plan=self.fold_plan, fast_ops=self._plan.num_fast_ops
        )

    # -- streaming path ------------------------------------------------------

    def process(self, record: Record) -> None:
        """Fold one input record into the database (generic fold plan)."""
        self.num_offered += 1
        predicate = self._predicate
        if predicate is not None and not predicate(record):
            return
        self.num_processed += 1
        key = self._extract(record)
        table = self._table
        states = table.get(key)
        if states is None:
            states = [op.init() for op in self._ops]
            table[key] = states
        # The plan's fused update (rather than a local zip loop) so that
        # per-record concerns it owns — sample.weight detection — apply on
        # this path too.
        self._plan.update(states, record)

    def _make_compiled_process(self):
        """The fused per-record fold closure (the paper's sub-µs hot path)."""
        table = self._table
        extract = self._extract
        predicate = self._predicate
        update = self._plan.update
        init_states = self._plan.init_states
        if predicate is None:

            def process(record: Record, _db=self) -> None:
                _db.num_offered += 1
                _db.num_processed += 1
                key = extract(record)
                states = table.get(key)
                if states is None:
                    states = init_states()
                    table[key] = states
                update(states, record)

        else:

            def process(record: Record, _db=self) -> None:
                _db.num_offered += 1
                if not predicate(record):
                    return
                _db.num_processed += 1
                key = extract(record)
                states = table.get(key)
                if states is None:
                    states = init_states()
                    table[key] = states
                update(states, record)

        return process

    def process_all(self, records: Iterable[Record]) -> None:
        """Fold a whole record stream (convenience for the off-line path).

        Loop invariants (table, extractor, plan, counters) are hoisted out of
        the per-record iteration for both fold plans.
        """
        table = self._table
        extract = self._extract
        predicate = self._predicate
        update = self._plan.update
        init_states = self._plan.init_states
        offered = 0
        processed = 0
        for record in records:
            offered += 1
            if predicate is not None and not predicate(record):
                continue
            processed += 1
            key = extract(record)
            states = table.get(key)
            if states is None:
                states = init_states()
                table[key] = states
            update(states, record)
        self.num_offered += offered
        self.num_processed += processed

    # -- externally cached folding (the aggregate service's key cache) ---------

    def lookup_states(self, record: Record) -> list[list]:
        """The (created-if-missing) state lists for ``record``'s key.

        Splitting lookup from :meth:`update_states` lets the on-line
        aggregation service cache the returned list against its blackboard
        context and skip key extraction entirely on cache hits.  Stream
        counters are *not* touched here — cache-owning callers maintain them.
        """
        key = self._extract(record)
        states = self._table.get(key)
        if states is None:
            states = self._plan.init_states()
            self._table[key] = states
        return states

    def update_states(self, states: list[list], record: Record) -> None:
        """Fold ``record`` into already-looked-up ``states`` via the plan."""
        self._plan.update(states, record)

    @property
    def plan(self):
        """The active fold plan (see :mod:`repro.aggregate.plan`)."""
        return self._plan

    # -- combine path (cross-process reduction) -------------------------------

    def combine(self, other: "AggregationDB") -> None:
        """Merge ``other``'s partial results into this database.

        Both databases must use the same scheme (same operators and key).
        ``other`` is left unmodified.
        """
        if other.scheme.key != self.scheme.key or other.scheme.ops != self.scheme.ops:
            raise AggregationError(
                "cannot combine aggregation databases with different schemes: "
                f"{self.scheme.describe()!r} vs {other.scheme.describe()!r}"
            )
        for key, other_states in other._iter_rekeyed(self._extractor):
            states = self._table.get(key)
            if states is None:
                # Deep-copy the states so later combines into self never
                # alias other's mutable state lists.
                self._table[key] = [list(s) for s in other_states]
            else:
                for op, state, ostate in zip(self._ops, states, other_states):
                    op.combine(state, ostate)
        # Carry the stream counters so a combined DB reports how many input
        # records it stands for.
        self.num_offered += other.num_offered
        self.num_processed += other.num_processed

    def _iter_rekeyed(self, extractor) -> Iterator[tuple[Hashable, list[list]]]:
        """Yield (key-under-``extractor``, states) for every entry.

        Interned keys are only meaningful relative to their own extractor's
        tables, so combining re-interns via the entries round-trip.  Tuple
        keys pass through untouched when both sides use the same strategy.
        """
        passthrough = (
            isinstance(extractor, TupleKeyExtractor)
            and isinstance(self._extractor, TupleKeyExtractor)
            and extractor.key_labels == self._extractor.key_labels
        )
        for key, states in self._table.items():
            if passthrough:
                yield key, states
            else:
                entries = self._extractor.entries(key)
                rec = Record.from_variants(dict(entries))
                yield extractor.extract(rec), states

    # -- partial-state transfer (columnar backend, process pools) ----------------

    def export_states(self) -> list[tuple[dict[str, Variant], list[list]]]:
        """Portable ``(key entries, operator states)`` pairs for every entry.

        Keys are rendered back to their attribute entries so the
        representation is meaningful across processes and key strategies
        (interned ids are only valid relative to their own extractor).  The
        states are the live lists — callers transferring between processes
        get fresh copies from pickling anyway; same-process callers must
        treat them as read-only.
        """
        entries_of = self._extractor.entries
        return [
            (dict(entries_of(key)), states) for key, states in self._table.items()
        ]

    def load_states(
        self,
        groups: Iterable[tuple[dict[str, Variant], list[list]]],
        offered: int = 0,
        processed: int = 0,
        source: Optional[tuple[str, str, int]] = None,
    ) -> bool:
        """Merge externally computed per-key partial states into this DB.

        The inverse of :meth:`export_states` with :meth:`combine` semantics:
        states for keys already present are merged through each operator's
        ``combine``; new keys get deep-copied state lists.  ``offered`` /
        ``processed`` carry the producing side's stream counters.

        ``source`` makes the merge idempotent per producer incarnation: a
        ``(source id, source epoch, sequence number)`` triple is remembered,
        and a batch whose sequence does not advance past the last one merged
        from that ``(id, epoch)`` is skipped entirely — so replaying a
        networked state stream (lost ACK, spool replay) can never
        double-count, no matter how many layers the batch travelled through.
        A new epoch from the same id starts a fresh sequence space.

        Returns True when the batch was merged, False when it was skipped
        as a duplicate.
        """
        if source is not None:
            source_id, source_epoch, seq = source
            ident = (source_id, source_epoch)
            if seq <= self._source_seqs.get(ident, -1):
                return False
            self._source_seqs[ident] = seq
        extract = self._extractor.extract
        for entries, in_states in groups:
            key = extract(Record.from_variants(dict(entries)))
            states = self._table.get(key)
            if states is None:
                self._table[key] = [list(s) for s in in_states]
            else:
                for op, state, other in zip(self._ops, states, in_states):
                    op.combine(state, other)
        self.num_offered += offered
        self.num_processed += processed
        return True

    def combine_records(self, records: Iterable[Record]) -> None:
        """Re-aggregate already-flushed output records into this database.

        This supports the two-stage workflows of Section VI-B, where a second
        aggregation runs over the *outputs* of a first one (e.g.
        ``AGGREGATE sum(aggregate.count) GROUP BY kernel`` over per-process
        profiles).  It is ordinary :meth:`process`-ing — provided here for
        symmetry and intent.
        """
        self.process_all(records)

    # -- flush ----------------------------------------------------------------

    def flush(self) -> list[Record]:
        """Render one output record per unique aggregation key.

        Key attributes are reconstructed from the lookup key; operator
        results are appended.  Operators flagged ``needs_global_total``
        (percent_total) get a second pass with the total across all keys.
        """
        totals: dict[int, float] = {}
        for i, op in enumerate(self._ops):
            if getattr(op, "needs_global_total", False):
                totals[i] = sum(states[i][1] for states in self._table.values())

        out: list[Record] = []
        entries_of = self._extractor.entries
        for key, states in self._table.items():
            data: dict[str, Variant] = dict(entries_of(key))
            for i, (op, state) in enumerate(zip(self._ops, states)):
                if i in totals:
                    results = op.results_with_total(state, totals[i])  # type: ignore[attr-defined]
                else:
                    results = op.results(state)
                for label, value in results:
                    data[label] = value
            out.append(Record.from_variants(data))
        return out

    def clear(self) -> None:
        """Drop all entries (counters are kept)."""
        self._table.clear()
        # Cached state-list references (key caches) are now dangling; the
        # epoch bump tells their owners to drop them.
        self.table_epoch += 1

    def pop_entries(self, predicate) -> list[tuple[dict[str, Variant], list[list]]]:
        """Remove entries matching ``predicate`` and export them.

        ``predicate`` receives each entry's reconstructed key attributes
        (``{label: Variant}``) and returns True to pop it.  Popped entries
        are returned in :meth:`export_states` form (the states are the live
        lists — the entry no longer belongs to this DB, so the caller owns
        them).  Windowed aggregation uses this to retire closed windows and
        free their state.
        """
        entries_of = self._extractor.entries
        doomed = []
        for key in self._table:
            entries = dict(entries_of(key))
            if predicate(entries):
                doomed.append((key, entries))
        if not doomed:
            return []
        out = [(entries, self._table.pop(key)) for key, entries in doomed]
        # Popped state lists may be cached by compiled fold closures; the
        # epoch bump invalidates those caches exactly like clear().
        self.table_epoch += 1
        return out

    # -- introspection ---------------------------------------------------------

    def __len__(self) -> int:
        """Number of unique aggregation keys currently held."""
        return len(self._table)

    @property
    def num_entries(self) -> int:
        return len(self._table)

    @property
    def num_partial_keys(self) -> int:
        """Entries whose records lacked one or more GROUP BY attributes.

        Computed lazily by scanning the table (key-extraction misses must
        not cost anything on the per-record hot path); the observability
        layer surfaces this as ``db.key_misses`` in channel stats records.
        """
        n_labels = len(self._extractor.key_labels)
        if n_labels == 0:
            return 0
        entries_of = self._extractor.entries
        return sum(1 for key in self._table if len(entries_of(key)) < n_labels)

    def memory_footprint(self) -> int:
        """Rough number of state cells held (for the overhead study)."""
        return sum(sum(len(s) for s in states) for states in self._table.values())

    def wire_size(self) -> int:
        """Estimated serialized size in bytes (used by the MPI simulator's
        network model when partial databases travel up the reduction tree).

        Estimate: 8 bytes per key slot and per operator state cell, plus a
        small fixed header per entry.  Only relative magnitudes matter — the
        network model multiplies this by a bandwidth term.
        """
        key_width = max(1, len(self.scheme.key))
        return 16 + len(self._table) * (8 * key_width + 8 * self._state_cells + 8)

    def __repr__(self) -> str:
        return (
            f"AggregationDB({self.scheme.describe()!r}, entries={len(self)}, "
            f"processed={self.num_processed})"
        )
