"""Aggregation-key extraction and interning.

The aggregation key is the GROUP BY part of a scheme: the tuple of values of
the key attributes in an input record.  Records missing some or all key
attributes still aggregate — they get their own entries, exactly as the
paper's Section III-B table shows rows "where only one or none of the key
attributes were set".

Two interchangeable strategies are provided (and compared in the
``bench_ablation_key`` benchmark):

:class:`TupleKeyExtractor`
    The key is the tuple of :class:`Variant` values (``None`` for missing).
    Simple, no auxiliary state.

:class:`InternedKeyExtractor`
    Mirrors the paper's "compact, collision-free hash value": every distinct
    value of each key attribute is interned to a small integer, and the
    integer tuple is interned again to a single composite id.  The database
    is then keyed by one machine integer, and the key attributes are
    *reconstructed from the lookup hash* at flush time — the same flush
    procedure Section IV-B describes.  Collision-freedom is by construction
    (interning, not hashing).
"""

from __future__ import annotations

from typing import Hashable, Sequence

from ..common.record import Record
from ..common.variant import Variant

__all__ = ["KeyExtractor", "TupleKeyExtractor", "InternedKeyExtractor", "make_extractor"]

#: sentinel index for "attribute not present in the record"
_MISSING = -1


class KeyExtractor:
    """Interface: record -> hashable key, and key -> entries (for flush)."""

    def __init__(self, key_labels: Sequence[str]) -> None:
        self.key_labels = tuple(key_labels)

    def extract(self, record: Record) -> Hashable:
        raise NotImplementedError

    def entries(self, key: Hashable) -> list[tuple[str, Variant]]:
        """Reconstruct the (label, value) pairs a key stands for."""
        raise NotImplementedError


class TupleKeyExtractor(KeyExtractor):
    """Key = tuple of values (None where the attribute is absent)."""

    def extract(self, record: Record) -> tuple:
        get = record.get
        empty = Variant.empty()
        return tuple(
            v if (v := get(lbl, empty)) is not empty and not v.is_empty else None
            for lbl in self.key_labels
        )

    def entries(self, key: tuple) -> list[tuple[str, Variant]]:
        return [
            (lbl, value)
            for lbl, value in zip(self.key_labels, key)
            if value is not None
        ]


class InternedKeyExtractor(KeyExtractor):
    """Key = composite integer id, collision-free via two-level interning."""

    def __init__(self, key_labels: Sequence[str]) -> None:
        super().__init__(key_labels)
        # per-attribute value interning
        self._value_ids: list[dict[Variant, int]] = [{} for _ in self.key_labels]
        self._values: list[list[Variant]] = [[] for _ in self.key_labels]
        # composite interning
        self._composite_ids: dict[tuple[int, ...], int] = {}
        self._composites: list[tuple[int, ...]] = []

    def extract(self, record: Record) -> int:
        get = record.get
        indices = []
        for i, lbl in enumerate(self.key_labels):
            v = get(lbl)
            if v.is_empty:
                indices.append(_MISSING)
                continue
            table = self._value_ids[i]
            idx = table.get(v)
            if idx is None:
                idx = len(self._values[i])
                table[v] = idx
                self._values[i].append(v)
            indices.append(idx)
        composite = tuple(indices)
        cid = self._composite_ids.get(composite)
        if cid is None:
            cid = len(self._composites)
            self._composite_ids[composite] = cid
            self._composites.append(composite)
        return cid

    def entries(self, key: int) -> list[tuple[str, Variant]]:
        composite = self._composites[key]
        out = []
        for i, (lbl, idx) in enumerate(zip(self.key_labels, composite)):
            if idx != _MISSING:
                out.append((lbl, self._values[i][idx]))
        return out

    @property
    def num_composites(self) -> int:
        return len(self._composites)


def make_extractor(key_labels: Sequence[str], strategy: str = "tuple") -> KeyExtractor:
    """Factory selecting a key strategy by name (``tuple`` or ``interned``)."""
    if strategy == "tuple":
        return TupleKeyExtractor(key_labels)
    if strategy == "interned":
        return InternedKeyExtractor(key_labels)
    raise ValueError(f"unknown key strategy {strategy!r} (expected 'tuple' or 'interned')")
