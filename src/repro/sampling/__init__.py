"""Adaptive overhead-budget sampling.

The instrumented hot path costs microseconds per event while the disabled
floor is tens of nanoseconds — a gap that forces all-or-nothing profiling.
This package closes it with *feedback-controlled Bernoulli sampling*: a
cheap per-attribute gate ahead of the snapshot fast path drops a fraction
of snapshots, a controller measures the real per-event snapshot cost with
``time.perf_counter`` probes (published through :mod:`repro.observe`) and
adjusts sampling probabilities every control interval until the expected
snapshot cost per event converges on a user budget
(``sampling.budget = "200ns"`` or ``sampling.budget_ratio = 0.05``).

Aggregates stay *unbiased*: every record kept with probability ``p < 1``
carries ``sample.weight = 1/p``, which the fold plans (compiled and
generic), the columnar backend, and the net service's shard folds apply to
the count/sum/avg/variance operator family (Horvitz–Thompson count-scaling,
the same statistical honesty PF-OLA brings to partial aggregates).
Per-attribute probabilities are allocated by waterfilling: rare attribute
values keep probability 1 (a region seen once is never lost), hot values
absorb the thinning.

Offline, :func:`sampled_query` runs a CalQL aggregation over a Bernoulli
sample of a dataset and surfaces the estimate columns of
:mod:`repro.window.estimate` (``est#``, ``est.lo#``, ``est.hi#``) so users
see confidence intervals, not silent error; ``repro.api.query(...,
options=QueryOptions(sampling=0.1))`` and ``repro-query --sample 0.1`` are
the public spellings.

See ``docs/sampling.md`` for budget semantics and bias guarantees.
"""

from ..aggregate.ops import WEIGHT_LABEL
from .budget import format_ns, parse_budget
from .controller import OverheadController, waterfill_quota
from .gate import SamplingGate
from .query import sample_records, sampled_query, scheme_with_moments
from .sampler import ChannelSampler

__all__ = [
    "WEIGHT_LABEL",
    "ChannelSampler",
    "OverheadController",
    "SamplingGate",
    "format_ns",
    "parse_budget",
    "sample_records",
    "sampled_query",
    "scheme_with_moments",
    "waterfill_quota",
]
