"""Parsing and rendering of per-event overhead budgets.

A budget is a time-per-event quantity.  Config and CLI accept either a bare
number (nanoseconds) or a number with a unit suffix: ``200ns``, ``1.5us``
(``µs`` works too), ``0.25ms``, ``1e-7s``.  Internally budgets are float
nanoseconds per event.
"""

from __future__ import annotations

from typing import Union

from ..common.errors import ConfigError

__all__ = ["parse_budget", "format_ns"]

_UNITS = {
    "ns": 1.0,
    "us": 1e3,
    "µs": 1e3,
    "ms": 1e6,
    "s": 1e9,
}


def parse_budget(value: Union[str, int, float]) -> float:
    """Parse a per-event budget into nanoseconds.

    Numbers (and number-only strings) are nanoseconds; a unit suffix from
    ``ns``/``us``/``µs``/``ms``/``s`` scales accordingly.  The result must
    be positive.
    """
    if isinstance(value, bool):
        raise ConfigError(f"invalid sampling budget: {value!r}")
    if isinstance(value, (int, float)):
        ns = float(value)
    else:
        text = str(value).strip().lower().replace(" ", "")
        scale = 1.0
        for unit in ("ns", "µs", "us", "ms", "s"):
            if text.endswith(unit):
                scale = _UNITS[unit]
                text = text[: -len(unit)]
                break
        try:
            ns = float(text) * scale
        except ValueError:
            raise ConfigError(
                f"invalid sampling budget {value!r}: expected a number with an "
                "optional ns/us/ms/s suffix (e.g. '200ns', '1.5us')"
            ) from None
    if not ns > 0.0:
        raise ConfigError(f"sampling budget must be positive, got {value!r}")
    return ns


def format_ns(ns: float) -> str:
    """Human rendering of a nanosecond quantity (for stats and logs)."""
    if ns < 1e3:
        return f"{ns:.0f}ns"
    if ns < 1e6:
        return f"{ns / 1e3:.2f}us"
    if ns < 1e9:
        return f"{ns / 1e6:.2f}ms"
    return f"{ns / 1e9:.2f}s"
