"""Offline sampled queries with confidence intervals.

:func:`sampled_query` runs a CalQL aggregation over a Bernoulli sample of a
record stream instead of the full input, and reports *both* sides of the
trade: the count-scaled (Horvitz–Thompson) point aggregates, and the
``est#`` / ``est.lo#`` / ``est.hi#`` confidence columns of
:class:`repro.window.estimate.WindowEstimator` so sampling error is visible
in the result, never silent.

The estimator reuse is exact, not analogical: a Bernoulli sample at
probability ``p`` has the same first- and second-moment algebra as a
partial window observed for a time fraction ``f = p`` under the PF-OLA
arrival model — de-weight the linear state cells back to raw sample scale
(multiply by ``p``; uniform weights make this exact) and the window
estimator's ``n/f`` extrapolation *is* the Horvitz–Thompson estimate, with
matching variance.
"""

from __future__ import annotations

import random
from typing import Iterable, Iterator, Optional

from ..aggregate.db import AggregationDB
from ..aggregate.ops import (
    AvgOp,
    CountOp,
    MomentsOp,
    PercentTotalOp,
    RatioOp,
    ScaleOp,
    StddevOp,
    SumOp,
    VarianceOp,
    WEIGHT_LABEL,
)
from ..aggregate.scheme import AggregationScheme
from ..common.errors import QueryError
from ..common.record import Record
from ..common.variant import Variant
from ..window.estimate import WindowEstimator

__all__ = ["sample_records", "sampled_query", "scheme_with_moments"]


def _unwrap(op):
    return getattr(op, "inner", op)


#: operator types whose state cells are linear in the record weight —
#: de-weighting multiplies every cell by ``p`` to recover raw sample scale
_LINEAR_STATE = (
    CountOp,
    SumOp,
    AvgOp,
    ScaleOp,
    PercentTotalOp,
    VarianceOp,
    StddevOp,
    MomentsOp,
    RatioOp,
)


def scheme_with_moments(scheme: AggregationScheme) -> AggregationScheme:
    """``scheme`` plus hidden ``est_moments`` ops for every sum/avg input.

    The same augmentation :func:`repro.window.db.windowize_scheme` applies,
    minus the window key attributes: the moment states feed the confidence
    intervals for ``sum``/``avg`` estimates.  Idempotent.
    """
    ops = list(scheme.ops)
    have = {
        _unwrap(op).args[0] for op in ops if type(_unwrap(op)) is MomentsOp
    }
    added = False
    for op in scheme.ops:
        target = _unwrap(op)
        if type(target) in (SumOp, AvgOp) and target.args[0] not in have:
            ops.append(MomentsOp([target.args[0]]))
            have.add(target.args[0])
            added = True
    if not added:
        return scheme
    return AggregationScheme(
        ops, key=scheme.key, predicate=scheme.predicate,
        key_strategy=scheme.key_strategy,
    )


def sample_records(
    records: Iterable[Record],
    probability: float,
    seed: Optional[int] = None,
) -> Iterator[Record]:
    """Bernoulli-sample a record stream, stamping ``sample.weight``.

    Each record is kept independently with ``probability``; kept records
    carry ``sample.weight = 1/probability`` so any weighted fold downstream
    reproduces the full-input aggregates in expectation.  ``probability``
    1 passes the stream through untouched (weight 1 is implicit).
    """
    p = float(probability)
    if not 0.0 < p <= 1.0:
        raise ValueError(f"sampling probability must be in (0, 1], got {probability!r}")
    if p >= 1.0:
        yield from records
        return
    rnd = random.Random(seed).random
    weight = Variant.double(1.0 / p)
    for record in records:
        if rnd() < p:
            data = dict(record._entries)
            data[WEIGHT_LABEL] = weight
            yield Record.from_variants(data)


def _deweight(ops, states, p: float) -> list[list]:
    """Scale weighted states back to raw-sample scale (cells × ``p``).

    Uniform weights ``1/p`` make this exact: the result equals the states
    an unweighted fold of the kept records would have produced.  States of
    non-linear operators (min/max/histogram/...) pass through unchanged.
    """
    out = []
    for op, state in zip(ops, states):
        if type(_unwrap(op)) in _LINEAR_STATE:
            out.append([cell * p for cell in state])
        else:
            out.append(state)
    return out


def sampled_query(
    query,
    records: Iterable[Record],
    probability: float,
    seed: Optional[int] = None,
    confidence: float = 0.90,
    fold_plan: str = "compiled",
):
    """Run a CalQL aggregation over a Bernoulli sample of ``records``.

    Returns a :class:`~repro.query.engine.QueryResult` whose rows hold the
    count-scaled point aggregates (``count``, ``sum#x``, ...) plus the
    estimate columns ``est#<label>`` / ``est.lo#<label>`` / ``est.hi#<label>``
    for the count/sum/avg family, ``est.fraction`` (the sampling
    probability) and ``est.samples`` (records actually folded per group).

    ``seed`` fixes the sampling decisions for reproducible runs.
    """
    from ..query.engine import QueryEngine, QueryResult

    engine = query if isinstance(query, QueryEngine) else QueryEngine(query)
    if engine.scheme is None:
        raise QueryError("sampled_query needs an aggregation (AGGREGATE ...)")
    p = float(probability)
    if not 0.0 < p <= 1.0:
        raise QueryError(
            f"sampling probability must be in (0, 1], got {probability!r}"
        )

    scheme = scheme_with_moments(engine.scheme)
    db = AggregationDB(scheme, fold_plan)
    db.process_all(sample_records(engine._preprocess(records), p, seed))

    estimator = WindowEstimator(scheme, confidence)
    ops = scheme.ops
    totals: dict[int, float] = {}
    groups = db.export_states()
    for i, op in enumerate(ops):
        if getattr(op, "needs_global_total", False):
            totals[i] = sum(states[i][1] for _, states in groups)

    out = []
    for entries, states in groups:
        data = dict(entries)
        for i, (op, state) in enumerate(zip(ops, states)):
            if i in totals:
                results = op.results_with_total(state, totals[i])
            else:
                results = op.results(state)
            for label, value in results:
                data[label] = value
        for label, value in estimator.estimate_entries(_deweight(ops, states, p), p):
            data[label] = value
        out.append(Record.from_variants(data))

    out = engine._order_and_limit(out)
    return QueryResult(out, engine._preferred_columns(), engine.query.format)
