"""The per-channel sampling service: gate + controller + cost probes.

:class:`ChannelSampler` is what the channel's snapshot path actually talks
to.  Per event it answers two questions — *probe this one?* (:meth:`tick`)
and *keep this one?* (:meth:`decide`, bound straight from the gate) — and
per control interval it closes the feedback loop: mean probe costs feed the
:class:`~repro.sampling.controller.OverheadController`, the resulting
global probability is waterfilled across the gate's per-key table, and the
interval's numbers are published as ``sampling.*`` observe gauges.

Probing is strided (every ``probe_every``-th event) so ``perf_counter``
calls stay off most events.  A probe times the *entire* gated stage —
decision plus, when kept, snapshot assembly and fold — and both kept and
dropped probes carry the same two-``perf_counter``-call measurement
overhead, which cancels in the controller's ``kept - drop`` elidable-cost
term.
"""

from __future__ import annotations

import time
from typing import Optional

from .. import observe
from .budget import format_ns
from .controller import OverheadController, waterfill_quota
from .gate import SamplingGate

__all__ = ["ChannelSampler"]


class ChannelSampler:
    """Drives one channel's sampling gate from measured snapshot cost."""

    def __init__(
        self,
        gate: Optional[SamplingGate] = None,
        controller: Optional[OverheadController] = None,
        probe_every: int = 64,
        control_interval: int = 1024,
        auto_budget: bool = False,
    ) -> None:
        self.gate = gate if gate is not None else SamplingGate()
        self.controller = (
            controller if controller is not None else OverheadController()
        )
        self.probe_every = max(1, int(probe_every))
        self.control_interval = max(2, int(control_interval))
        #: adopt a server-advertised budget when none is configured locally
        self.auto_budget = auto_budget
        #: bound once: the hot-path keep/drop decision
        self.decide = self.gate.decide
        self.events = 0
        self.kept_total = 0
        self.dropped_total = 0
        self.control_steps = 0
        self._p = self.gate.initial
        self._next_probe = self.probe_every
        self._next_control = self.control_interval
        self._interval_started = time.perf_counter()
        self._interval_base = 0
        self._kept_ns = 0.0
        self._kept_probes = 0
        self._drop_ns = 0.0
        self._drop_probes = 0

    # -- hot path -------------------------------------------------------------

    def tick(self) -> bool:
        """Count one event; True when this event's cost should be probed."""
        n = self.events + 1
        self.events = n
        if n >= self._next_control:
            self._control_step(n)
        if n >= self._next_probe:
            self._next_probe = n + self.probe_every
            return True
        return False

    def record_kept_probe(self, seconds: float) -> None:
        self._kept_ns += seconds * 1e9
        self._kept_probes += 1

    def record_drop_probe(self, seconds: float) -> None:
        self._drop_ns += seconds * 1e9
        self._drop_probes += 1

    # -- control loop ---------------------------------------------------------

    def _control_step(self, n: int) -> None:
        now = time.perf_counter()
        events = n - self._interval_base
        wall_ns = (now - self._interval_started) * 1e9
        wall_per_event = wall_ns / events if events > 0 else None
        kept_mean = self._kept_ns / self._kept_probes if self._kept_probes else None
        drop_mean = self._drop_ns / self._drop_probes if self._drop_probes else None

        gate = self.gate
        offered, kept = gate.interval_totals()
        self.kept_total += kept
        self.dropped_total += offered - kept

        ctl = self.controller
        ctl.observe_costs(kept_mean, drop_mean)
        if ctl.active:
            p = ctl.target_probability(self._p, wall_per_event)
            self._p = p
            counts = gate.interval_counts()
            total = sum(counts)
            if gate.attribute is None or total <= 0:
                gate.apply_global(p)
                gate.reset_interval()
            else:
                gate.apply_quota(waterfill_quota(counts, p * total), 0.0)
        else:
            gate.reset_interval()

        self.control_steps += 1
        self._interval_base = n
        self._interval_started = time.perf_counter()
        self._kept_ns = 0.0
        self._kept_probes = 0
        self._drop_ns = 0.0
        self._drop_probes = 0
        self._next_control = n + self.control_interval

        if observe.enabled():
            observe.gauge("sampling.probability", self._p)
            if kept_mean is not None:
                observe.gauge("sampling.kept_cost_ns", kept_mean)
            if drop_mean is not None:
                observe.gauge("sampling.gate_cost_ns", drop_mean)
            expected = ctl.expected_cost_ns(self._p)
            if expected is not None:
                observe.gauge("sampling.cost_ns", expected)
            observe.count("sampling.control_steps")

    # -- external budget ------------------------------------------------------

    def adopt_budget_ns(self, budget_ns: float) -> bool:
        """Adopt a server-advertised budget in ``auto`` mode.

        Returns True when the budget was taken; a locally configured budget
        always wins over the server's suggestion.
        """
        if not self.auto_budget or self.controller.budget_ns is not None:
            return False
        self.controller.budget_ns = float(budget_ns)
        return True

    # -- introspection --------------------------------------------------------

    @property
    def probability(self) -> float:
        """The controller's current global keep-probability target."""
        return self._p

    def stats(self) -> dict:
        """Flat numbers for channel ``stats_record`` and ``--stats``."""
        ctl = self.controller
        offered, kept = self.gate.interval_totals()  # in-flight interval
        out = {
            "probability": self._p,
            "keys": len(self.gate),
            "events": self.events,
            "kept": self.kept_total + kept,
            "dropped": self.dropped_total + (offered - kept),
            "control_steps": self.control_steps,
        }
        if ctl.budget_ns is not None:
            out["budget_ns"] = ctl.budget_ns
            out["budget"] = format_ns(ctl.budget_ns)
        if ctl.budget_ratio is not None:
            out["budget_ratio"] = ctl.budget_ratio
        if ctl.kept_cost_ns is not None:
            out["kept_cost_ns"] = ctl.kept_cost_ns
        if ctl.drop_cost_ns is not None:
            out["gate_cost_ns"] = ctl.drop_cost_ns
        expected = ctl.expected_cost_ns(self._p)
        if expected is not None:
            out["cost_ns"] = expected
        return out
