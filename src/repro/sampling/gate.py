"""The per-attribute Bernoulli sampling gate.

The gate sits ahead of the channel's snapshot fast path and answers one
question per event: *keep this snapshot, and at what weight?*  Its decision
path is deliberately tiny — one dict lookup for the gating attribute's
current value, one counter increment, one ``random()`` compare — because it
runs even for dropped events and therefore bounds the achievable sampling
floor.

Probabilities are *per attribute value* (per region, when gating on a
NESTED attribute: the blackboard's live entry for e.g. ``function`` is the
innermost open region).  The controller re-allocates them every control
interval via waterfilling (see :func:`repro.sampling.controller.waterfill_quota`):
values seen rarely keep probability 1, hot values are thinned to meet the
global keep target.  A value never seen before always starts at
probability 1 — a new region's first occurrences are never lost.

Weights are cached ``Variant`` instances (one per key, refreshed only at
control steps), so the per-event keep path allocates nothing.
"""

from __future__ import annotations

import random
from typing import Dict, Hashable, Optional

from ..common.variant import Variant

__all__ = ["SamplingGate", "DROP"]

#: sentinel returned by :meth:`SamplingGate.decide` for dropped events
DROP = False


class _KeyState:
    """Per-attribute-value gate state (probability + cached weight)."""

    __slots__ = ("p", "weight", "count", "kept")

    def __init__(self, p: float) -> None:
        self.p = p
        self.weight: Optional[Variant] = (
            None if p >= 1.0 else Variant.double(1.0 / p)
        )
        #: events offered this control interval
        self.count = 0
        #: events kept this control interval
        self.kept = 0

    def set_probability(self, p: float) -> None:
        if p >= 1.0:
            self.p = 1.0
            self.weight = None
        else:
            self.p = p
            self.weight = Variant.double(1.0 / p)


class SamplingGate:
    """Per-attribute-value Bernoulli keep/drop decisions.

    ``decide(entries)`` returns:

    * :data:`DROP` (``False``) — the event is sampled out;
    * ``None`` — kept at probability 1 (no weight entry needed);
    * a ``Variant`` — kept with probability ``p < 1``; the value is the
      cached ``sample.weight = 1/p`` to stamp on the snapshot.

    Thread-safety: the per-key counters are plain int increments (atomic
    enough under the GIL for control-loop feedback — an off-by-a-few count
    shifts a probability target marginally, never correctness, because
    weights always match the probability the decision actually used).
    """

    def __init__(
        self,
        attribute: Optional[str] = None,
        initial: float = 1.0,
        min_probability: float = 1.0 / 4096.0,
        seed: Optional[int] = None,
    ) -> None:
        #: blackboard label whose live value keys the probability table
        #: (``None`` = one global probability)
        self.attribute = attribute
        self.min_probability = float(min_probability)
        self.initial = min(1.0, max(self.min_probability, float(initial)))
        self._rand = random.Random(seed).random
        self._table: Dict[Hashable, _KeyState] = {}
        self._global = _KeyState(self.initial)
        if attribute is None:
            self._table[None] = self._global

    # -- hot path -----------------------------------------------------------

    def decide(self, entries: dict):
        """One keep/drop decision against the live blackboard entries."""
        label = self.attribute
        if label is None:
            ks = self._global
        else:
            v = entries.get(label)
            key = None if v is None else v.value
            ks = self._table.get(key)
            if ks is None:
                # First sight of this value: keep everything until the next
                # control step ranks it.  New keys inherit the current
                # *global* probability only once they prove hot.
                ks = _KeyState(1.0)
                self._table[key] = ks
        ks.count += 1
        p = ks.p
        if p >= 1.0:
            ks.kept += 1
            return None
        if self._rand() < p:
            ks.kept += 1
            return ks.weight
        return DROP

    # -- control-step API ----------------------------------------------------

    def apply_global(self, p: float) -> None:
        """Set one probability for every key (the no-attribute mode)."""
        p = min(1.0, max(self.min_probability, p))
        for ks in self._table.values():
            ks.set_probability(p)
        self._global.set_probability(p)

    def apply_quota(self, quota: float, p_floor: float) -> None:
        """Waterfill: cap each key at ``quota`` expected kept events.

        ``p_key = min(1, quota / count)``, clamped below by the larger of
        ``min_probability`` and ``p_floor`` (pass 0 to use only the gate's
        own floor).  Interval counters reset.
        """
        floor = max(self.min_probability, p_floor)
        for ks in self._table.values():
            if ks.count <= 0:
                # Unseen this interval: decay toward keep-everything so an
                # attribute value going cold is re-observed cheaply.
                ks.set_probability(1.0)
            else:
                p = quota / ks.count
                if p > 1.0:
                    p = 1.0
                elif p < floor:
                    p = floor
                ks.set_probability(p)
            ks.count = 0
            ks.kept = 0

    def interval_counts(self) -> list[int]:
        """Per-key offered counts for the current interval."""
        return [ks.count for ks in self._table.values()]

    def interval_totals(self) -> tuple[int, int]:
        """``(offered, kept)`` summed over keys for the current interval."""
        offered = kept = 0
        for ks in self._table.values():
            offered += ks.count
            kept += ks.kept
        return offered, kept

    def reset_interval(self) -> None:
        for ks in self._table.values():
            ks.count = 0
            ks.kept = 0

    # -- introspection -------------------------------------------------------

    @property
    def probability(self) -> float:
        """The global (or minimum per-key) keep probability."""
        if self.attribute is None:
            return self._global.p
        if not self._table:
            return 1.0
        return min(ks.p for ks in self._table.values())

    def probabilities(self) -> Dict[Hashable, float]:
        """Current per-key probabilities (for stats and tests)."""
        return {key: ks.p for key, ks in self._table.items()}

    def __len__(self) -> int:
        return len(self._table)
