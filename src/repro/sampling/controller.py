"""The overhead-budget feedback controller.

Every control interval the channel sampler hands the controller what it
measured: the mean cost of a *kept* event's snapshot processing, the mean
cost of a *dropped* event (the gate floor), and the wall time per event of
the interval.  The controller solves for the keep probability whose
expected *elidable* cost meets the budget::

    elidable = kept - drop                  # snapshot work a drop avoids
    cost(p)  = p * elidable                 # expected controlled ns/event
    p*       = budget / elidable

clamped to ``[min_probability, 1]`` and rate-limited to a factor of
``max_step`` per interval so one noisy probe cannot slam the probability
across its range.  ``budget_ratio`` budgets relative to the application
instead: the allowed cost is ``ratio × wall-time-per-event`` of the
interval just observed.

The *budget* covers exactly what sampling can elide — the snapshot
assembly and fold behind the gate.  The two fixed floors sampling cannot
remove — the instrumentation path (attribute resolution, blackboard
updates, event dispatch) and the gate's own decision cost — are unaffected
by any probability choice and are reported separately in channel stats
(``observe.sampling.gate.ns``), never silently folded into the controlled
quantity: a budget below the gate floor would otherwise be unsatisfiable
by construction.

:func:`waterfill_quota` turns the global keep target into per-key quotas:
given interval counts ``c_k`` and a keep budget ``K``, it finds ``q`` with
``Σ min(c_k, q) = K`` so rare keys keep everything and hot keys split the
remainder evenly — the dynamic-sampling idea of Perun's trace optimizer,
expressed as an exact waterfill.
"""

from __future__ import annotations

from typing import Optional, Sequence

__all__ = ["OverheadController", "waterfill_quota"]


def waterfill_quota(counts: Sequence[int], target: float) -> float:
    """The per-key quota ``q`` with ``Σ min(c_k, q) = target``.

    ``target`` is the total number of events to keep across all keys.  If
    every count fits (``Σ c_k <= target``) the quota is unbounded
    (``inf``): every key keeps everything.
    """
    active = sorted(c for c in counts if c > 0)
    if not active:
        return float("inf")
    total = sum(active)
    if target >= total:
        return float("inf")
    if target <= 0.0:
        return 0.0
    # Walk the sorted counts: keys with c_k <= q are fully kept; the rest
    # split the remaining budget evenly.
    remaining = float(target)
    for i, c in enumerate(active):
        level = remaining / (len(active) - i)
        if c >= level:
            return level
        remaining -= c
    return float(active[-1])


class OverheadController:
    """Feedback loop from measured snapshot cost to keep probability."""

    def __init__(
        self,
        budget_ns: Optional[float] = None,
        budget_ratio: Optional[float] = None,
        min_probability: float = 1.0 / 4096.0,
        max_step: float = 4.0,
        smoothing: float = 0.5,
    ) -> None:
        if budget_ratio is not None and not 0.0 < budget_ratio < 1.0:
            from ..common.errors import ConfigError

            raise ConfigError(
                f"sampling.budget_ratio must be in (0, 1), got {budget_ratio!r}"
            )
        self.budget_ns = budget_ns
        self.budget_ratio = budget_ratio
        self.min_probability = float(min_probability)
        self.max_step = float(max_step)
        #: EWMA factor applied to incoming cost estimates (1.0 = no memory)
        self.smoothing = float(smoothing)
        self._kept_cost_ns: Optional[float] = None
        self._drop_cost_ns: Optional[float] = None

    @property
    def active(self) -> bool:
        """True when a budget is set (otherwise probabilities are static)."""
        return self.budget_ns is not None or self.budget_ratio is not None

    def observe_costs(
        self, kept_ns: Optional[float], drop_ns: Optional[float]
    ) -> None:
        """Fold this interval's probe measurements into the EWMA estimates."""
        a = self.smoothing
        if kept_ns is not None:
            prev = self._kept_cost_ns
            self._kept_cost_ns = kept_ns if prev is None else prev + a * (kept_ns - prev)
        if drop_ns is not None:
            prev = self._drop_cost_ns
            self._drop_cost_ns = drop_ns if prev is None else prev + a * (drop_ns - prev)

    @property
    def kept_cost_ns(self) -> Optional[float]:
        return self._kept_cost_ns

    @property
    def drop_cost_ns(self) -> Optional[float]:
        return self._drop_cost_ns

    def effective_budget_ns(self, wall_ns_per_event: Optional[float]) -> Optional[float]:
        """The ns-per-event target for this interval (ratio mode resolves
        against the interval's observed wall time per event)."""
        if self.budget_ns is not None:
            return self.budget_ns
        if self.budget_ratio is not None and wall_ns_per_event:
            return self.budget_ratio * wall_ns_per_event
        return None

    def target_probability(
        self, current_p: float, wall_ns_per_event: Optional[float] = None
    ) -> float:
        """The next global keep probability.

        Without cost estimates yet (first interval) or without a budget the
        current probability stands.
        """
        budget = self.effective_budget_ns(wall_ns_per_event)
        kept = self._kept_cost_ns
        if budget is None or kept is None or kept <= 0.0:
            return current_p
        drop = self._drop_cost_ns or 0.0
        elidable = kept - drop
        if elidable <= 0.0:
            return 1.0
        p = budget / elidable
        # Rate-limit the step so a single outlier probe (GC pause, context
        # switch) cannot collapse the probability to the floor at once.
        lo = current_p / self.max_step
        hi = current_p * self.max_step
        if p < lo:
            p = lo
        elif p > hi:
            p = hi
        return min(1.0, max(self.min_probability, p))

    def expected_cost_ns(self, p: float) -> Optional[float]:
        """Model-predicted controlled (elidable) cost per event at ``p``."""
        kept = self._kept_cost_ns
        if kept is None:
            return None
        drop = self._drop_cost_ns or 0.0
        return p * max(0.0, kept - drop)
