"""CalQL: the aggregation description language (Section III-B of the paper).

Typical use::

    from repro.calql import parse_scheme
    scheme = parse_scheme("AGGREGATE count, sum(time.duration) GROUP BY function")

or, for full queries with ordering/formatting, :func:`parse_query` plus the
query engine in :mod:`repro.query`.
"""

from typing import Optional

from ..aggregate.ops import OperatorRegistry
from ..aggregate.scheme import AggregationScheme
from .ast import (
    BinExpr,
    Compare,
    Condition,
    Exists,
    Expr,
    LetBinding,
    NotCond,
    Num,
    OpCall,
    OrderSpec,
    Query,
    Ref,
    WindowSpec,
)
from .lexer import Token, TokenType, tokenize
from .parser import parse_query
from .semantics import (
    build_scheme,
    compile_conditions,
    compile_let,
    instantiate_ops,
    validate,
)

__all__ = [
    "parse_query",
    "parse_scheme",
    "tokenize",
    "Token",
    "TokenType",
    "Query",
    "OpCall",
    "OrderSpec",
    "WindowSpec",
    "Condition",
    "Exists",
    "NotCond",
    "Compare",
    "Expr",
    "Ref",
    "Num",
    "BinExpr",
    "LetBinding",
    "validate",
    "instantiate_ops",
    "compile_conditions",
    "compile_let",
    "build_scheme",
]


def parse_scheme(
    text: str,
    registry: Optional[OperatorRegistry] = None,
    key_strategy: str = "tuple",
) -> AggregationScheme:
    """Parse CalQL text straight into an :class:`AggregationScheme`.

    >>> parse_scheme("AGGREGATE count GROUP BY kernel").key
    ('kernel',)
    """
    return build_scheme(parse_query(text), registry, key_strategy)
