"""AST node types for CalQL queries.

The AST is deliberately small and value-like (frozen dataclasses): the
parser builds it, the semantic pass validates it, and both the query engine
and the on-line aggregation service consume it.  ``unparse`` on every node
renders canonical CalQL text; round-tripping through ``unparse`` is
property-tested.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..common.variant import Variant

__all__ = [
    "OpCall",
    "Condition",
    "Exists",
    "NotCond",
    "Compare",
    "Expr",
    "Ref",
    "Num",
    "BinExpr",
    "LetBinding",
    "OrderSpec",
    "WindowSpec",
    "Query",
]


@dataclass(frozen=True)
class OpCall:
    """An aggregation operator invocation, e.g. ``sum(time.duration)``.

    ``args`` holds the raw argument spellings (labels or numbers); operator
    instantiation resolves them.  ``alias`` renames the output column
    (``sum(time.duration) AS total``).
    """

    name: str
    args: tuple[str, ...] = ()
    alias: Optional[str] = None

    def unparse(self) -> str:
        text = self.name if not self.args else f"{self.name}({','.join(self.args)})"
        if self.alias:
            text += f" AS {self.alias}"
        return text


class Condition:
    """Base class for WHERE conditions."""

    def unparse(self) -> str:
        raise NotImplementedError


@dataclass(frozen=True)
class Exists(Condition):
    """``label`` — true when the record has a non-empty value for ``label``."""

    label: str

    def unparse(self) -> str:
        return self.label


@dataclass(frozen=True)
class NotCond(Condition):
    """``not(cond)`` — negation, as in the paper's ``WHERE not(mpi.function)``."""

    inner: Condition

    def unparse(self) -> str:
        return f"not({self.inner.unparse()})"


@dataclass(frozen=True)
class Compare(Condition):
    """``label <op> value`` with op in ``= != < <= > >=``."""

    label: str
    op: str
    value: Variant

    def unparse(self) -> str:
        if self.value.type.value in ("string", "usr"):
            v = '"' + self.value.to_string().replace("\\", "\\\\").replace('"', '\\"') + '"'
        else:
            v = self.value.to_string()
        return f"{self.label}{self.op}{v}"


class Expr:
    """Base class for LET arithmetic expressions."""

    def unparse(self) -> str:
        raise NotImplementedError


@dataclass(frozen=True)
class Ref(Expr):
    """A reference to an attribute label."""

    label: str

    def unparse(self) -> str:
        return self.label


@dataclass(frozen=True)
class Num(Expr):
    """A numeric literal."""

    value: float

    def unparse(self) -> str:
        if self.value == int(self.value):
            return str(int(self.value))
        return repr(self.value)


@dataclass(frozen=True)
class BinExpr(Expr):
    """A binary arithmetic expression (``+ - * /``)."""

    op: str
    left: Expr
    right: Expr

    def unparse(self) -> str:
        return f"({self.left.unparse()} {self.op} {self.right.unparse()})"


@dataclass(frozen=True)
class LetBinding:
    """``LET name = expr`` — a derived attribute computed per input record."""

    name: str
    expr: Expr

    def unparse(self) -> str:
        return f"{self.name} = {self.expr.unparse()}"


@dataclass(frozen=True)
class OrderSpec:
    """One ``ORDER BY`` item."""

    label: str
    ascending: bool = True

    def unparse(self) -> str:
        return self.label if self.ascending else f"{self.label} DESC"


@dataclass(frozen=True)
class WindowSpec:
    """``WINDOW tumbling(30s)`` / ``WINDOW sliding(1m, 10s)``.

    ``size`` and ``slide`` are seconds; ``slide`` is ``None`` for tumbling
    windows.  Duration rendering round-trips through
    :func:`repro.window.assign.format_duration`.
    """

    kind: str  # "tumbling" | "sliding"
    size: float
    slide: Optional[float] = None

    def unparse(self) -> str:
        from ..window.assign import format_duration

        if self.kind == "sliding":
            return (
                f"WINDOW sliding({format_duration(self.size)}, "
                f"{format_duration(self.slide)})"
            )
        return f"WINDOW tumbling({format_duration(self.size)})"


@dataclass(frozen=True)
class Query:
    """A parsed CalQL query.

    ``select`` lists projection labels (SELECT bare labels); ``ops`` lists
    aggregation operator calls from both SELECT and AGGREGATE clauses;
    ``group_by`` is the aggregation key.  A query with no ``ops`` is a pure
    filter/projection (no aggregation happens).
    """

    select: tuple[str, ...] = ()
    ops: tuple[OpCall, ...] = ()
    group_by: tuple[str, ...] = ()
    where: tuple[Condition, ...] = ()
    order_by: tuple[OrderSpec, ...] = ()
    let: tuple[LetBinding, ...] = ()
    window: Optional[WindowSpec] = None
    format: Optional[str] = None
    limit: Optional[int] = None

    @property
    def is_aggregation(self) -> bool:
        return bool(self.ops)

    def effective_key(self) -> tuple[str, ...]:
        """The aggregation key: GROUP BY if given, else SELECT bare labels."""
        if self.group_by:
            return self.group_by
        return self.select

    def unparse(self) -> str:
        """Canonical CalQL text for this query."""
        parts: list[str] = []
        if self.let:
            parts.append("LET " + ", ".join(b.unparse() for b in self.let))
        if self.select:
            parts.append("SELECT " + ", ".join(self.select))
        if self.ops:
            parts.append("AGGREGATE " + ", ".join(op.unparse() for op in self.ops))
        if self.where:
            parts.append("WHERE " + ", ".join(c.unparse() for c in self.where))
        if self.group_by:
            parts.append("GROUP BY " + ", ".join(self.group_by))
        if self.window:
            parts.append(self.window.unparse())
        if self.order_by:
            parts.append("ORDER BY " + ", ".join(o.unparse() for o in self.order_by))
        if self.limit is not None:
            parts.append(f"LIMIT {self.limit}")
        if self.format:
            parts.append(f"FORMAT {self.format}")
        return " ".join(parts)
