"""Recursive-descent parser for CalQL.

Grammar (clauses may appear in any order, each at most once)::

    query      :=  clause*
    clause     :=  'SELECT'    select_item (',' select_item)*
                |  'AGGREGATE' agg_item (',' agg_item)*
                |  'GROUP' 'BY' label (',' label)*
                |  'WHERE'     cond (',' cond)*
                |  'ORDER' 'BY' label ['ASC'|'DESC'] (',' ...)*
                |  'LET'       ident '=' expr (',' ...)*
                |  'WINDOW'    ('tumbling' '(' duration ')'
                               | 'sliding' '(' duration ',' duration ')')
                |  'FORMAT'    ident
                |  'LIMIT'     number
    duration   :=  number [unit]          # unit: ms | s | m | h (default s)
    select_item := label | op_call
    agg_item    := label_or_op     # bare 'count' means the count operator
    op_call     := ident '(' arg (',' arg)* ')'
    cond        := 'not' '(' cond ')' | label [cmp value]
    cmp         := '=' | '!=' | '<' | '<=' | '>' | '>='
    value       := number | string | label
    expr        := term (('+'|'-') term)*
    term        := factor (('*'|'/') factor)*
    factor      := number | label | '(' expr ')'

A bare name in AGGREGATE is an operator with no arguments when the name is
a known zero-arity operator (``count``), matching the paper's
``AGGREGATE count, sum(time)`` spelling.
"""

from __future__ import annotations

from typing import Optional

from ..common.errors import CalQLSyntaxError
from ..common.variant import Variant
from .ast import (
    BinExpr,
    Compare,
    Condition,
    Exists,
    Expr,
    LetBinding,
    NotCond,
    Num,
    OpCall,
    OrderSpec,
    Query,
    Ref,
    WindowSpec,
)
from .lexer import Token, TokenType, tokenize

__all__ = ["parse_query"]

_COMPARE_TOKENS = {
    TokenType.EQ: "=",
    TokenType.NE: "!=",
    TokenType.LT: "<",
    TokenType.LE: "<=",
    TokenType.GT: ">",
    TokenType.GE: ">=",
}


class _Parser:
    def __init__(self, text: str) -> None:
        self.text = text
        self.tokens = tokenize(text)
        self.pos = 0

    # -- token helpers -------------------------------------------------------

    @property
    def current(self) -> Token:
        return self.tokens[self.pos]

    def advance(self) -> Token:
        tok = self.tokens[self.pos]
        if tok.type is not TokenType.EOF:
            self.pos += 1
        return tok

    def check(self, ttype: TokenType, text: Optional[str] = None) -> bool:
        tok = self.current
        if tok.type is not ttype:
            return False
        return text is None or tok.lowered == text

    def accept(self, ttype: TokenType, text: Optional[str] = None) -> Optional[Token]:
        if self.check(ttype, text):
            return self.advance()
        return None

    def expect(self, ttype: TokenType, text: Optional[str] = None) -> Token:
        if not self.check(ttype, text):
            want = text or ttype.value
            got = self.current.text or "end of query"
            raise CalQLSyntaxError(
                f"expected {want!r}, got {got!r}", self.current.position, self.text
            )
        return self.advance()

    def error(self, message: str) -> CalQLSyntaxError:
        return CalQLSyntaxError(message, self.current.position, self.text)

    # -- grammar --------------------------------------------------------------

    def parse(self) -> Query:
        select: list[str] = []
        ops: list[OpCall] = []
        group_by: list[str] = []
        where: list[Condition] = []
        order_by: list[OrderSpec] = []
        let: list[LetBinding] = []
        window: Optional[WindowSpec] = None
        fmt: Optional[str] = None
        limit: Optional[int] = None
        seen: set[str] = set()

        while not self.check(TokenType.EOF):
            tok = self.current
            if tok.type is not TokenType.KEYWORD:
                raise self.error(f"expected a clause keyword, got {tok.text!r}")
            clause = tok.lowered
            if clause in seen:
                raise self.error(f"duplicate {clause.upper()} clause")
            seen.add(clause)
            self.advance()

            if clause == "select":
                sel_labels, sel_ops = self.parse_select_list()
                select.extend(sel_labels)
                ops.extend(sel_ops)
            elif clause == "aggregate":
                ops.extend(self.parse_aggregate_list())
            elif clause == "group":
                self.expect(TokenType.KEYWORD, "by")
                group_by.extend(self.parse_label_list())
            elif clause == "where":
                where.extend(self.parse_cond_list())
            elif clause == "order":
                self.expect(TokenType.KEYWORD, "by")
                order_by.extend(self.parse_order_list())
            elif clause == "let":
                let.extend(self.parse_let_list())
            elif clause == "window":
                window = self.parse_window_spec()
            elif clause == "format":
                fmt = self.expect(TokenType.IDENT).text
            elif clause == "limit":
                num = self.expect(TokenType.NUMBER)
                limit = int(float(num.text))
                if limit < 0:
                    raise self.error("LIMIT must be non-negative")
            else:
                raise self.error(f"unexpected keyword {tok.text!r}")

        return Query(
            select=tuple(select),
            ops=tuple(ops),
            group_by=tuple(group_by),
            where=tuple(where),
            order_by=tuple(order_by),
            let=tuple(let),
            window=window,
            format=fmt,
            limit=limit,
        )

    # SELECT ------------------------------------------------------------------

    def parse_select_list(self) -> tuple[list[str], list[OpCall]]:
        labels: list[str] = []
        ops: list[OpCall] = []
        while True:
            name = self.expect(TokenType.IDENT).text
            if self.check(TokenType.LPAREN):
                ops.append(self.parse_alias(self.parse_op_args(name)))
            elif name == "count":
                ops.append(self.parse_alias(OpCall("count")))
            else:
                labels.append(name)
            if not self.accept(TokenType.COMMA):
                break
        return labels, ops

    def parse_alias(self, op: OpCall) -> OpCall:
        """Optional ``AS name`` after an operator call."""
        if self.accept(TokenType.KEYWORD, "as"):
            alias = self.expect(TokenType.IDENT).text
            return OpCall(op.name, op.args, alias)
        return op

    # AGGREGATE -----------------------------------------------------------------

    def parse_aggregate_list(self) -> list[OpCall]:
        ops: list[OpCall] = []
        while True:
            name = self.expect(TokenType.IDENT).text
            if self.check(TokenType.LPAREN):
                op = self.parse_op_args(name)
            else:
                # bare operator name (the paper writes "AGGREGATE count")
                op = OpCall(name)
            ops.append(self.parse_alias(op))
            if not self.accept(TokenType.COMMA):
                break
        return ops

    def parse_op_args(self, name: str) -> OpCall:
        self.expect(TokenType.LPAREN)
        args: list[str] = []
        if not self.check(TokenType.RPAREN):
            while True:
                tok = self.current
                if tok.type in (TokenType.IDENT, TokenType.NUMBER, TokenType.STRING):
                    args.append(self.advance().text)
                elif tok.type is TokenType.MINUS:
                    self.advance()
                    num = self.expect(TokenType.NUMBER)
                    args.append("-" + num.text)
                else:
                    raise self.error(f"invalid operator argument {tok.text!r}")
                if not self.accept(TokenType.COMMA):
                    break
        self.expect(TokenType.RPAREN)
        return OpCall(name, tuple(args))

    # GROUP BY / ORDER BY ----------------------------------------------------------

    def parse_label_list(self) -> list[str]:
        labels = [self.expect(TokenType.IDENT).text]
        while self.accept(TokenType.COMMA):
            labels.append(self.expect(TokenType.IDENT).text)
        return labels

    def parse_order_list(self) -> list[OrderSpec]:
        specs: list[OrderSpec] = []
        while True:
            label = self.expect(TokenType.IDENT).text
            ascending = True
            if self.accept(TokenType.KEYWORD, "desc"):
                ascending = False
            else:
                self.accept(TokenType.KEYWORD, "asc")
            specs.append(OrderSpec(label, ascending))
            if not self.accept(TokenType.COMMA):
                break
        return specs

    # WINDOW ------------------------------------------------------------------

    _DURATION_UNITS = {"ms": 1e-3, "s": 1.0, "m": 60.0, "h": 3600.0}

    def parse_window_spec(self) -> WindowSpec:
        kind_tok = self.expect(TokenType.IDENT)
        kind = kind_tok.text.lower()
        if kind not in ("tumbling", "sliding"):
            raise self.error(
                f"WINDOW wants tumbling(..) or sliding(..), got {kind_tok.text!r}"
            )
        self.expect(TokenType.LPAREN)
        size = self.parse_duration()
        slide: Optional[float] = None
        if kind == "sliding":
            self.expect(TokenType.COMMA)
            slide = self.parse_duration()
            if slide > size:
                raise self.error(
                    "sliding window slide larger than its size would drop events"
                )
        self.expect(TokenType.RPAREN)
        return WindowSpec(kind, size, slide)

    def parse_duration(self) -> float:
        """A duration literal: NUMBER with an optional glued unit ident.

        ``30s`` lexes as NUMBER(30) IDENT(s); a bare number means seconds.
        """
        num = self.expect(TokenType.NUMBER)
        value = float(num.text)
        if self.check(TokenType.IDENT):
            unit = self.current.text.lower()
            scale = self._DURATION_UNITS.get(unit)
            if scale is None:
                raise self.error(
                    f"unknown duration unit {self.current.text!r} "
                    "(use ms, s, m or h)"
                )
            self.advance()
            value *= scale
        if value <= 0:
            raise self.error("window durations must be positive")
        return value

    # WHERE -------------------------------------------------------------------

    def parse_cond_list(self) -> list[Condition]:
        conds = [self.parse_cond()]
        while self.accept(TokenType.COMMA):
            conds.append(self.parse_cond())
        return conds

    def parse_cond(self) -> Condition:
        if self.accept(TokenType.KEYWORD, "not"):
            self.expect(TokenType.LPAREN)
            inner = self.parse_cond()
            self.expect(TokenType.RPAREN)
            return NotCond(inner)
        label = self.expect(TokenType.IDENT).text
        op = _COMPARE_TOKENS.get(self.current.type)
        if op is None:
            return Exists(label)
        self.advance()
        return Compare(label, op, self.parse_value())

    def parse_value(self) -> Variant:
        tok = self.current
        if tok.type is TokenType.NUMBER:
            self.advance()
            return _number_variant(tok.text)
        if tok.type is TokenType.MINUS:
            self.advance()
            num = self.expect(TokenType.NUMBER)
            return _number_variant("-" + num.text)
        if tok.type is TokenType.STRING:
            self.advance()
            return Variant.of(tok.text)
        if tok.type in (TokenType.IDENT, TokenType.KEYWORD):
            self.advance()
            lowered = tok.lowered
            if lowered == "true":
                return Variant.of(True)
            if lowered == "false":
                return Variant.of(False)
            return Variant.of(tok.text)
        raise self.error(f"expected a comparison value, got {tok.text!r}")

    # LET ---------------------------------------------------------------------

    def parse_let_list(self) -> list[LetBinding]:
        bindings: list[LetBinding] = []
        while True:
            name = self.expect(TokenType.IDENT).text
            self.expect(TokenType.EQ)
            bindings.append(LetBinding(name, self.parse_expr()))
            if not self.accept(TokenType.COMMA):
                break
        return bindings

    def parse_expr(self) -> Expr:
        left = self.parse_term()
        while self.current.type in (TokenType.PLUS, TokenType.MINUS):
            op = self.advance().text
            left = BinExpr(op, left, self.parse_term())
        return left

    def parse_term(self) -> Expr:
        left = self.parse_factor()
        while self.current.type in (TokenType.STAR, TokenType.SLASH):
            op = self.advance().text
            left = BinExpr(op, left, self.parse_factor())
        return left

    def parse_factor(self) -> Expr:
        tok = self.current
        if tok.type is TokenType.NUMBER:
            self.advance()
            return Num(float(tok.text))
        if tok.type is TokenType.MINUS:
            self.advance()
            inner = self.parse_factor()
            return BinExpr("-", Num(0.0), inner)
        if tok.type is TokenType.IDENT:
            self.advance()
            return Ref(tok.text)
        if self.accept(TokenType.LPAREN):
            expr = self.parse_expr()
            self.expect(TokenType.RPAREN)
            return expr
        raise self.error(f"invalid expression token {tok.text!r}")


def _number_variant(text: str) -> Variant:
    value = float(text)
    if "." not in text and "e" not in text.lower() and value == int(value):
        return Variant.of(int(value))
    return Variant.of(value)


def parse_query(text: str) -> Query:
    """Parse CalQL ``text`` into a :class:`~repro.calql.ast.Query`.

    Raises :class:`~repro.common.errors.CalQLSyntaxError` with a
    line/column-annotated message on malformed input.
    """
    parser = _Parser(text)
    return parser.parse()
