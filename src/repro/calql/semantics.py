"""Semantic analysis and compilation of CalQL queries.

This module turns a validated :class:`~repro.calql.ast.Query` into the
executable pieces the engines consume:

* :func:`build_scheme` — an :class:`~repro.aggregate.scheme.AggregationScheme`
  (operator kernels + key + predicate) for queries with aggregations,
* :func:`compile_conditions` — a fast record predicate for WHERE clauses,
* :func:`compile_let` — a record transformer adding derived attributes,
* :func:`validate` — whole-query checks with helpful error messages.

Both the on-line aggregation service and the off-line query engine call
into here, which is what makes the description language "the same" across
all aggregation applications.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence

from ..aggregate.ops import AggregateOp, OperatorRegistry, default_registry
from ..aggregate.scheme import AggregationScheme
from ..common.errors import CalQLSemanticError
from ..common.record import Record
from ..common.variant import ValueType, Variant
from .ast import (
    BinExpr,
    Compare,
    Condition,
    Exists,
    Expr,
    LetBinding,
    NotCond,
    Num,
    Query,
    Ref,
)

__all__ = [
    "validate",
    "instantiate_ops",
    "compare_variants",
    "compile_conditions",
    "compile_let",
    "build_scheme",
]

_KNOWN_FORMATS = frozenset({"table", "csv", "json", "tree", "records", "expand"})


def validate(query: Query, registry: Optional[OperatorRegistry] = None) -> None:
    """Raise :class:`CalQLSemanticError` for meaningless queries."""
    registry = registry or default_registry()
    if not (query.ops or query.select or query.where or query.let or query.group_by):
        raise CalQLSemanticError("query is empty: nothing to select, aggregate, or filter")
    if query.group_by and not query.ops:
        raise CalQLSemanticError(
            "GROUP BY without any aggregation operator; add an AGGREGATE clause"
        )
    for op in query.ops:
        if op.name not in registry and op.args:
            raise CalQLSemanticError(
                f"unknown aggregation operator {op.name!r}; known: "
                + ", ".join(registry.known())
            )
    if query.format is not None and query.format.lower() not in _KNOWN_FORMATS:
        raise CalQLSemanticError(
            f"unknown FORMAT {query.format!r}; known: " + ", ".join(sorted(_KNOWN_FORMATS))
        )
    let_names = [b.name for b in query.let]
    if len(set(let_names)) != len(let_names):
        dupes = sorted({n for n in let_names if let_names.count(n) > 1})
        raise CalQLSemanticError(f"duplicate LET binding(s): {', '.join(dupes)}")
    if query.window is not None:
        if not query.ops:
            raise CalQLSemanticError(
                "WINDOW without aggregation operators; add an AGGREGATE clause"
            )
        for label in ("window.start", "window.end"):
            if label in query.effective_key():
                raise CalQLSemanticError(
                    f"WINDOW adds the {label!r} key attribute; "
                    "remove it from GROUP BY"
                )
    # Instantiating catches arity and parameter errors early.
    instantiate_ops(query, registry)


def instantiate_ops(
    query: Query, registry: Optional[OperatorRegistry] = None
) -> list[AggregateOp]:
    """Create operator kernels for every op call in the query.

    A bare name that is not a registered operator is an *aggregation
    attribute* reduced with the default operator (``sum``) — the paper's
    Fig. 6 writes ``AGGREGATE count, time.duration`` in exactly this style.
    """
    registry = registry or default_registry()
    ops: list[AggregateOp] = []
    try:
        for op in query.ops:
            if op.name not in registry and not op.args:
                kernel = registry.create("sum", [op.name])
            else:
                kernel = registry.create(op.name, list(op.args))
            if op.alias:
                from ..aggregate.ops import AliasedOp

                kernel = AliasedOp(kernel, op.alias)
            ops.append(kernel)
    except Exception as exc:
        raise CalQLSemanticError(str(exc)) from exc
    return ops


# -- WHERE compilation -----------------------------------------------------------


def _compile_one(cond: Condition) -> Callable[[Record], bool]:
    if isinstance(cond, Exists):
        label = cond.label

        def exists(record: Record, _label: str = label) -> bool:
            return not record.get(_label).is_empty

        return exists
    if isinstance(cond, NotCond):
        inner = _compile_one(cond.inner)

        def negate(record: Record, _inner=inner) -> bool:
            return not _inner(record)

        return negate
    if isinstance(cond, Compare):
        label, op, target = cond.label, cond.op, cond.value

        def compare(record: Record, _label=label, _op=op, _target=target) -> bool:
            v = record.get(_label)
            if v.is_empty:
                return False
            return compare_variants(v, _op, _target)

        return compare
    raise CalQLSemanticError(f"unknown condition type {type(cond).__name__}")


def compare_variants(value: Variant, op: str, target: Variant) -> bool:
    """CalQL comparison semantics for one non-empty value against a literal.

    Shared by the compiled row predicate and the columnar backend's
    vectorized WHERE (which evaluates it once per *distinct* value).
    Cross-type compares: a numeric target against a string value (or vice
    versa) compares the string renderings, for equality only.
    """
    if op == "=":
        return _loose_eq(value, target)
    if op == "!=":
        return not _loose_eq(value, target)
    try:
        if op == "<":
            return value < target
        if op == "<=":
            return value <= target
        if op == ">":
            return value > target
        if op == ">=":
            return value >= target
    except TypeError:  # pragma: no cover - Variant orders totally
        return False
    raise CalQLSemanticError(f"unknown comparison operator {op!r}")


def _loose_eq(v: Variant, target: Variant) -> bool:
    if v == target:
        return True
    # Allow "mpi.rank=3" to match whether the stored value is int or string.
    if (v.type is ValueType.STRING) != (target.type is ValueType.STRING):
        return v.to_string() == target.to_string()
    return False


def compile_conditions(conds: Sequence[Condition]) -> Optional[Callable[[Record], bool]]:
    """Compile a WHERE list into one predicate (comma means AND).

    Returns ``None`` for an empty list so callers can skip the call entirely.
    """
    if not conds:
        return None
    compiled = [_compile_one(c) for c in conds]
    if len(compiled) == 1:
        return compiled[0]

    def conjunction(record: Record, _compiled=tuple(compiled)) -> bool:
        for check in _compiled:
            if not check(record):
                return False
        return True

    return conjunction


# -- LET compilation --------------------------------------------------------------


def _eval_expr(expr: Expr, record: Record) -> Optional[float]:
    if isinstance(expr, Num):
        return expr.value
    if isinstance(expr, Ref):
        v = record.get(expr.label)
        if v.is_empty or not v.is_numeric:
            return None
        return v.to_double()
    if isinstance(expr, BinExpr):
        left = _eval_expr(expr.left, record)
        right = _eval_expr(expr.right, record)
        if left is None or right is None:
            return None
        if expr.op == "+":
            return left + right
        if expr.op == "-":
            return left - right
        if expr.op == "*":
            return left * right
        if expr.op == "/":
            return left / right if right != 0.0 else None
        raise CalQLSemanticError(f"unknown arithmetic operator {expr.op!r}")
    raise CalQLSemanticError(f"unknown expression type {type(expr).__name__}")


def compile_let(bindings: Sequence[LetBinding]) -> Optional[Callable[[Record], Record]]:
    """Compile LET bindings into a record transformer.

    A binding whose expression references a missing or non-numeric attribute
    simply does not produce the derived attribute for that record (the
    flexible data model tolerates sparse attributes).  Bindings see earlier
    bindings' results, so ``LET a = x*2, b = a+1`` works.
    """
    if not bindings:
        return None
    compiled = [(b.name, b.expr) for b in bindings]

    def transform(record: Record, _compiled=tuple(compiled)) -> Record:
        extra: dict[str, Variant] = {}
        current = record
        for name, expr in _compiled:
            value = _eval_expr(expr, current)
            if value is not None:
                extra[name] = Variant.of(value)
                current = current.with_entries({name: extra[name]})
        if not extra:
            return record
        return current

    return transform


# -- scheme construction ------------------------------------------------------------


def build_scheme(
    query: Query,
    registry: Optional[OperatorRegistry] = None,
    key_strategy: str = "tuple",
) -> AggregationScheme:
    """Build the :class:`AggregationScheme` a query describes.

    Raises :class:`CalQLSemanticError` if the query has no aggregation
    operators — use the query engine directly for pure filter queries.
    """
    validate(query, registry)
    if not query.ops:
        raise CalQLSemanticError(
            "query has no aggregation operators; an aggregation scheme needs AGGREGATE"
        )
    ops = instantiate_ops(query, registry)
    predicate = compile_conditions(query.where)
    key = query.effective_key()
    if query.window is not None:
        # Windows are ordinary key attributes: every downstream layer
        # (shards, relays, wire formats, columnar backend) groups by them
        # like any other label.  Records are stamped before folding — see
        # repro.window.assign.
        key = tuple(key) + ("window.start", "window.end")
    return AggregationScheme(
        ops=ops,
        key=key,
        predicate=predicate,
        key_strategy=key_strategy,
    )
