"""Lexer for the CalQL-style aggregation description language.

The language of the paper (Section III-B) borrows its syntax from SQL:
``AGGREGATE count, sum(time.duration) GROUP BY function, loop.iteration
WHERE not(mpi.function)``.

Attribute labels in performance data are rich strings — they contain dots
(``time.duration``), hashes (``iteration#mainloop``), colons and hyphens
(kernel names like ``advec-mom``) — so the lexer treats all of those as
identifier characters **when not separated by whitespace**.  ``a-b`` is one
identifier; ``a - b`` is an arithmetic expression.  This is documented
behaviour, it is what lets the paper's own label spellings lex unchanged.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterator

from ..common.errors import CalQLSyntaxError

__all__ = ["TokenType", "Token", "tokenize", "KEYWORDS"]


class TokenType(enum.Enum):
    IDENT = "ident"
    NUMBER = "number"
    STRING = "string"
    KEYWORD = "keyword"
    COMMA = ","
    LPAREN = "("
    RPAREN = ")"
    EQ = "="
    NE = "!="
    LT = "<"
    LE = "<="
    GT = ">"
    GE = ">="
    PLUS = "+"
    MINUS = "-"
    STAR = "*"
    SLASH = "/"
    EOF = "eof"


#: Clause and modifier keywords, matched case-insensitively.
KEYWORDS = frozenset(
    {
        "select",
        "aggregate",
        "group",
        "by",
        "where",
        "order",
        "window",
        "format",
        "limit",
        "let",
        "asc",
        "desc",
        "as",
        "not",
    }
)

#: Characters that may appear inside an identifier beyond alphanumerics.
_IDENT_EXTRA = set("_.#:@-")

_SINGLE = {
    ",": TokenType.COMMA,
    "(": TokenType.LPAREN,
    ")": TokenType.RPAREN,
    "+": TokenType.PLUS,
    "*": TokenType.STAR,
}


@dataclass(frozen=True)
class Token:
    type: TokenType
    text: str
    position: int

    @property
    def lowered(self) -> str:
        return self.text.lower()

    def __repr__(self) -> str:
        return f"Token({self.type.name}, {self.text!r}@{self.position})"


def _is_ident_char(ch: str) -> bool:
    return ch.isalnum() or ch in _IDENT_EXTRA


def _is_ident_start(ch: str) -> bool:
    return ch.isalpha() or ch == "_"


def tokenize(text: str) -> list[Token]:
    """Lex ``text`` into a token list ending with an EOF token."""
    return list(_scan(text))


def _scan(text: str) -> Iterator[Token]:
    i = 0
    n = len(text)
    while i < n:
        ch = text[i]
        if ch.isspace():
            i += 1
            continue
        if ch == "#" and (i == 0 or text[i - 1].isspace()):
            # a '#' at the start of a word continues the *previous* ident in
            # the paper's line-wrapped style ("iteration # mainloop"); we
            # treat it as an ident char only inside words, so a free-standing
            # '#' begins a comment to end of line.
            j = text.find("\n", i)
            i = n if j < 0 else j + 1
            continue
        start = i
        if ch in _SINGLE:
            yield Token(_SINGLE[ch], ch, start)
            i += 1
            continue
        if ch == "/":
            yield Token(TokenType.SLASH, ch, start)
            i += 1
            continue
        if ch == "=":
            yield Token(TokenType.EQ, ch, start)
            i += 1
            continue
        if ch == "!":
            if i + 1 < n and text[i + 1] == "=":
                yield Token(TokenType.NE, "!=", start)
                i += 2
                continue
            raise CalQLSyntaxError("unexpected '!'", start, text)
        if ch == "<":
            if i + 1 < n and text[i + 1] == "=":
                yield Token(TokenType.LE, "<=", start)
                i += 2
            else:
                yield Token(TokenType.LT, "<", start)
                i += 1
            continue
        if ch == ">":
            if i + 1 < n and text[i + 1] == "=":
                yield Token(TokenType.GE, ">=", start)
                i += 2
            else:
                yield Token(TokenType.GT, ">", start)
                i += 1
            continue
        if ch in "\"'":
            quote = ch
            i += 1
            buf = []
            while i < n and text[i] != quote:
                if text[i] == "\\" and i + 1 < n:
                    i += 1
                buf.append(text[i])
                i += 1
            if i >= n:
                raise CalQLSyntaxError("unterminated string literal", start, text)
            i += 1  # closing quote
            yield Token(TokenType.STRING, "".join(buf), start)
            continue
        if ch.isdigit() or (ch == "." and i + 1 < n and text[i + 1].isdigit()):
            i = _scan_number(text, i)
            yield Token(TokenType.NUMBER, text[start:i], start)
            continue
        if ch == "-":
            # a '-' is MINUS unless glued between ident chars (hyphenated label)
            yield Token(TokenType.MINUS, "-", start)
            i += 1
            continue
        if _is_ident_start(ch):
            i += 1
            while i < n and _is_ident_char(text[i]):
                # '-' stays inside the ident only when followed by another
                # ident char (so "a-b" is one label but "a- b" is not)
                if text[i] == "-" and not (i + 1 < n and _is_ident_char(text[i + 1])):
                    break
                i += 1
            word = text[start:i]
            # The paper line-wraps labels as "iteration # mainloop"; glue a
            # following '# word' back onto the ident.
            while True:
                k = i
                while k < n and text[k] in " \t":
                    k += 1
                if k < n and text[k] == "#":
                    k += 1
                    while k < n and text[k] in " \t":
                        k += 1
                    if k < n and _is_ident_start(text[k]):
                        m = k + 1
                        while m < n and _is_ident_char(text[m]):
                            m += 1
                        word = word + "#" + text[k:m]
                        i = m
                        continue
                break
            if word.lower() in KEYWORDS:
                yield Token(TokenType.KEYWORD, word, start)
            else:
                yield Token(TokenType.IDENT, word, start)
            continue
        raise CalQLSyntaxError(f"unexpected character {ch!r}", i, text)
    yield Token(TokenType.EOF, "", n)


def _scan_number(text: str, i: int) -> int:
    n = len(text)
    while i < n and (text[i].isdigit() or text[i] == "."):
        i += 1
    if i < n and text[i] in "eE":
        j = i + 1
        if j < n and text[j] in "+-":
            j += 1
        if j < n and text[j].isdigit():
            i = j
            while i < n and text[i].isdigit():
                i += 1
    return i
