"""repro.api.instrument — the public application-instrumentation facade.

Applications annotate themselves through three spellings, all routed to the
process-wide default runtime (every active channel — aggregation profiles,
traces, network flush, sampling — sees the same events)::

    from repro.api import instrument

    with instrument.region("solve"):            # a named code region
        ...

    @instrument.function                        # a profiled function
    def kernel(n):
        ...

    instrument.set("iteration", i)              # a key=value annotation

``region`` uses the ``region`` attribute by default and ``function`` uses
``function`` — the labels the bundled aggregation configs and docs group
by.  Both accept ``attribute=`` for custom nesting hierarchies, and every
helper resolves :func:`repro.runtime.default_runtime` *per call*, so code
instrumented at import time follows a runtime swapped in later (tests,
embedders).

The raw ``mark_begin``/``mark_end`` spellings from early examples still
work but warn once per process — unbalanced begin/end is the bug class the
``with``/decorator forms exist to prevent.
"""

from __future__ import annotations

from contextlib import contextmanager
from functools import wraps
from typing import Any, Callable, Iterator, Optional, Union

from ..query.options import warn_deprecated
from ..runtime.instrumentation import Caliper, default_runtime

__all__ = [
    "region",
    "function",
    "set",
    "mark_begin",
    "mark_end",
]


@contextmanager
def region(
    name: str,
    attribute: str = "region",
    runtime: Optional[Caliper] = None,
) -> Iterator[None]:
    """Annotate a code region: begin on entry, end on exit (exceptions too).

    >>> with instrument.region("io.read"):
    ...     data = load()
    """
    cali = runtime if runtime is not None else default_runtime()
    cali.begin(attribute, name)
    try:
        yield
    finally:
        cali.end(attribute)


def function(
    label: Union[str, Callable, None] = None,
    attribute: str = "function",
    runtime: Optional[Caliper] = None,
) -> Callable:
    """Decorator profiling a function as a region.

    Usable bare (``@instrument.function``) or parameterized
    (``@instrument.function("solve", attribute="kernel")``).  The region
    name defaults to the function's qualified name.
    """

    def decorate(func: Callable, name: Optional[str] = None) -> Callable:
        region_name = name if name is not None else func.__qualname__

        @wraps(func)
        def wrapper(*args: Any, **kwargs: Any) -> Any:
            cali = runtime if runtime is not None else default_runtime()
            cali.begin(attribute, region_name)
            try:
                return func(*args, **kwargs)
            finally:
                cali.end(attribute)

        return wrapper

    if callable(label):
        return decorate(label)
    return lambda func: decorate(func, label)


def set(  # noqa: A001 - deliberate: instrument.set(...) reads as intended
    label: str,
    value: object,
    runtime: Optional[Caliper] = None,
) -> None:
    """Set a key=value annotation on the current thread's blackboard."""
    cali = runtime if runtime is not None else default_runtime()
    cali.set(label, value)


# -- deprecated raw spellings (early examples) ---------------------------------


def mark_begin(name: str, attribute: str = "region") -> None:
    """Deprecated: open a region by hand; prefer ``instrument.region``."""
    warn_deprecated(
        "instrument.mark_begin",
        "instrument.mark_begin/mark_end are deprecated; use "
        "'with instrument.region(...):' or '@instrument.function' instead",
    )
    default_runtime().begin(attribute, name)


def mark_end(name: Optional[str] = None, attribute: str = "region") -> None:
    """Deprecated: close a region by hand; prefer ``instrument.region``."""
    warn_deprecated(
        "instrument.mark_end",
        "instrument.mark_begin/mark_end are deprecated; use "
        "'with instrument.region(...):' or '@instrument.function' instead",
    )
    default_runtime().end(attribute)
