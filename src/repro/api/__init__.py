"""repro.api — the one public query entry point.

The repo grew five ways to run a CalQL query (engine, one-liner, parallel
files, simulated MPI, live server).  They remain available for composition,
but :func:`query` is the supported front door: one call that dispatches on
what the *source* is —

====================================  =========================================
``source``                            executed as
====================================  =========================================
path (``"run.cali"``)                 :meth:`Dataset.from_file(...).query`
path (``"run.rcf"``)                  chunked out-of-core columnar scan
glob (``"data/*.cali"``)              :meth:`Dataset.from_glob(...).query`
``Dataset``                           :meth:`Dataset.query`
iterable of :class:`Record`           :func:`repro.query.run_query`
list of files                         :func:`parallel_query_files` (auto-
                                      parallel for aggregation queries)
``"host:port"`` / ``(host, port)``    :func:`repro.net.live_query` against a
                                      running :class:`AggregationServer`
====================================  =========================================

Every flavor returns the same :class:`~repro.query.engine.QueryResult`.
Execution knobs travel in one :class:`~repro.query.options.QueryOptions`
(or its keyword shorthand)::

    import repro

    repro.api.query("AGGREGATE count GROUP BY function", "data/*.cali")
    repro.api.query(q, dataset, backend="columnar")
    repro.api.query(q, ["a.cali", "b.cali"], jobs=4)       # parallel combine
    repro.api.query(q, "127.0.0.1:7744")                   # live server
    repro.api.query(q, "127.0.0.1:7744", target="telemetry")
    repro.api.query(q, dataset, sampling=0.1)              # sampled + CIs

``QueryOptions(sampling=p)`` (or ``sampling=`` as a keyword) runs the
aggregation over a Bernoulli sample of the input and adds ``est#`` /
``est.lo#`` / ``est.hi#`` confidence columns — see
:func:`repro.sampling.sampled_query`.

The package also hosts :mod:`repro.api.instrument`, the public
instrumentation facade (``with instrument.region("solve"): ...``).
"""

from __future__ import annotations

import glob as _glob
import os
import re
from typing import Iterable, Optional, Sequence, Union

from ..common.errors import QueryError, ReproError
from ..common.record import Record
from ..io.dataset import Dataset
from ..query.engine import QueryEngine, QueryResult
from ..query.options import QueryOptions

from . import instrument

__all__ = ["instrument", "query", "QueryOptions", "QueryResult"]

#: something that looks like a live-server address, e.g. "10.0.0.1:7744"
_HOST_PORT = re.compile(r"^[A-Za-z0-9_.\-]+:\d{1,5}$")


def query(
    text: str,
    source: Union[str, Dataset, Iterable[Record], Sequence[Union[str, os.PathLike]], tuple],
    options: Union[QueryOptions, dict, None] = None,
    *,
    target: str = "aggregate",
    timeout: float = 10.0,
    **kwargs,
) -> QueryResult:
    """Run CalQL ``text`` against ``source``, whatever shape it has.

    ``options`` is a :class:`QueryOptions`; as a convenience its fields may
    also be given directly as keywords (``backend=``, ``jobs=``,
    ``stats=``).  ``target`` and ``timeout`` only apply to live-server
    sources (``"host:port"`` or ``(host, port)``): ``target="telemetry"``
    queries the server's own ``observe.*`` metrics instead of the
    aggregated data.
    """
    opts = _merge_options(options, kwargs)
    if opts.sampling is not None and float(opts.sampling) < 1.0:
        return _query_sampled(text, source, opts)
    if isinstance(source, Dataset):
        return source.query(text, backend=opts.backend)
    if isinstance(source, (str, os.PathLike)):
        return _query_string_source(text, source, opts, target, timeout)
    if isinstance(source, tuple) and _is_address(source):
        host, port = source
        return _query_live(text, str(host), int(port), target, timeout)
    return _query_collection(text, source, opts)


_OPTION_KEYWORDS = ("backend", "jobs", "stats", "sampling", "sampling_seed")


def _merge_options(options, kwargs) -> QueryOptions:
    opts = QueryOptions.coerce(options)
    unknown = set(kwargs) - set(_OPTION_KEYWORDS)
    if unknown:
        raise TypeError(
            f"query() got unexpected keyword(s) {sorted(unknown)}; "
            f"execution options are {'/'.join(_OPTION_KEYWORDS)} "
            "(see QueryOptions)"
        )
    if kwargs:
        merged = {
            key: kwargs.get(key, getattr(opts, key)) for key in _OPTION_KEYWORDS
        }
        opts = QueryOptions(**merged)
    return opts


def _query_sampled(text: str, source, opts: QueryOptions) -> QueryResult:
    """Sampled execution: materialize the records, Bernoulli-sample, fold
    with count-scaling, and report confidence columns."""
    from ..sampling import sampled_query

    return sampled_query(
        text,
        _materialize_records(source, opts),
        float(opts.sampling),  # type: ignore[arg-type]
        seed=opts.sampling_seed,
    )


def _materialize_records(source, opts: QueryOptions) -> list[Record]:
    if isinstance(source, Dataset):
        return source.records
    if isinstance(source, (str, os.PathLike)):
        path = os.fspath(source)
        if _glob.has_magic(path):
            return Dataset.from_glob(path, parallel=opts.jobs).records
        if os.path.exists(path):
            return Dataset.from_file(path).records
        raise QueryError(
            "sampling is a local execution option; it cannot run against a "
            f"live server source ({path!r})"
            if isinstance(source, str) and _HOST_PORT.match(path)
            else f"query source {path!r} does not exist"
        )
    if isinstance(source, tuple) and _is_address(source):
        raise QueryError(
            "sampling is a local execution option; it cannot run against a "
            "live server source"
        )
    items = source if isinstance(source, (list, tuple)) else list(source)
    if items and all(isinstance(i, (str, os.PathLike)) for i in items):
        paths = [os.fspath(i) for i in items]
        return Dataset.from_files(paths, parallel=opts.jobs).records
    return list(items)


def _is_address(source: tuple) -> bool:
    return (
        len(source) == 2
        and isinstance(source[0], str)
        and isinstance(source[1], int)
    )


def _query_string_source(
    text: str, source: Union[str, os.PathLike], opts: QueryOptions, target: str, timeout: float
) -> QueryResult:
    path = os.fspath(source)
    if _glob.has_magic(path):
        dataset = Dataset.from_glob(path, parallel=opts.jobs)
        return dataset.query(text, backend=opts.backend)
    if os.path.exists(path):
        if path.endswith(".rcf"):
            return _query_colfile(text, path, opts)
        return Dataset.from_file(path).query(text, backend=opts.backend)
    if isinstance(source, str) and _HOST_PORT.match(path):
        host, _, port = path.rpartition(":")
        return _query_live(text, host, int(port), target, timeout)
    raise QueryError(
        f"query source {path!r} is neither an existing file, a glob with "
        "matches, nor a host:port address"
    )


class _ChunkRecords:
    """Lazy record view over one decoded chunk store.

    Handed to :meth:`QueryEngine.feed` as the ``records`` iterable; the
    columnar backend reads the store directly and never touches this, so
    Record objects only materialize for LET queries or ``backend="rows"``.
    """

    def __init__(self, store) -> None:
        self._store = store

    def __iter__(self):
        return iter(self._store.records)


def _query_colfile(text: str, path: str, opts: QueryOptions) -> QueryResult:
    """Out-of-core scan of a ``.rcf`` file, one mmap'd chunk at a time.

    Aggregation queries stream every chunk through a partial
    :class:`AggregationDB` — combine semantics make the result identical
    to the in-memory path while peak memory stays one chunk.  Queries
    without AGGREGATE need the full record stream anyway, so they take the
    ordinary :meth:`Dataset.from_file` route.
    """
    engine = QueryEngine(text)
    if engine.scheme is None:
        return Dataset.from_file(path).query(text, backend=opts.backend)
    from ..io.colfile import ColfileReader  # deferred: numpy-heavy module

    reader = ColfileReader(path)
    try:
        db = engine.make_db()
        for store in reader.iter_stores():
            engine.feed(db, _ChunkRecords(store), backend=opts.backend, store=store)
        return engine.finalize(db)
    finally:
        reader.close()


def _query_live(
    text: str, host: str, port: int, target: str, timeout: float
) -> QueryResult:
    from ..net.client import live_query  # deferred: keep file-only use light

    return live_query(host, port, text, target=target, timeout=timeout)


def _query_collection(text: str, source, opts: QueryOptions) -> QueryResult:
    """Iterable source: records run directly, file lists go auto-parallel."""
    items = source if isinstance(source, (list, tuple)) else list(source)
    if items and all(isinstance(i, (str, os.PathLike)) for i in items):
        paths = [os.fspath(i) for i in items]
        if len(paths) > 1 and QueryEngine(text).scheme is not None:
            # Aggregation over many files: partial states combine exactly,
            # so fan the reads out over real cores by default.
            from ..query.parallel import parallel_query_files

            return parallel_query_files(text, paths, opts)
        return Dataset.from_files(paths, parallel=opts.jobs).query(
            text, backend=opts.backend
        )
    if any(not isinstance(i, Record) for i in items):
        bad = next(i for i in items if not isinstance(i, Record))
        raise QueryError(
            f"unsupported query source element of type {type(bad).__name__}; "
            "pass records or file paths (not a mix)"
        )
    return QueryEngine(text).run(items, backend=opts.backend)
