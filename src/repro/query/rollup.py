"""Call-tree rollups: inclusive metrics from exclusive profiles.

Profiles produced by exclusive-time attribution (each record holds the time
spent *directly* in a region path such as ``main/solve/mg``) often need the
complementary inclusive view: a region's metric summed over its whole
subtree.  :func:`rollup_inclusive` computes it as a post-processing pass
over any record set keyed by a slash-path attribute — no re-measurement and
no extra on-line state, which is exactly the kind of derived analysis the
paper's off-line aggregation stage is for.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from ..common.node import PATH_SEPARATOR
from ..common.record import Record
from ..common.variant import ValueType, Variant

__all__ = ["rollup_inclusive"]


def rollup_inclusive(
    records: Iterable[Record],
    path_attribute: str,
    metrics: Sequence[str],
    suffix: str = ".inclusive",
    include_missing_parents: bool = True,
) -> list[Record]:
    """Add subtree-summed metrics to path-keyed records.

    For every record with a ``path_attribute`` value, each ``metric`` is
    summed over the record and all records whose path is a descendant, and
    stored as ``<metric><suffix>``.  Intermediate paths that never occur as
    records themselves (e.g. ``main`` when only ``main/a`` and ``main/b``
    exist) are synthesized with zero exclusive metrics when
    ``include_missing_parents`` — so the returned forest is always closed
    under parents and the tree renders completely.

    Records without the path attribute pass through unchanged.  Records are
    returned in depth-first path order (parents before children).
    """
    plain: list[Record] = []
    by_path: dict[tuple[str, ...], Record] = {}
    for record in records:
        path_value = record.get(path_attribute)
        if path_value.is_empty:
            plain.append(record)
            continue
        path = tuple(path_value.to_string().split(PATH_SEPARATOR))
        if path in by_path:
            # merge duplicate path rows (e.g. multiple ranks): sum metrics
            merged = dict(by_path[path].as_dict())
            for metric in metrics:
                a = by_path[path].get(metric)
                b = record.get(metric)
                total = (a.to_double() if a.is_numeric else 0.0) + (
                    b.to_double() if b.is_numeric else 0.0
                )
                merged[metric] = Variant(ValueType.DOUBLE, total)
            by_path[path] = Record.from_variants(merged)
        else:
            by_path[path] = record

    if include_missing_parents:
        for path in list(by_path):
            for depth in range(1, len(path)):
                parent = path[:depth]
                if parent not in by_path:
                    by_path[parent] = Record(
                        {path_attribute: PATH_SEPARATOR.join(parent)}
                    )

    # Subtree sums, computed leaf-up (longer paths first).
    inclusive: dict[tuple[str, ...], dict[str, float]] = {
        path: {} for path in by_path
    }
    for path in sorted(by_path, key=len, reverse=True):
        record = by_path[path]
        totals = inclusive[path]
        for metric in metrics:
            v = record.get(metric)
            totals[metric] = totals.get(metric, 0.0) + (
                v.to_double() if v.is_numeric else 0.0
            )
        # Propagate to the nearest existing ancestor (when parents are not
        # synthesized, the tree may have gaps).
        for depth in range(len(path) - 1, 0, -1):
            ancestor = path[:depth]
            if ancestor in inclusive:
                parent_totals = inclusive[ancestor]
                for metric in metrics:
                    parent_totals[metric] = (
                        parent_totals.get(metric, 0.0) + totals[metric]
                    )
                break

    out = list(plain)
    for path in sorted(by_path):
        record = by_path[path]
        extra = {
            f"{metric}{suffix}": Variant(ValueType.DOUBLE, inclusive[path][metric])
            for metric in metrics
        }
        out.append(record.with_entries(extra))
    return out
