"""Profile comparison: diff two datasets along a common key.

A standard performance-analysis workflow the flexible data model makes
trivial: aggregate two runs (before/after a change, two machine
configurations, two ranks...) under the same scheme, then join their
outputs on the aggregation key and compute absolute and relative deltas
per metric.

>>> result = compare_profiles(before, after, key=["kernel"],
...                           metrics=["sum#time.duration"])
>>> print(result.to_table())
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

from ..common.record import Record
from ..common.variant import ValueType, Variant
from .engine import QueryResult, sort_records
from ..calql.ast import OrderSpec

__all__ = ["compare_profiles"]


def compare_profiles(
    base: Iterable[Record],
    other: Iterable[Record],
    key: Sequence[str],
    metrics: Sequence[str],
    suffixes: tuple[str, str] = (".base", ".other"),
    query: Optional[str] = None,
) -> QueryResult:
    """Join two record sets on ``key`` and diff their ``metrics``.

    When ``query`` is given, both inputs are first aggregated with it (it
    must GROUP BY exactly ``key``); otherwise the inputs are assumed to be
    already-aggregated profiles with at most one record per key.

    Output records carry, per metric ``m``: ``m<suffixes[0]>``,
    ``m<suffixes[1]>``, ``m.diff`` (other - base) and ``m.ratio``
    (other / base, omitted when base is 0).  Keys present in only one input
    get only that side's value and no diff/ratio.  Results are sorted by
    the first metric's diff, largest regression first.
    """
    if query is not None:
        from .engine import QueryEngine

        engine = QueryEngine(query)
        base = list(engine.run(base))
        other = list(engine.run(other))

    def index(records: Iterable[Record]) -> dict[tuple, Record]:
        table: dict[tuple, Record] = {}
        for record in records:
            k = tuple(record.get(label) for label in key)
            if k in table:
                raise ValueError(
                    "duplicate key in input profile: "
                    + ", ".join(f"{label}={v.to_string()}" for label, v in zip(key, k))
                    + " — aggregate the inputs first (pass query=...)"
                )
            table[k] = record
        return table

    base_by_key = index(base)
    other_by_key = index(other)

    out: list[Record] = []
    for k in base_by_key.keys() | other_by_key.keys():
        entries: dict[str, Variant] = {}
        for label, value in zip(key, k):
            if value is not None and not value.is_empty:
                entries[label] = value
        b = base_by_key.get(k)
        o = other_by_key.get(k)
        for metric in metrics:
            bv = b.get(metric) if b is not None else Variant.empty()
            ov = o.get(metric) if o is not None else Variant.empty()
            if not bv.is_empty and bv.is_numeric:
                entries[f"{metric}{suffixes[0]}"] = bv
            if not ov.is_empty and ov.is_numeric:
                entries[f"{metric}{suffixes[1]}"] = ov
            if bv.is_numeric and ov.is_numeric and not bv.is_empty and not ov.is_empty:
                diff = ov.to_double() - bv.to_double()
                entries[f"{metric}.diff"] = Variant(ValueType.DOUBLE, diff)
                if bv.to_double() != 0.0:
                    entries[f"{metric}.ratio"] = Variant(
                        ValueType.DOUBLE, ov.to_double() / bv.to_double()
                    )
        out.append(Record.from_variants(entries))

    out = sort_records(out, [OrderSpec(f"{metrics[0]}.diff", ascending=False)])
    preferred = list(key)
    for metric in metrics:
        preferred += [
            f"{metric}{suffixes[0]}",
            f"{metric}{suffixes[1]}",
            f"{metric}.diff",
            f"{metric}.ratio",
        ]
    return QueryResult(out, preferred)
