"""Columnar (vectorized) off-line aggregation backend.

The row-at-a-time :class:`~repro.aggregate.db.AggregationDB` is the right
engine on-line, where records arrive one by one and must never be stored.
Off-line, the whole dataset is in hand — so the classic scientific-Python
optimization applies: convert to columns once, then aggregate with numpy
group-by primitives instead of a Python-level loop.

This backend covers **every built-in operator** (``count``, ``sum``,
``min``, ``max``, ``avg``, ``variance``, ``stddev``, ``histogram``,
``first``/``any``, ``ratio``, ``scale``, ``percent_total`` — plus their
aliased forms) and evaluates WHERE clauses vectorized, by pushing each
condition down onto the interned code columns: the predicate runs once per
*distinct* value, then broadcasts through the codes.

Equivalence with the streaming engine is by construction, not by parallel
reimplementation: the vectorized pass produces the *same per-key operator
states* the streaming kernels would hold (``np.bincount`` accumulates
weights in input order, so float sums are bit-identical), and the final
values are rendered by each operator's own ``results()`` — the exact code
path :meth:`AggregationDB.flush` uses.  ``QueryEngine`` auto-dispatches
here via :func:`supports_scheme`; ``bench_columnar.py`` and
``benchmarks/run_bench_json.py`` quantify the speedup.

Pipeline:

1. intern each attribute once (:class:`~repro.io.dataset.ColumnStore`,
   cached per :class:`~repro.io.dataset.Dataset`);
2. evaluate WHERE vectorized over the code columns;
3. collapse the key-code matrix into one composite group id per record
   (mixed-radix packing — collision-free by construction);
4. one ``np.bincount`` / sorted-``reduceat`` pass per operator moment;
5. render per-group states through the operators' own ``results()``.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence, Union

import numpy as np

from .. import observe
from ..aggregate.db import AggregationDB
from ..aggregate.ops import (
    WEIGHT_LABEL,
    AggregateOp,
    AliasedOp,
    AvgOp,
    CountOp,
    FirstOp,
    HistogramOp,
    MaxOp,
    MinOp,
    MomentsOp,
    PercentTotalOp,
    RatioOp,
    ScaleOp,
    StddevOp,
    SumOp,
    VarianceOp,
)
from ..aggregate.scheme import AggregationScheme
from ..calql.ast import Compare, Condition, Exists, NotCond
from ..calql.semantics import compare_variants
from ..common.errors import QueryError
from ..common.record import Record
from ..common.variant import Variant
from ..io.dataset import ColumnStore

__all__ = [
    "columnar_aggregate",
    "columnar_db",
    "columnar_feed",
    "supports_scheme",
    "unsupported_ops",
]

#: Exact kernel types with a vectorized implementation.  Exact types, not
#: isinstance: a user subclass may override ``update`` semantics the vector
#: kernels know nothing about, so it must fall back to the row engine.
_SUPPORTED = frozenset(
    {
        CountOp,
        SumOp,
        MinOp,
        MaxOp,
        AvgOp,
        VarianceOp,
        StddevOp,
        MomentsOp,
        HistogramOp,
        FirstOp,
        RatioOp,
        ScaleOp,
        PercentTotalOp,
    }
)

Source = Union[ColumnStore, Iterable[Record]]


def _unwrap(op: AggregateOp) -> AggregateOp:
    return op.inner if isinstance(op, AliasedOp) else op


def supports_scheme(scheme: AggregationScheme) -> bool:
    """True when every operator has a vectorized implementation.

    Predicates (WHERE) never disqualify a scheme — AST conditions are
    evaluated vectorized, and opaque compiled predicates are applied
    row-wise up front.
    """
    return all(type(_unwrap(op)) in _SUPPORTED for op in scheme.ops)


def unsupported_ops(scheme: AggregationScheme) -> list[str]:
    """Spec strings of the operators that force the row engine (may be [])."""
    return [
        op.spec_string()
        for op in scheme.ops
        if type(_unwrap(op)) not in _SUPPORTED
    ]


def _as_store(source: Source) -> ColumnStore:
    if isinstance(source, ColumnStore):
        return source
    return ColumnStore(source if isinstance(source, list) else list(source))


# -- vectorized WHERE -------------------------------------------------------------


def _condition_mask(cond: Condition, store: ColumnStore) -> np.ndarray:
    """Boolean row mask for one WHERE condition (predicate pushdown).

    Compare/Exists evaluate per distinct interned value, then broadcast
    through the code column; a missing attribute (code -1) is always False
    for them, and ``not(...)`` is plain mask negation — exactly the row
    semantics of :func:`repro.calql.semantics.compile_conditions`.
    """
    if isinstance(cond, Exists):
        codes, _values = store.interned(cond.label)
        return codes >= 0
    if isinstance(cond, NotCond):
        return ~_condition_mask(cond.inner, store)
    if isinstance(cond, Compare):
        codes, values = store.interned(cond.label)
        truth = np.zeros(len(values) + 1, dtype=bool)  # slot 0 = missing
        for i, v in enumerate(values):
            truth[i + 1] = compare_variants(v, cond.op, cond.value)
        return truth[codes + 1]
    raise QueryError(f"unknown condition type {type(cond).__name__}")


def _select_rows(
    store: ColumnStore,
    scheme: AggregationScheme,
    where: Optional[Sequence[Condition]],
) -> np.ndarray:
    """Indices of the rows the aggregation folds (WHERE applied)."""
    n = len(store)
    if where is not None:
        mask: Optional[np.ndarray] = None
        for cond in where:
            m = _condition_mask(cond, store)
            mask = m if mask is None else mask & m
        if mask is None:
            return np.arange(n, dtype=np.int64)
        return np.flatnonzero(mask)
    if scheme.predicate is not None:
        predicate = scheme.predicate
        records = store.records
        return np.fromiter(
            (i for i in range(n) if predicate(records[i])), dtype=np.int64
        )
    return np.arange(n, dtype=np.int64)


# -- grouping ---------------------------------------------------------------------


def _equality_classes(values: Sequence[Variant]) -> tuple[np.ndarray, int]:
    """Collapse distinct interned values into Variant-equality classes.

    Interned codes are exact — ``int 1`` and ``double 1.0`` are distinct —
    but GROUP BY identity follows :class:`Variant` equality, where numeric
    values compare as floats across int/uint/double.  Returns a lookup
    table mapping ``code + 1`` (slot 0 = missing) to a dense class id, plus
    the radix (class count + 1).  Runs once per *distinct* value, so the
    per-record work stays vectorized.
    """
    classes = np.empty(len(values) + 1, dtype=np.int64)
    classes[0] = 0  # the missing slot is its own class
    table: dict[object, int] = {}
    for i, v in enumerate(values):
        key = float(v.value) if v.type.is_numeric else (v.type, v.value)
        cid = table.get(key)
        if cid is None:
            cid = len(table) + 1
            table[key] = cid
        classes[i + 1] = cid
    return classes, len(table) + 1


class _Groups:
    """Selected rows collapsed to dense group ids, with reduceat views."""

    __slots__ = ("sel", "inverse", "count", "order", "starts", "key_entries")

    def __init__(self, store: ColumnStore, scheme: AggregationScheme, sel: np.ndarray):
        self.sel = sel
        n = len(sel)
        group = np.zeros(n, dtype=np.int64)
        key_codes: list[tuple[str, np.ndarray, list[Variant]]] = []
        for label in scheme.key:
            codes, values = store.interned(label)
            codes = codes[sel]
            key_codes.append((label, codes, values))
            # Group by Variant-equality classes, not raw codes: the exact
            # interning keeps int 1 / double 1.0 as distinct codes, but the
            # streaming engine merges them into one group.
            classes, radix = _equality_classes(values)
            # Re-encode after every column so composite ids stay < n and the
            # packing can never overflow, regardless of key width/cardinality.
            group = np.unique(group * radix + classes[codes + 1], return_inverse=True)[1]
        unique_ids, inverse = np.unique(group, return_inverse=True)
        count = len(unique_ids)
        self.inverse = inverse
        self.count = count
        # pre-sorted view for reduceat-style per-group reductions
        self.order = np.argsort(inverse, kind="stable")
        sorted_inverse = inverse[self.order]
        boundaries = np.flatnonzero(np.diff(sorted_inverse)) + 1
        self.starts = np.concatenate(([0], boundaries))
        # one representative (first) row per group, to reconstruct key entries
        representatives = np.full(count, -1, dtype=np.int64)
        representatives[inverse[::-1]] = np.arange(n - 1, -1, -1)
        self.key_entries: list[dict[str, Variant]] = []
        for g in range(count):
            rep = representatives[g]
            entries: dict[str, Variant] = {}
            for label, codes, values in key_codes:
                code = codes[rep]
                if code >= 0:
                    entries[label] = values[code]
            self.key_entries.append(entries)


# -- vectorized operator kernels --------------------------------------------------


def _metric(store: ColumnStore, sel: np.ndarray, label: str, include_bool: bool = True):
    values, mask = store.numeric(label, include_bool)
    return values[sel], mask[sel]


def _op_states(
    kernel: AggregateOp,
    store: ColumnStore,
    groups: _Groups,
    weights: Optional[np.ndarray] = None,
) -> list[list]:
    """Per-group streaming-kernel states, computed vectorized.

    Each returned state matches what the row engine's ``update`` loop would
    have produced for that group, bit for bit where the arithmetic allows
    (bincount adds weights in input order, mirroring streaming addition).

    ``weights`` (aligned with the selected rows, 1.0 where absent) carries
    ``sample.weight``: the extensive operators accumulate Σw / Σw·x instead
    of counts and plain sums, exactly like the weighted streaming kernels.
    """
    sel, inverse, n_groups = groups.sel, groups.inverse, groups.count
    t = type(kernel)
    if t is CountOp:
        if weights is None:
            counts = np.bincount(inverse, minlength=n_groups)
            return [[int(c)] for c in counts]
        counts = np.bincount(inverse, weights=weights, minlength=n_groups)
        return [[float(c)] for c in counts]
    if t in (SumOp, AvgOp, ScaleOp, PercentTotalOp):
        values, mask = _metric(store, sel, kernel.args[0])
        inv_m, val_m = inverse[mask], values[mask]
        if weights is None:
            counts = np.bincount(inv_m, minlength=n_groups)
            sums = np.bincount(inv_m, weights=val_m, minlength=n_groups)
            return [[int(counts[g]), float(sums[g])] for g in range(n_groups)]
        w_m = weights[mask]
        counts = np.bincount(inv_m, weights=w_m, minlength=n_groups)
        sums = np.bincount(inv_m, weights=w_m * val_m, minlength=n_groups)
        return [[float(counts[g]), float(sums[g])] for g in range(n_groups)]
    if t in (VarianceOp, StddevOp, MomentsOp):
        values, mask = _metric(store, sel, kernel.args[0])
        inv_m, val_m = inverse[mask], values[mask]
        if weights is None:
            counts = np.bincount(inv_m, minlength=n_groups)
            sums = np.bincount(inv_m, weights=val_m, minlength=n_groups)
            with np.errstate(over="ignore"):  # like Python floats: overflow -> inf
                sumsqs = np.bincount(inv_m, weights=val_m * val_m, minlength=n_groups)
            return [
                [int(counts[g]), float(sums[g]), float(sumsqs[g])]
                for g in range(n_groups)
            ]
        w_m = weights[mask]
        wval = w_m * val_m
        counts = np.bincount(inv_m, weights=w_m, minlength=n_groups)
        sums = np.bincount(inv_m, weights=wval, minlength=n_groups)
        with np.errstate(over="ignore"):
            sumsqs = np.bincount(inv_m, weights=wval * val_m, minlength=n_groups)
        return [
            [float(counts[g]), float(sums[g]), float(sumsqs[g])]
            for g in range(n_groups)
        ]
    if t in (MinOp, MaxOp):
        values, mask = _metric(store, sel, kernel.args[0])
        fill = np.inf if t is MinOp else -np.inf
        sorted_vals = np.where(mask, values, fill)[groups.order]
        reducer = np.minimum if t is MinOp else np.maximum
        extrema = reducer.reduceat(sorted_vals, groups.starts)
        counts = np.bincount(inverse[mask], minlength=n_groups)
        return [
            [float(extrema[g])] if counts[g] else [None] for g in range(n_groups)
        ]
    if t is RatioOp:
        xs, xmask = _metric(store, sel, kernel.args[0], include_bool=False)
        ys, ymask = _metric(store, sel, kernel.args[1], include_bool=False)
        if weights is not None:
            xs = weights * xs
            ys = weights * ys
        sum_x = np.bincount(inverse[xmask], weights=xs[xmask], minlength=n_groups)
        sum_y = np.bincount(inverse[ymask], weights=ys[ymask], minlength=n_groups)
        return [[float(sum_x[g]), float(sum_y[g])] for g in range(n_groups)]
    if t is FirstOp:
        codes, values = store.interned(kernel.args[0])
        codes = codes[sel]
        n = len(sel)
        # position of the first non-empty value per group, in input order
        position = np.where(codes >= 0, np.arange(n), n)
        firsts = np.minimum.reduceat(position[groups.order], groups.starts)
        return [
            [values[codes[f]]] if f < n else [None] for f in firsts
        ]
    if t is HistogramOp:
        values, mask = _metric(store, sel, kernel.args[0])
        inv_m, val_m = inverse[mask], values[mask]
        bins = kernel.bins
        # Same slot arithmetic as the streaming update (including the edge
        # where float rounding pushes an in-range value into the overflow
        # slot): 0 = underflow, 1..bins = bins, bins+1 = overflow.
        in_range = (val_m >= kernel.lo) & (val_m < kernel.hi)
        mid = np.zeros(len(val_m), dtype=np.int64)
        mid[in_range] = (
            (val_m[in_range] - kernel.lo) * kernel._scale
        ).astype(np.int64) + 1
        slots = np.where(val_m < kernel.lo, 0, np.where(val_m >= kernel.hi, bins + 1, mid))
        width = bins + 2
        flat = np.bincount(inv_m * width + slots, minlength=n_groups * width)
        per_group = flat.reshape(n_groups, width)
        return [[int(c) for c in per_group[g]] for g in range(n_groups)]
    raise NotImplementedError(
        f"columnar backend does not support: {kernel.spec_string()}"
    )  # pragma: no cover - guarded by supports_scheme


# -- entry points -----------------------------------------------------------------


def _compute(
    source: Source,
    scheme: AggregationScheme,
    where: Optional[Sequence[Condition]],
) -> tuple[list[dict[str, Variant]], list[list[list]], int, int]:
    """Core pass: ``(key entries, per-group op states, offered, processed)``.

    ``where`` is the query's AST condition list for vectorized evaluation;
    ``None`` falls back to the scheme's compiled predicate, row-wise.  When
    both exist they are the same filter (the scheme's predicate is compiled
    from the WHERE clause), so only one is applied.
    """
    if not supports_scheme(scheme):
        unsupported = [
            op.spec_string()
            for op in scheme.ops
            if type(_unwrap(op)) not in _SUPPORTED
        ]
        raise NotImplementedError(
            "columnar backend does not support: " + ", ".join(unsupported)
        )
    with observe.span("columnar.convert", cached=isinstance(source, ColumnStore)):
        store = _as_store(source)
    offered = len(store)
    with observe.span("columnar.where"):
        sel = _select_rows(store, scheme, where)
    processed = len(sel)
    if processed == 0:
        return [], [], offered, processed
    with observe.span("columnar.group"):
        groups = _Groups(store, scheme, sel)
    # Sampling weights, if any record carries one.  Bool weights are
    # excluded (matching the streaming plans' _weight_value) and missing or
    # non-numeric weights fold as 1.0.
    weights: Optional[np.ndarray] = None
    wvals, wmask = store.numeric(WEIGHT_LABEL, False)
    if wmask.any():
        sel_mask = wmask[sel]
        if sel_mask.any():
            weights = np.where(sel_mask, wvals[sel], 1.0)
    with observe.span("columnar.ops"):
        columns = [
            _op_states(_unwrap(op), store, groups, weights) for op in scheme.ops
        ]
        states = [
            [column[g] for column in columns] for g in range(groups.count)
        ]
    return groups.key_entries, states, offered, processed


def columnar_aggregate(
    source: Source,
    scheme: AggregationScheme,
    where: Optional[Sequence[Condition]] = None,
) -> list[Record]:
    """Aggregate ``source`` under ``scheme`` with numpy group-by.

    ``source`` is a record iterable or a prebuilt (cached)
    :class:`~repro.io.dataset.ColumnStore`.  Raises
    :class:`NotImplementedError` for schemes :func:`supports_scheme`
    rejects; results match :func:`repro.aggregate.aggregate_records` exactly
    (up to record order, with float reductions subject only to the global
    ``percent_total`` denominator's summation order).
    """
    key_entries, states, _offered, _processed = _compute(source, scheme, where)
    # Global totals for percent_total — mirrors AggregationDB.flush.
    totals: dict[int, float] = {}
    for i, op in enumerate(scheme.ops):
        if getattr(op, "needs_global_total", False):
            totals[i] = sum(group_states[i][1] for group_states in states)
    out: list[Record] = []
    for entries, group_states in zip(key_entries, states):
        data = dict(entries)
        for i, (op, state) in enumerate(zip(scheme.ops, group_states)):
            if i in totals:
                results = op.results_with_total(state, totals[i])  # type: ignore[attr-defined]
            else:
                results = op.results(state)
            for label, value in results:
                data[label] = value
        out.append(Record.from_variants(data))
    return out


def columnar_feed(
    db: AggregationDB,
    source: Source,
    where: Optional[Sequence[Condition]] = None,
) -> None:
    """Vectorized equivalent of ``db.process_all(records)``.

    Computes partial states columnar and merges them into ``db`` with
    combine semantics — the fast path :meth:`QueryEngine.feed` dispatches to,
    so even the partial-aggregation steps the MPI query application composes
    benefit from vectorization.
    """
    key_entries, states, offered, processed = _compute(source, db.scheme, where)
    db.load_states(zip(key_entries, states), offered=offered, processed=processed)


def columnar_db(
    source: Source,
    scheme: AggregationScheme,
    where: Optional[Sequence[Condition]] = None,
) -> AggregationDB:
    """A fresh :class:`AggregationDB` holding the vectorized partial result.

    Interchangeable with a DB the streaming path filled: it can be
    ``combine``-d, flushed, or fed further records.
    """
    db = AggregationDB(scheme)
    columnar_feed(db, source, where)
    return db
