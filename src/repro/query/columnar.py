"""Columnar (vectorized) off-line aggregation backend.

The row-at-a-time :class:`~repro.aggregate.db.AggregationDB` is the right
engine on-line, where records arrive one by one and must never be stored.
Off-line, the whole dataset is in hand — so the classic scientific-Python
optimization applies: convert to columns once, then aggregate with numpy
group-by primitives instead of a Python-level loop.

:func:`columnar_aggregate` implements this for the common operator subset
(``count``, ``sum``, ``min``, ``max``, ``avg`` — plus their aliased forms)
and produces *bit-identical grouping* to the streaming engine (property-
tested); callers fall back to the row engine for anything else.
``bench_columnar.py`` quantifies the speedup.

Pipeline:

1. intern each key attribute's values into integer codes (-1 = missing);
2. collapse the code matrix into one composite group id per record
   (mixed-radix packing — collision-free by construction);
3. one ``np.bincount`` / sorted-``reduceat`` pass per operator.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

import numpy as np

from ..aggregate.ops import AggregateOp, AliasedOp, AvgOp, CountOp, MaxOp, MinOp, SumOp
from ..aggregate.scheme import AggregationScheme
from ..common.record import Record
from ..common.variant import ValueType, Variant

__all__ = ["columnar_aggregate", "supports_scheme"]

_SUPPORTED = (CountOp, SumOp, MinOp, MaxOp, AvgOp)


def _unwrap(op: AggregateOp) -> AggregateOp:
    return op.inner if isinstance(op, AliasedOp) else op


def supports_scheme(scheme: AggregationScheme) -> bool:
    """True when every operator has a vectorized implementation.

    Predicates (WHERE) are fine — they are applied row-wise up front.
    """
    return all(isinstance(_unwrap(op), _SUPPORTED) for op in scheme.ops)


def columnar_aggregate(
    records: Iterable[Record], scheme: AggregationScheme
) -> list[Record]:
    """Aggregate ``records`` under ``scheme`` with numpy group-by.

    Raises :class:`NotImplementedError` for schemes
    :func:`supports_scheme` rejects; results match
    :func:`repro.aggregate.aggregate_records` exactly (up to record order,
    and with float sums subject to the usual summation-order rounding).
    """
    if not supports_scheme(scheme):
        unsupported = [
            op.spec_string() for op in scheme.ops if not isinstance(_unwrap(op), _SUPPORTED)
        ]
        raise NotImplementedError(
            "columnar backend does not support: " + ", ".join(unsupported)
        )

    rows = list(records)
    if scheme.predicate is not None:
        predicate = scheme.predicate
        rows = [r for r in rows if predicate(r)]
    n = len(rows)
    if n == 0:
        return []

    # -- 1. intern key columns ------------------------------------------------
    key_labels = scheme.key
    code_columns: list[np.ndarray] = []
    value_tables: list[list[Variant]] = []
    for label in key_labels:
        table: dict[Variant, int] = {}
        values: list[Variant] = []
        codes = np.empty(n, dtype=np.int64)
        for i, record in enumerate(rows):
            v = record.get(label)
            if v.is_empty:
                codes[i] = -1
                continue
            idx = table.get(v)
            if idx is None:
                idx = len(values)
                table[v] = idx
                values.append(v)
            codes[i] = idx
        code_columns.append(codes)
        value_tables.append(values)

    # -- 2. composite group ids (mixed radix over shifted codes) -----------------
    group = np.zeros(n, dtype=np.int64)
    for codes, values in zip(code_columns, value_tables):
        radix = len(values) + 1  # +1 for the missing slot
        # Re-encode after every column so composite ids stay < n and the
        # packing can never overflow, regardless of key width/cardinality.
        group = np.unique(group * radix + (codes + 1), return_inverse=True)[1]
    unique_ids, inverse = np.unique(group, return_inverse=True)
    n_groups = len(unique_ids)
    # one representative row index per group, to reconstruct key entries
    representatives = np.full(n_groups, -1, dtype=np.int64)
    representatives[inverse[::-1]] = np.arange(n - 1, -1, -1)

    # -- metric columns, extracted once per distinct input label -----------------
    metric_cache: dict[str, tuple[np.ndarray, np.ndarray]] = {}

    def metric_column(label: str) -> tuple[np.ndarray, np.ndarray]:
        cached = metric_cache.get(label)
        if cached is not None:
            return cached
        values = np.zeros(n, dtype=np.float64)
        mask = np.zeros(n, dtype=bool)
        for i, record in enumerate(rows):
            v = record.get(label)
            if not v.is_empty and (v.is_numeric or v.type is ValueType.BOOL):
                values[i] = v.to_double()
                mask[i] = True
        metric_cache[label] = (values, mask)
        return values, mask

    # pre-sorted view for min/max reduceat
    order = np.argsort(inverse, kind="stable")
    sorted_inverse = inverse[order]
    boundaries = np.flatnonzero(np.diff(sorted_inverse)) + 1
    starts = np.concatenate(([0], boundaries))

    # -- 3. one vectorized pass per operator ----------------------------------------
    outputs: list[tuple[str, list[Optional[Variant]]]] = []
    for op in scheme.ops:
        label_out = op.output_labels()[0]
        kernel = _unwrap(op)
        column: list[Optional[Variant]]
        if isinstance(kernel, CountOp):
            counts = np.bincount(inverse, minlength=n_groups)
            column = [Variant(ValueType.UINT, int(c)) for c in counts]
        else:
            values, mask = metric_column(kernel.args[0])
            counts = np.bincount(inverse, weights=mask.astype(np.float64), minlength=n_groups)
            if isinstance(kernel, (SumOp, AvgOp)):
                sums = np.bincount(
                    inverse, weights=np.where(mask, values, 0.0), minlength=n_groups
                )
                if isinstance(kernel, SumOp):
                    column = [
                        _sum_variant(sums[g]) if counts[g] > 0 else None
                        for g in range(n_groups)
                    ]
                else:
                    column = [
                        Variant(ValueType.DOUBLE, float(sums[g] / counts[g]))
                        if counts[g] > 0
                        else None
                        for g in range(n_groups)
                    ]
            else:  # Min / Max over sorted segments
                fill = np.inf if isinstance(kernel, MinOp) else -np.inf
                sorted_vals = np.where(mask, values, fill)[order]
                reducer = np.minimum if isinstance(kernel, MinOp) else np.maximum
                extrema = reducer.reduceat(sorted_vals, starts)
                column = [
                    _sum_variant(extrema[g]) if counts[g] > 0 else None
                    for g in range(n_groups)
                ]
        outputs.append((label_out, column))

    # -- assemble output records -----------------------------------------------------
    out: list[Record] = []
    for g in range(n_groups):
        rep = rows[representatives[g]]
        entries: dict[str, Variant] = {}
        for label, codes in zip(key_labels, code_columns):
            v = rep.get(label)
            if not v.is_empty:
                entries[label] = v
        for label_out, column in outputs:
            value = column[g]
            if value is not None:
                entries[label_out] = value
        out.append(Record.from_variants(entries))
    return out


def _sum_variant(x: float) -> Variant:
    # Mirrors the row engine's rendering (SumOp/_as_variant) exactly so the
    # two backends stay bit-identical.
    if np.isfinite(x) and x == int(x):
        return Variant(ValueType.INT, int(x))
    return Variant(ValueType.DOUBLE, float(x))
