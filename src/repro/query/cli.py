"""``repro-query``: the command-line query application.

The off-line counterpart of Caliper's ``cali-query``: applies a CalQL
expression to one or more recorded datasets and prints or writes the
result.  ``--parallel N`` runs the query through the simulated-MPI parallel
query application (Section IV-C) instead of serially, and reports the phase
timings the paper's Figure 4 plots.

Examples::

    repro-query -q "AGGREGATE sum(time.duration) GROUP BY kernel" run*.cali
    repro-query -q "AGGREGATE count GROUP BY mpi.function FORMAT csv" \
        --output mpi.csv data/*.cali
    repro-query -q "AGGREGATE sum(aggregate.count) GROUP BY kernel" \
        --parallel 64 data/*.cali
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Optional, Sequence

from ..common.errors import ReproError
from ..io.dataset import Dataset
from .engine import QueryEngine
from .mpi_query import MPIQueryRunner

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-query",
        description="Query and aggregate recorded performance data with CalQL.",
    )
    parser.add_argument(
        "files", nargs="+", help="input record files (.cali/.json/.csv/.rcf)"
    )
    parser.add_argument(
        "-q", "--query", help="CalQL query expression"
    )
    parser.add_argument(
        "--list-attributes",
        action="store_true",
        help="print the attribute labels present in the dataset and exit",
    )
    parser.add_argument(
        "--globals",
        action="store_true",
        dest="show_globals",
        help="print per-run global metadata and exit",
    )
    parser.add_argument(
        "-o", "--output", help="write the result to this file instead of stdout"
    )
    parser.add_argument(
        "--backend",
        choices=("auto", "rows", "columnar"),
        default="auto",
        help="aggregation engine: auto (planner picks, default), rows "
        "(streaming), or columnar (vectorized; errors if unsupported)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        metavar="N",
        help="read + partially aggregate input files in N worker processes "
        "(real cores; aggregation queries only)",
    )
    parser.add_argument(
        "--parallel",
        type=int,
        metavar="N",
        help="run through the simulated-MPI parallel query app with N processes",
    )
    parser.add_argument(
        "--fanout",
        type=int,
        default=2,
        help="reduction-tree fanout for --parallel (default 2)",
    )
    parser.add_argument(
        "--timing",
        action="store_true",
        help="print phase timings and per-level reduction-tree telemetry "
        "(--parallel) to stderr",
    )
    parser.add_argument(
        "--sample",
        type=float,
        metavar="P",
        help="aggregate over a Bernoulli sample of the input at keep "
        "probability P in (0, 1]: results carry count-scaled aggregates "
        "plus est#/est.lo#/est.hi# confidence columns",
    )
    parser.add_argument(
        "--sample-seed",
        type=int,
        metavar="N",
        help="RNG seed for --sample (reproducible sampling decisions)",
    )
    parser.add_argument(
        "--stats",
        action="store_true",
        help="collect internal telemetry (repro.observe) during the query "
        "and print the metrics table to stderr",
    )
    parser.add_argument(
        "--json-stats",
        metavar="PATH",
        help="collect internal telemetry and write it as JSON to PATH "
        "('-' = stdout)",
    )
    parser.add_argument(
        "--quiet",
        action="store_true",
        help="suppress auxiliary stderr output (timing summary, stats table)",
    )
    return parser


#: subcommand names dispatched before classic file-query parsing
SUBCOMMANDS = ("serve", "live", "tree", "convert", "check", "store")


def _suggest_subcommand(word: str) -> Optional[str]:
    """Close-match suggestion for a mistyped subcommand, or None.

    Mirrors the runtime config schema's unknown-key suggestions: only words
    that *look like* subcommand attempts qualify — existing files, flags,
    and extension-bearing names are inputs for the classic query app, not
    typos.
    """
    import difflib

    if word.startswith("-") or os.path.exists(word) or "." in word:
        return None
    matches = difflib.get_close_matches(word, SUBCOMMANDS, n=1)
    return matches[0] if matches else None


def main(argv: Optional[Sequence[str]] = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] in ("serve", "live", "tree"):
        # On-line service commands live in repro.net; everything else is the
        # classic file-based query application.
        from ..net.cli import main as net_main

        return net_main(argv)
    if argv and argv[0] == "convert":
        return _convert(argv[1:])
    if argv and argv[0] == "check":
        from ..store.cli import check_main

        return check_main(argv[1:])
    if argv and argv[0] == "store":
        from ..store.cli import store_main

        return store_main(argv[1:])
    if argv:
        suggestion = _suggest_subcommand(argv[0])
        if suggestion is not None:
            print(
                f"repro-query: unknown subcommand {argv[0]!r} "
                f"(did you mean {suggestion!r}?)",
                file=sys.stderr,
            )
            return 2
    parser = build_parser()
    args = parser.parse_args(argv)
    if not (args.query or args.list_attributes or args.show_globals):
        parser.error("one of --query, --list-attributes or --globals is required")
    if args.stats or args.json_stats:
        # Collect into a fresh registry for exactly this invocation, then
        # restore whatever collection state an embedding process had.
        from .. import observe

        with observe.collecting() as reg:
            code = _run(args)
            if code == 0:
                _emit_stats(args, reg)
        return code
    return _run(args)


def _convert(argv: Sequence[str]) -> int:
    """``repro-query convert``: re-encode record files as binary columnar .rcf."""
    parser = argparse.ArgumentParser(
        prog="repro-query convert",
        description="Convert record files (.cali/.json/.csv) to the binary "
        "columnar .rcf format for zero-copy loading.",
    )
    parser.add_argument("files", nargs="+", help="input record files")
    parser.add_argument(
        "-o",
        "--output",
        help="output path (single input only; default: input with .rcf suffix)",
    )
    parser.add_argument(
        "--chunk-rows",
        type=int,
        default=0,
        metavar="N",
        help="rows per chunk (0 = library default; smaller chunks bound the "
        "memory of later out-of-core scans)",
    )
    parser.add_argument(
        "--quiet", action="store_true", help="suppress the per-file summary"
    )
    args = parser.parse_args(list(argv))
    if args.output and len(args.files) > 1:
        parser.error("--output only makes sense with a single input file")
    from ..io.colfile import ColfileWriter
    from ..io.dataset import read_records

    try:
        for path in args.files:
            records, globals_ = read_records(path)
            out_path = args.output or _rcf_path(path)
            with ColfileWriter(out_path, globals_=globals_) as writer:
                count = writer.write_records(records, chunk_rows=args.chunk_rows)
            if not args.quiet:
                print(f"{path}: {count} records -> {out_path}", file=sys.stderr)
    except (ReproError, OSError) as exc:
        print(f"repro-query convert: error: {exc}", file=sys.stderr)
        return 1
    return 0


def _rcf_path(path: str) -> str:
    base, dot, _ext = path.rpartition(".")
    return (base if dot else path) + ".rcf"


def _emit_stats(args, reg) -> None:
    """Print/write the collected telemetry per the --stats/--json-stats flags."""
    from ..observe import stats_table, to_dict

    if args.stats and not args.quiet:
        print(stats_table(reg), file=sys.stderr)
    if args.json_stats:
        import json

        text = json.dumps(to_dict(reg), indent=2)
        if args.json_stats == "-":
            print(text)
        else:
            with open(args.json_stats, "w", encoding="utf-8") as stream:
                stream.write(text + "\n")


def _run(args) -> int:
    from .options import QueryOptions

    try:
        opts = QueryOptions.from_args(args)
    except ValueError as exc:
        print(f"repro-query: error: {exc}", file=sys.stderr)
        return 2
    try:
        if args.list_attributes or args.show_globals:
            from ..io.dataset import read_records

            if args.list_attributes:
                labels: set[str] = set()
                for path in args.files:
                    for record in read_records(path)[0]:
                        labels.update(record.labels())
                print("\n".join(sorted(labels)))
            if args.show_globals:
                for path in args.files:
                    _, globals_ = read_records(path)
                    pairs = ", ".join(
                        f"{k}={v.to_string()}" for k, v in sorted(globals_.items())
                    )
                    print(f"{path}: {pairs or '(none)'}")
            return 0
        if opts.sampling is not None and opts.sampling < 1.0:
            if args.parallel:
                raise ReproError("--sample cannot combine with --parallel")
            from ..sampling import sampled_query

            dataset = Dataset.from_files(args.files, parallel=args.jobs)
            result = sampled_query(
                args.query, dataset.records, opts.sampling,
                seed=opts.sampling_seed,
            )
        elif args.parallel:
            runner = MPIQueryRunner(args.query, size=args.parallel, fanout=args.fanout)
            outcome = runner.run_files(args.files)
            result = outcome.result
            if args.timing and not args.quiet:
                print(outcome.timing_summary(), file=sys.stderr)
        elif args.jobs and args.jobs > 1 and len(args.files) > 1:
            from .parallel import parallel_query_files

            engine = QueryEngine(args.query)
            if engine.scheme is not None:
                result = parallel_query_files(args.query, args.files, opts)
            else:
                # pure filter/projection: parallelize the reads only
                dataset = Dataset.from_files(args.files, parallel=args.jobs)
                result = dataset.query(args.query, backend=opts.backend)
        else:
            dataset = Dataset.from_files(args.files)
            result = dataset.query(args.query, backend=opts.backend)
    except ReproError as exc:
        print(f"repro-query: error: {exc}", file=sys.stderr)
        return 1
    except OSError as exc:
        print(f"repro-query: error: {exc}", file=sys.stderr)
        return 1

    text = str(result)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as stream:
            stream.write(text)
            if not text.endswith("\n"):
                stream.write("\n")
    else:
        print(text)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
