"""One option object for every query entry point.

The repo grew several ways to run a query — :func:`repro.query.engine.run_query`,
:meth:`QueryEngine.run`, :func:`~repro.query.parallel.parallel_query_files`,
the ``repro-query`` CLI, and the :func:`repro.api.query` facade — and each
had sprouted its own keyword list (``backend=``, ``workers=``, ``jobs=``,
``stats=``…).  :class:`QueryOptions` is the single shared spelling: every
entry point accepts one, the CLI builds one from its parsed arguments, and
the old per-function keywords live on as deprecation shims that warn once
and map onto it.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, replace
from typing import Optional, Union

__all__ = ["QueryOptions", "BACKENDS"]

BACKENDS = ("auto", "rows", "columnar")

#: sentinel distinguishing "not passed" from an explicit None
_UNSET = object()

#: deprecation shims that already warned (exactly one warning per spelling
#: per process — a shim in a hot loop must not flood stderr)
_warned: set = set()


def warn_deprecated(key: str, message: str, stacklevel: int = 3) -> None:
    """Emit ``DeprecationWarning`` for ``key`` exactly once per process."""
    if key in _warned:
        return
    _warned.add(key)
    warnings.warn(message, DeprecationWarning, stacklevel=stacklevel + 1)


@dataclass(frozen=True)
class QueryOptions:
    """How to execute a query — shared by every entry point.

    ``backend``
        Aggregation engine: ``auto`` (planner picks), ``rows`` (streaming),
        or ``columnar`` (vectorized; errors when unsupported).
    ``jobs``
        Worker processes for multi-file inputs: ``None`` lets the entry
        point choose its own default, ``True`` sizes the pool to the CPUs,
        an integer pins it, ``1``/``False`` forces serial.
    ``stats``
        Collect ``repro.observe`` telemetry while the query runs (the CLI
        prints the metrics table; embedders read the registry themselves).
    ``sampling``
        Run the aggregation over a Bernoulli sample of the input at this
        keep probability (in ``(0, 1]``): results carry count-scaled point
        aggregates plus ``est#``/``est.lo#``/``est.hi#`` confidence columns
        (see :func:`repro.sampling.sampled_query`).  ``None``/``1`` reads
        everything.
    ``sampling_seed``
        RNG seed fixing the sampling decisions for reproducible runs.
    """

    backend: str = "auto"
    jobs: Union[bool, int, None] = None
    stats: bool = False
    sampling: Optional[float] = None
    sampling_seed: Optional[int] = None

    def __post_init__(self) -> None:
        if self.backend not in BACKENDS:
            raise ValueError(
                f"backend must be one of {'/'.join(BACKENDS)}, got {self.backend!r}"
            )
        if self.jobs is not None and not isinstance(self.jobs, (bool, int)):
            raise ValueError(f"jobs must be None, bool, or int, got {self.jobs!r}")
        if self.sampling is not None and not 0.0 < float(self.sampling) <= 1.0:
            raise ValueError(
                f"sampling must be in (0, 1] or None, got {self.sampling!r}"
            )

    @classmethod
    def coerce(cls, value: Union["QueryOptions", dict, None]) -> "QueryOptions":
        """Accept ``QueryOptions``, a plain dict, or None (defaults)."""
        if value is None:
            return cls()
        if isinstance(value, cls):
            return value
        if isinstance(value, dict):
            return cls(**value)
        raise TypeError(
            f"options must be QueryOptions, dict, or None, got {type(value).__name__}"
        )

    @classmethod
    def from_args(cls, args) -> "QueryOptions":
        """Build from ``repro-query``'s parsed argparse namespace."""
        return cls(
            backend=getattr(args, "backend", "auto"),
            jobs=getattr(args, "jobs", None),
            stats=bool(getattr(args, "stats", False)),
            sampling=getattr(args, "sample", None),
            sampling_seed=getattr(args, "sample_seed", None),
        )

    def with_legacy(
        self,
        *,
        caller: str,
        workers: object = _UNSET,
        backend: object = _UNSET,
    ) -> "QueryOptions":
        """Fold deprecated per-function keywords in, warning once each."""
        out = self
        if workers is not _UNSET:
            warn_deprecated(
                f"{caller}:workers",
                f"{caller}(workers=...) is deprecated; "
                "pass QueryOptions(jobs=...) instead",
                stacklevel=4,
            )
            out = replace(out, jobs=workers)  # type: ignore[arg-type]
        if backend is not _UNSET:
            warn_deprecated(
                f"{caller}:backend",
                f"{caller}(backend=...) is deprecated; "
                "pass QueryOptions(backend=...) instead",
                stacklevel=4,
            )
            out = replace(out, backend=str(backend))
        return out
