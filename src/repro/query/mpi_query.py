"""The MPI-parallel query application (paper Section IV-C).

Runs one CalQL query across many per-process datasets in parallel: each
(simulated) process reads and locally aggregates its assigned input files
with the same engine the serial query uses, then partial aggregation
databases travel up a k-ary reduction tree — "leaf processes send the local
aggregation results to their parent, where the partial results are
aggregated again" — until the root holds the final result.

Timing honesty, matching how we reproduce Figure 4:

* the *local read + process* phase is **really executed and really timed**
  (``perf_counter`` around file reading and aggregation), and the measured
  duration is charged to the rank's virtual clock;
* the *combine* steps of the reduction are likewise really executed and
  really timed;
* only the *message* costs come from the simulator's network model.

So the "local" curve of Fig. 4 is a measurement of this library and the
"reduction" curve is measured combine time plus modelled message time with
the paper's logarithmic tree structure.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence, Union

from .. import observe
from ..common.errors import QueryError
from ..common.record import Record
from ..common.util import children_of, chunk_evenly, parent_of
from ..io.dataset import read_records
from ..mpi.network import NetworkModel
from ..mpi.simulator import Comm, SimWorld
from .engine import QueryEngine, QueryResult

__all__ = ["MPIQueryRunner", "MPIQueryOutcome", "PhaseTimes"]

_TAG_PARTIAL = 201


def _tree_level(rank: int, fanout: int) -> int:
    """Depth of ``rank`` in the k-ary reduction tree (root = level 0)."""
    level = 0
    while rank:
        rank = parent_of(rank, fanout)
        level += 1
    return level


class _Lazy:
    """A per-rank record chunk produced on demand (see ``run_generated``)."""

    __slots__ = ("factory", "rank")

    def __init__(self, factory, rank: int) -> None:
        self.factory = factory
        self.rank = rank

    def materialize(self):
        return self.factory(self.rank)


@dataclass
class PhaseTimes:
    """Per-rank phase durations in virtual seconds."""

    io: float = 0.0
    local: float = 0.0
    reduce: float = 0.0
    total: float = 0.0


@dataclass
class MPIQueryOutcome:
    """Result of a parallel query run."""

    #: final query result (flushed/ordered at the root)
    result: QueryResult
    #: rank 0's phase times (what the paper's Fig. 4 plots)
    times: PhaseTimes
    #: per-rank phase times
    per_rank: list[PhaseTimes] = field(default_factory=list)
    #: simulator traffic statistics
    messages: int = 0
    bytes: int = 0
    #: number of output records (paper reports 85 for the ParaDiS query)
    num_output_records: int = 0
    #: reduction-tree telemetry, keyed by the sending rank's tree level
    #: (Fig. 8-style: wire volume and combine time per level)
    sends_by_level: dict[int, int] = field(default_factory=dict)
    wire_bytes_by_level: dict[int, int] = field(default_factory=dict)
    combine_seconds_by_level: dict[int, float] = field(default_factory=dict)

    @property
    def elapsed(self) -> float:
        return self.times.total

    def timing_summary(self) -> str:
        """Multi-line phase + per-level report (the CLI's ``--timing`` text).

        The same numbers also land in the metrics registry when collection
        is enabled, so this summary and ``--stats`` never disagree.
        """
        t = self.times
        lines = [
            f"total {t.total:.6f}s  local {t.local:.6f}s  "
            f"reduce {t.reduce:.6f}s  messages {self.messages}  "
            f"bytes {self.bytes}"
        ]
        for level in sorted(self.wire_bytes_by_level):
            lines.append(
                f"level {level}: sends {self.sends_by_level.get(level, 0)}  "
                f"wire {self.wire_bytes_by_level[level]} bytes  "
                f"combine {self.combine_seconds_by_level.get(level, 0.0):.6f}s"
            )
        return "\n".join(lines)


class MPIQueryRunner:
    """Configures and runs parallel queries over simulated MPI."""

    def __init__(
        self,
        query: str,
        size: int,
        network: Optional[NetworkModel] = None,
        fanout: int = 2,
        io_bandwidth: Optional[float] = None,
        io_latency: float = 0.0,
        local_rate: Optional[float] = None,
        combine_rate: Optional[float] = None,
    ) -> None:
        """``io_bandwidth``/``io_latency`` optionally model parallel-file-
        system read time per input file (bytes/sec and seconds per open);
        when unset, only the really-measured read time is charged.

        ``local_rate`` (records/second) and ``combine_rate`` (aggregation
        entries/second) switch the corresponding phase from *measured* real
        time to a deterministic cost model — useful for reproducible
        structural experiments; the Fig. 4 benchmark uses measured mode."""
        self.query_text = query
        self.size = size
        self.network = network
        self.fanout = fanout
        self.io_bandwidth = io_bandwidth
        self.io_latency = io_latency
        self.local_rate = local_rate
        self.combine_rate = combine_rate
        # Compile once up front so syntax errors surface before the run.
        engine = QueryEngine(query)
        if engine.scheme is None:
            raise QueryError(
                "the parallel query application requires an aggregation query "
                "(partial results must be combinable)"
            )

    # -- public API ------------------------------------------------------------

    def run_files(self, paths: Sequence[Union[str, "os.PathLike"]]) -> MPIQueryOutcome:  # noqa: F821
        """Distribute ``paths`` over the ranks and run the query."""
        assignments = chunk_evenly(list(paths), self.size)
        return self._run(assignments, from_files=True)

    def run_records(self, records_per_rank: Sequence[Sequence[Record]]) -> MPIQueryOutcome:
        """Run over in-memory per-rank record lists (no file I/O)."""
        if len(records_per_rank) != self.size:
            raise QueryError(
                f"need one record list per rank: got {len(records_per_rank)} "
                f"for {self.size} ranks"
            )
        # Each rank gets a single in-memory "chunk" holding its record list.
        return self._run([[list(r)] for r in records_per_rank], from_files=False)

    def run_generated(self, factory: "Callable[[int], Sequence[Record]]") -> MPIQueryOutcome:
        """Run over records produced lazily per rank by ``factory(rank)``.

        Each rank's records are generated inside its local phase (the
        generation time is excluded from the measured local time) and
        released right after feeding, so peak memory is one rank's records
        plus the partial databases — what makes laptop sweeps to thousands
        of simulated ranks feasible.
        """
        return self._run([[_Lazy(factory, rank)] for rank in range(self.size)],
                         from_files=False)

    # -- implementation ------------------------------------------------------------

    def _run(self, assignments: list[list], from_files: bool) -> MPIQueryOutcome:
        world = SimWorld(self.size, network=self.network)
        per_rank: list[PhaseTimes] = [PhaseTimes() for _ in range(self.size)]
        final_holder: dict[str, QueryResult] = {}
        # Reduction-tree telemetry, keyed by the *sending* rank's tree level
        # (the level of the edge the partial DB travels over).  The
        # simulator interleaves rank programs on one thread, so plain dicts
        # are safe here.
        sends_by_level: dict[int, int] = {}
        wire_by_level: dict[int, int] = {}
        combine_by_level: dict[int, float] = {}
        # One compiled engine shared by all ranks: the scheme is immutable
        # and every rank gets its own database from make_db().
        engine = QueryEngine(self.query_text)

        def program(comm: Comm):
            phase = per_rank[comm.rank]
            start = comm.now()

            # --- phase 1: read and locally aggregate assigned input ---------
            db = engine.make_db()
            modeled_io = 0.0
            num_fed = 0
            measured_local = 0.0
            for item in assignments[comm.rank]:
                if from_files:
                    wall0 = time.perf_counter()
                    records, globals_ = read_records(item)
                    if globals_:
                        records = [r.with_entries(globals_) for r in records]
                    if self.io_bandwidth:
                        import os as _os

                        modeled_io += (
                            self.io_latency
                            + _os.path.getsize(item) / self.io_bandwidth
                        )
                elif isinstance(item, _Lazy):
                    # generation is workload synthesis, not query work: keep
                    # it outside the measured local time
                    records = item.materialize()
                    wall0 = time.perf_counter()
                else:
                    records = item
                    wall0 = time.perf_counter()
                num_fed += len(records)
                engine.feed(db, records)
                measured_local += time.perf_counter() - wall0
                del records  # free before the next chunk / the reduction
            if modeled_io:
                yield from comm.compute(modeled_io)
            if self.local_rate is not None:
                yield from comm.compute(num_fed / self.local_rate)
            else:
                yield from comm.compute(measured_local)
            phase.io = modeled_io
            phase.local = comm.now() - start

            # --- phase 2: tree reduction of partial databases ----------------
            reduce_start = comm.now()
            for child in children_of(comm.rank, comm.size, self.fanout):
                incoming = yield from comm.recv(src=child, tag=_TAG_PARTIAL)
                incoming_entries = incoming.num_entries
                wall1 = time.perf_counter()
                db.combine(incoming)
                combine_seconds = time.perf_counter() - wall1
                child_level = _tree_level(child, self.fanout)
                combine_by_level[child_level] = (
                    combine_by_level.get(child_level, 0.0) + combine_seconds
                )
                if self.combine_rate is not None:
                    yield from comm.compute(
                        max(1, incoming_entries) / self.combine_rate
                    )
                else:
                    yield from comm.compute(combine_seconds)
            if comm.rank != 0:
                parent = parent_of(comm.rank, self.fanout)
                nbytes = db.wire_size()
                level = _tree_level(comm.rank, self.fanout)
                sends_by_level[level] = sends_by_level.get(level, 0) + 1
                wire_by_level[level] = wire_by_level.get(level, 0) + nbytes
                yield from comm.send(
                    parent, db, tag=_TAG_PARTIAL, nbytes=nbytes
                )
                phase.reduce = comm.now() - reduce_start
            else:
                phase.reduce = comm.now() - reduce_start
                # Finalization (flush/sort/format) is post-processing, not
                # part of the cross-process reduction the paper's Fig. 4
                # plots — charged to the clock but outside phase.reduce.
                wall2 = time.perf_counter()
                final_holder["result"] = engine.finalize(db)
                yield from comm.compute(time.perf_counter() - wall2)
            phase.total = comm.now() - start
            return None

        sim = world.run(program)
        # Rank 0 finishes last in the reduction; report its phases, but the
        # run's total is the max across ranks (== rank 0 here by construction).
        times = per_rank[0]
        times.total = max(times.total, sim.elapsed)
        result = final_holder["result"]
        outcome = MPIQueryOutcome(
            result=result,
            times=times,
            per_rank=per_rank,
            messages=sim.stats.messages,
            bytes=sim.stats.bytes,
            num_output_records=len(result),
            sends_by_level=sends_by_level,
            wire_bytes_by_level=wire_by_level,
            combine_seconds_by_level=combine_by_level,
        )
        self._publish_telemetry(outcome)
        return outcome

    def _publish_telemetry(self, outcome: MPIQueryOutcome) -> None:
        """Mirror the run's telemetry into the metrics registry (if enabled)."""
        if not observe.enabled():
            return
        observe.gauge("mpi.ranks", self.size)
        observe.gauge("mpi.fanout", self.fanout)
        observe.count("mpi.messages", outcome.messages)
        observe.count("mpi.bytes", outcome.bytes)
        for phase in outcome.per_rank:
            observe.timing("mpi.phase.local", phase.local)
            observe.timing("mpi.phase.reduce", phase.reduce)
        for level, nbytes in outcome.wire_bytes_by_level.items():
            observe.count("mpi.wire.bytes", nbytes, level=level)
            observe.count(
                "mpi.sends", outcome.sends_by_level.get(level, 0), level=level
            )
        for level, seconds in outcome.combine_seconds_by_level.items():
            observe.timing("mpi.combine", seconds, level=level)
