"""Off-line querying: the planner-backed engine, the CLI, and the parallel apps."""

from .columnar import columnar_aggregate, columnar_db, columnar_feed, supports_scheme
from .compare import compare_profiles
from .engine import QueryEngine, QueryResult, run_query, sort_records
from .mpi_query import MPIQueryOutcome, MPIQueryRunner, PhaseTimes
from .options import QueryOptions
from .parallel import parallel_query_files
from .rollup import rollup_inclusive

__all__ = [
    "QueryEngine",
    "QueryResult",
    "QueryOptions",
    "run_query",
    "sort_records",
    "MPIQueryRunner",
    "MPIQueryOutcome",
    "PhaseTimes",
    "parallel_query_files",
    "rollup_inclusive",
    "compare_profiles",
    "columnar_aggregate",
    "columnar_db",
    "columnar_feed",
    "supports_scheme",
]
