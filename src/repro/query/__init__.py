"""Off-line querying: the serial engine, the CLI, and the MPI-parallel app."""

from .columnar import columnar_aggregate, supports_scheme
from .compare import compare_profiles
from .engine import QueryEngine, QueryResult, run_query, sort_records
from .mpi_query import MPIQueryOutcome, MPIQueryRunner, PhaseTimes
from .rollup import rollup_inclusive

__all__ = [
    "QueryEngine",
    "QueryResult",
    "run_query",
    "sort_records",
    "MPIQueryRunner",
    "MPIQueryOutcome",
    "PhaseTimes",
    "rollup_inclusive",
    "compare_profiles",
    "columnar_aggregate",
    "supports_scheme",
]
