"""Process-parallel off-line querying on real cores.

The MPI query application (:mod:`repro.query.mpi_query`) realizes the
paper's reduction tree on the *simulator* — deterministic, instrumented,
and sized to thousands of virtual ranks.  This module realizes the same
structure on actual cores: a :class:`~concurrent.futures.ProcessPoolExecutor`
fans the input files out to worker processes, each worker reads and
**partially aggregates** its chunk with the regular
:class:`~repro.query.engine.QueryEngine` (columnar-planned when the scheme
qualifies), and only the small per-key operator states travel back to be
merged through :meth:`AggregationDB.load_states` — the combine step of the
paper's tree, flattened to one level because a process pool has no
network hierarchy worth modelling.

Shipping aggregated states instead of records is what makes this win: the
inter-process payload is proportional to the number of *groups*, not the
number of input records.
"""

from __future__ import annotations

import os
import time
from typing import Optional, Sequence, Union

from .. import observe
from ..common.errors import QueryError
from ..common.util import chunk_evenly
from ..common.variant import Variant
from ..io.dataset import _load_source_timed, _resolve_workers
from .engine import QueryEngine, QueryResult
from .options import _UNSET, QueryOptions

__all__ = ["parallel_query_files"]

#: per-file worker telemetry: (basename, parse seconds, feed seconds)
_FileTiming = tuple[str, float, float]


def _partial_worker(
    query_text: str, paths: list[str], backend: str
) -> tuple[list[tuple[dict[str, Variant], list[list]]], int, int, list[_FileTiming]]:
    """Read + partially aggregate one chunk of files (runs in a worker).

    The query is compiled from text in the worker because compiled
    predicates (closures) do not pickle; schemes built from the same text
    are equal, so the exported states merge cleanly at the parent.  Per-file
    parse and feed durations are measured here and shipped back with the
    states, so the parent's metrics registry can attribute worker time.
    """
    engine = QueryEngine(query_text)
    db = engine.make_db()
    timings: list[_FileTiming] = []
    for path in paths:
        records, _globals, parse_seconds = _load_source_timed(path)
        feed_start = time.perf_counter()
        engine.feed(db, records, backend=backend)
        timings.append(
            (os.path.basename(path), parse_seconds, time.perf_counter() - feed_start)
        )
        del records  # keep peak memory at one file per worker
    return db.export_states(), db.num_offered, db.num_processed, timings


def _record_worker_timings(timings: Sequence[_FileTiming]) -> None:
    for basename, parse_seconds, feed_seconds in timings:
        observe.timing("parallel.file.parse", parse_seconds, file=basename)
        observe.timing("parallel.file.feed", feed_seconds, file=basename)


def parallel_query_files(
    query: str,
    paths: Sequence[Union[str, os.PathLike]],
    options: Union[QueryOptions, dict, None] = None,
    backend: object = _UNSET,
    *,
    workers: object = _UNSET,
) -> QueryResult:
    """Run an aggregation query over many files with real process parallelism.

    Equivalent to ``QueryEngine(query).run(Dataset.from_files(paths).records)``
    for aggregation queries, but each worker process reads and aggregates its
    file chunk locally and only partial aggregation states are merged in the
    parent.  ``options`` is a :class:`~repro.query.options.QueryOptions`:
    ``jobs=None``/``True`` picks the pool size automatically — one worker
    per CPU, degrading to serial on single-core machines or undersized
    inputs (recorded as ``parallel.fallback``); an explicit integer sets the
    pool size; 1 (or a single file) degrades to the serial path.

    The pre-:class:`QueryOptions` spellings (``workers=``, ``backend=``,
    including the old third-positional ``workers``) still work but emit one
    :class:`DeprecationWarning` each.
    """
    if options is not None and not isinstance(options, (QueryOptions, dict)):
        # Legacy third positional: parallel_query_files(q, paths, 4) meant
        # workers=4 before QueryOptions took that slot.
        workers = options
        options = None
    opts = QueryOptions.coerce(options).with_legacy(
        caller="parallel_query_files", workers=workers, backend=backend
    )
    pool_size = True if opts.jobs is None else opts.jobs
    path_list = [os.fspath(p) for p in paths]
    engine = QueryEngine(query)
    if engine.scheme is None:
        raise QueryError(
            "parallel_query_files requires an aggregation query "
            "(partial results must be combinable)"
        )
    db = engine.make_db()
    if not path_list:
        # No inputs: an empty result of the right shape, no pool spin-up.
        return engine.finalize(db)
    n_workers = _resolve_workers(pool_size, len(path_list), path_list)
    with observe.span(
        "parallel.query_files", files=len(path_list), workers=n_workers
    ):
        if n_workers <= 1:
            _states, _offered, _processed, timings = _partial_worker(
                query, path_list, opts.backend
            )
            db.load_states(_states, offered=_offered, processed=_processed)
            _record_worker_timings(timings)
        else:
            from concurrent.futures import ProcessPoolExecutor

            chunks = [c for c in chunk_evenly(path_list, n_workers) if c]
            with ProcessPoolExecutor(max_workers=len(chunks)) as pool:
                futures = [
                    pool.submit(_partial_worker, query, chunk, opts.backend)
                    for chunk in chunks
                ]
                # Merge in submission order for a deterministic result.
                for future in futures:
                    states, offered, processed, timings = future.result()
                    with observe.span("parallel.merge"):
                        db.load_states(states, offered=offered, processed=processed)
                    _record_worker_timings(timings)
                    observe.count("parallel.states.shipped", len(states))
        return engine.finalize(db)
