"""The off-line query engine (analytical aggregation).

Executes CalQL queries over record streams: LET preprocessing, WHERE
filtering, aggregation (when the query has operators), ORDER BY, LIMIT, and
FORMAT rendering.  The aggregation stage reuses the exact
:class:`AggregationDB` the on-line service uses — the engine also exposes
the partial-aggregation steps (:meth:`QueryEngine.make_db`,
:meth:`QueryEngine.feed`, :meth:`QueryEngine.finalize`) that the MPI-
parallel query application composes with a reduction tree.

Execution backends: aggregation queries run either through the streaming
row engine or the vectorized columnar backend
(:mod:`repro.query.columnar`).  The planner in :meth:`QueryEngine.run` and
:meth:`QueryEngine.feed` consults :func:`supports_scheme` and picks the
columnar path automatically whenever every operator has a vector kernel;
``backend="rows"``/``"columnar"`` overrides it explicitly.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Iterable, Optional, Sequence, Union

from .. import observe
from ..aggregate.db import AggregationDB
from ..aggregate.ops import OperatorRegistry
from ..aggregate.scheme import AggregationScheme
from ..calql.ast import OrderSpec, Query
from ..calql.parser import parse_query
from ..calql.semantics import build_scheme, compile_conditions, compile_let, validate
from ..common.errors import QueryError
from ..common.record import Record
from ..common.variant import Variant
from ..io.dataset import ColumnStore
from .columnar import (
    columnar_aggregate,
    columnar_feed,
    supports_scheme,
    unsupported_ops,
)
from .options import _UNSET as _OPT_UNSET

if TYPE_CHECKING:  # pragma: no cover
    from .options import QueryOptions

__all__ = ["QueryEngine", "QueryResult", "run_query"]

_BACKENDS = ("auto", "rows", "columnar")


class QueryResult:
    """Materialized query output.

    Iterable list of records plus rendering helpers; ``str()`` honours the
    query's FORMAT clause (default: aligned table).
    """

    def __init__(
        self,
        records: list[Record],
        preferred_columns: Sequence[str] = (),
        fmt: Optional[str] = None,
    ) -> None:
        self.records = records
        self.preferred_columns = list(preferred_columns)
        self.format = (fmt or "table").lower()

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self):
        return iter(self.records)

    def __getitem__(self, index: int) -> Record:
        return self.records[index]

    def column(self, label: str) -> list[Variant]:
        """Non-empty values of one output column, in result order."""
        out = []
        for record in self.records:
            v = record.get(label)
            if not v.is_empty:
                out.append(v)
        return out

    def rows(self, labels: Sequence[str]) -> list[tuple]:
        """Raw-value tuples for the given columns (None where missing)."""
        out = []
        for record in self.records:
            get = record.get
            row = []
            for lbl in labels:
                v = get(lbl)
                row.append(None if v.is_empty else v.value)
            out.append(tuple(row))
        return out

    def to_table(self, **kwargs) -> str:
        from ..report.table import TableOptions, format_table

        return format_table(self.records, self.preferred_columns, TableOptions(**kwargs))

    def to_csv(self) -> str:
        import io as _io

        from ..io.csvio import write_csv

        buf = _io.StringIO()
        write_csv(buf, self.records, self.preferred_columns)
        return buf.getvalue()

    def to_json(self) -> str:
        import io as _io

        from ..io.jsonio import write_json

        buf = _io.StringIO()
        write_json(buf, self.records)
        return buf.getvalue()

    def to_records(self) -> list[Record]:
        return list(self.records)

    def to_tree(
        self,
        path_attribute: Optional[str] = None,
        metrics: Optional[Sequence[str]] = None,
    ) -> str:
        """Hierarchical rendering along a slash-path attribute.

        Defaults: the path attribute is the first preferred (key) column
        whose values contain path separators — or simply the first key
        column — and the metrics are every other column that is numeric.
        """
        from ..report.tree import format_tree

        columns = self.preferred_columns or sorted(
            {lbl for r in self.records for lbl in r.labels()}
        )
        if path_attribute is None:
            path_attribute = next(
                (
                    c
                    for c in columns
                    if any("/" in r.get(c).to_string() for r in self.records)
                ),
                columns[0] if columns else "",
            )
        if metrics is None:
            metrics = [
                c
                for c in columns
                if c != path_attribute
                and any(r.get(c).is_numeric for r in self.records)
            ]
        return format_tree(self.records, path_attribute, list(metrics))

    def __str__(self) -> str:
        if self.format == "csv":
            return self.to_csv()
        if self.format == "json":
            return self.to_json()
        if self.format == "tree":
            return self.to_tree()
        if self.format in ("records", "expand"):
            return "\n".join(repr(r) for r in self.records)
        return self.to_table()

    def __repr__(self) -> str:
        return f"QueryResult({len(self.records)} records, format={self.format!r})"


class QueryEngine:
    """A compiled CalQL query, executable over any record stream."""

    def __init__(
        self,
        query: Union[str, Query],
        registry: Optional[OperatorRegistry] = None,
        key_strategy: str = "tuple",
    ) -> None:
        with observe.span("query.parse"):
            self.query = parse_query(query) if isinstance(query, str) else query
            validate(self.query, registry)
            self._let = compile_let(self.query.let)
            self.scheme: Optional[AggregationScheme] = None
            self._where: Optional[Callable[[Record], bool]]
            if self.query.is_aggregation:
                # WHERE lives inside the scheme's predicate on the aggregation path.
                self.scheme = build_scheme(self.query, registry, key_strategy)
                self._where = None
            else:
                self._where = compile_conditions(self.query.where)
            self._assigner = None
            self._time_attribute = None
            if self.query.is_aggregation and self.query.window is not None:
                # WINDOW queries stamp window.start/window.end onto each
                # record (after LET) before folding; the scheme's key
                # already includes both labels (see calql.semantics).
                from ..window.assign import DEFAULT_TIME_ATTRIBUTE, make_assigner

                self._assigner = make_assigner(self.query.window)
                self._time_attribute = DEFAULT_TIME_ATTRIBUTE
        #: backend the planner chose on the most recent run/feed
        self.last_backend: Optional[str] = None
        #: one-line justification for the most recent backend decision
        self.last_backend_reason: Optional[str] = None

    # -- planner -------------------------------------------------------------------

    def _pick_backend(self, backend: str) -> tuple[str, str]:
        """Resolve a ``backend=`` argument against this query's scheme.

        Returns ``(chosen, reason)`` — the reason string is recorded in
        :attr:`last_backend_reason` and in the ``query.backend.decision``
        telemetry counter, so planner behaviour is observable after the fact.
        """
        if backend not in _BACKENDS:
            raise QueryError(
                f"unknown backend {backend!r}; expected one of {', '.join(_BACKENDS)}"
            )
        if self.scheme is None:
            if backend == "columnar":
                raise QueryError(
                    "the columnar backend requires an aggregation query "
                    "(pure filter/projection queries always stream)"
                )
            return "rows", "no aggregation: filter/projection queries stream"
        if backend == "auto":
            if supports_scheme(self.scheme):
                return "columnar", "planner: every operator has a vector kernel"
            unsupported = ", ".join(unsupported_ops(self.scheme))
            return "rows", f"planner: no vector kernel for {unsupported}"
        if backend == "columnar" and not supports_scheme(self.scheme):
            unsupported = ", ".join(op.spec_string() for op in self.scheme.ops)
            raise QueryError(
                f"columnar backend does not support every operator in: {unsupported}"
            )
        return backend, f"explicit backend={backend}"

    def _plan(self, backend: str) -> str:
        """Run the planner under its tracing span and record the decision."""
        with observe.span("query.plan"):
            chosen, reason = self._pick_backend(backend)
        self.last_backend = chosen
        self.last_backend_reason = reason
        observe.count("query.backend.decision", backend=chosen, reason=reason)
        return chosen

    def _columnar_source(
        self, records: Iterable[Record], store: Optional[ColumnStore]
    ) -> Union[ColumnStore, list[Record]]:
        """What the columnar backend should read.

        A cached store is only valid for the raw records it interned — LET
        and WINDOW queries derive per-record attributes, so they materialize
        the transformed rows and intern those transiently instead.
        """
        if self._let is not None or self._assigner is not None:
            return list(self._preprocess(records))
        if store is not None:
            return store
        return records if isinstance(records, list) else list(records)

    # -- one-shot execution ------------------------------------------------------

    def run(
        self,
        records: Iterable[Record],
        backend: str = "auto",
        store: Optional[ColumnStore] = None,
    ) -> QueryResult:
        """Execute the full pipeline over ``records``.

        ``backend`` selects the aggregation engine (``auto``/``rows``/
        ``columnar``); ``store`` optionally supplies a cached
        :class:`~repro.io.dataset.ColumnStore` over the same records so the
        columnar path skips the row→column conversion.
        """
        with observe.span("query.run", backend=backend):
            chosen = self._plan(backend)
            if self.scheme is not None:
                if chosen == "columnar":
                    with observe.span("query.scan", backend="columnar"):
                        out = columnar_aggregate(
                            self._columnar_source(records, store),
                            self.scheme,
                            where=self.query.where,
                        )
                    with observe.span("query.render"):
                        out = self._order_and_limit(out)
                        return QueryResult(
                            out, self._preferred_columns(), self.query.format
                        )
                db = self.make_db()
                with observe.span("query.scan", backend="rows"):
                    db.process_all(self._preprocess(records))
                return self.finalize(db)
            with observe.span("query.scan", backend="rows"):
                out = []
                for record in self._preprocess(records):
                    if self._where is not None and not self._where(record):
                        continue
                    if self.query.select:
                        record = record.project(self.query.select)
                    out.append(record)
            with observe.span("query.render"):
                out = self._order_and_limit(out)
                preferred = list(self.query.select)
                return QueryResult(out, preferred, self.query.format)

    # -- partial aggregation (used by the MPI query application) --------------------

    def make_db(self) -> AggregationDB:
        """A fresh aggregation database for this query's scheme."""
        if self.scheme is None:
            raise ValueError("query has no aggregation; make_db() needs AGGREGATE")
        return AggregationDB(self.scheme)

    def feed(
        self,
        db: AggregationDB,
        records: Iterable[Record],
        backend: str = "auto",
        store: Optional[ColumnStore] = None,
    ) -> None:
        """Fold records (after LET preprocessing) into a partial DB.

        The planner applies here too: supported schemes aggregate the batch
        vectorized and merge the partial states into ``db`` (combine
        semantics), so the MPI query application's local phase gets the same
        speedup as one-shot runs.  ``backend="rows"`` forces streaming.
        """
        with observe.span("query.feed", backend=backend):
            chosen = self._plan(backend)
            with observe.span("query.scan", backend=chosen):
                if chosen == "columnar":
                    columnar_feed(
                        db, self._columnar_source(records, store), where=self.query.where
                    )
                else:
                    db.process_all(self._preprocess(records))

    def finalize(self, db: AggregationDB) -> QueryResult:
        """Flush a (possibly combined) DB and apply ORDER BY / LIMIT / FORMAT."""
        with observe.span("query.render"):
            out = self._order_and_limit(db.flush())
            preferred = self._preferred_columns()
            return QueryResult(out, preferred, self.query.format)

    # -- helpers -------------------------------------------------------------------

    def _preprocess(self, records: Iterable[Record]) -> Iterable[Record]:
        if self._let is not None:
            let = self._let
            records = (let(r) for r in records)
        if self._assigner is not None:
            records = self._windowize(records)
        return records

    def _windowize(self, records: Iterable[Record]) -> Iterable[Record]:
        """Expand records into window-stamped copies (batch semantics).

        The whole input is one logical source: event time is the configured
        time attribute, falling back to the accumulated ``time.duration``
        offset.  Un-timed records cannot be placed in a window and are
        dropped.
        """
        from ..window.assign import EventClock, stamp_record

        clock = EventClock(self._time_attribute)
        assigner = self._assigner
        for record in records:
            t = clock.event_time(record)
            if t is None:
                continue
            yield from stamp_record(record, t, assigner)

    def _preferred_columns(self) -> list[str]:
        assert self.scheme is not None
        preferred = list(self.scheme.key)
        for op in self.scheme.ops:
            preferred.extend(op.output_labels())
        if self.query.select:
            # An explicit SELECT fixes the leading column order.
            chosen = [c for c in self.query.select if c in preferred]
            preferred = chosen + [c for c in preferred if c not in chosen]
        return preferred

    def _order_and_limit(self, records: list[Record]) -> list[Record]:
        order = self.query.order_by
        if order:
            records = sort_records(records, order)
        if self.query.limit is not None:
            records = records[: self.query.limit]
        return records

    def __repr__(self) -> str:
        return f"QueryEngine({self.query.unparse()!r})"


def sort_records(records: list[Record], order: Sequence[OrderSpec]) -> list[Record]:
    """Stable multi-key sort by Variant order; missing values sort first."""
    out = list(records)
    # Apply keys in reverse for a stable compound sort.
    for spec in reversed(order):
        label = spec.label

        def sort_key(record: Record, _label: str = label):
            v = record.get(_label)
            if v.is_empty:
                return (0, ())
            return (1, v._order_key())

        out.sort(key=sort_key, reverse=not spec.ascending)
    return out


def run_query(
    text: str,
    records: Iterable[Record],
    options: Union["QueryOptions", dict, None] = None,
    backend: object = _OPT_UNSET,
) -> QueryResult:
    """Convenience one-liner: parse, validate, execute.

    ``options`` is a shared :class:`~repro.query.options.QueryOptions`
    (only ``backend`` applies to an in-memory record stream).  The old
    ``backend=`` keyword still works but emits one ``DeprecationWarning``.
    """
    from .options import QueryOptions

    opts = QueryOptions.coerce(options).with_legacy(
        caller="run_query", backend=backend
    )
    return QueryEngine(text).run(records, backend=opts.backend)
